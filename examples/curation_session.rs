//! The copy-paste curation loop of §3, with provenance recording, the
//! hereditary/naive provenance-store comparison, transaction squashing,
//! and the three Figure 3 update programs.
//!
//! Run with: `cargo run --example curation_session`

use cdb_annotation::nested::ColoredTable;
use cdb_curation::provstore::{squash, StoreMode};
use cdb_curation::queries;
use cdb_curation::update_lang::{figure3_query, sql_delete, sql_insert, sql_update};
use cdb_model::Atom;
use cdb_relalg::{Pred, Schema};
use cdb_workload::sessions::{CurationSim, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Copy-paste curation with provenance (§3.1) ==");
    let cfg = SessionConfig {
        source_entries: 100,
        fields_per_entry: 10,
        transactions: 40,
        pastes_per_txn: 3,
        edits_per_txn: 5,
        inserts_per_txn: 1,
    };
    let mut hered = CurationSim::new(1, StoreMode::Hereditary, cfg.clone());
    let mut naive = CurationSim::new(1, StoreMode::Naive, cfg);
    hered.run();
    naive.run();

    println!(
        "target database: {} nodes after {} transactions",
        hered.target.tree.size(),
        hered.target.log.len()
    );
    println!(
        "provenance store: naive = {} records ({} B), hereditary = {} records ({} B)",
        naive.target.prov.record_count(),
        naive.target.prov.encoded_size(),
        hered.target.prov.record_count(),
        hered.target.prov.encoded_size(),
    );

    let raw: usize = hered.target.log.iter().map(|t| t.ops.len()).sum();
    let squashed: usize = hered.target.log.iter().map(|t| squash(&t.ops).len()).sum();
    println!("transaction logs: {raw} raw ops → {squashed} after squashing");

    // Provenance queries on a pasted entry.
    let entry = hered.pasted_roots()[0];
    println!("\nprovenance of {}:", hered.target.tree.path_of(entry)?);
    for origin in queries::how_arrived(&hered.target, entry) {
        println!("  ← {origin}");
    }
    println!(
        "created in {:?}, curators so far: {:?}",
        queries::when_created(&hered.target, entry),
        queries::curators_of(&hered.target, entry)?,
    );

    // ---- Figure 3 ----------------------------------------------------
    println!("\n== Figure 3: updates and provenance ==");
    let r = ColoredTable::figure2_style(
        Schema::new(["A", "B"])?,
        &[
            vec![Atom::Int(10), Atom::Int(49)],
            vec![Atom::Int(12), Atom::Int(50)],
        ],
    );
    println!("R = {}", r.table);

    let p1 = figure3_query(&r)?;
    println!("\nP1 (query: SELECT R.A, 55 AS B … UNION SELECT * …):");
    println!("   {}", p1.table);

    let p2 = sql_insert(
        &sql_delete(&r, &Pred::col_eq_const("A", 10))?,
        vec![Atom::Int(10), Atom::Int(55)],
    )?;
    println!("P2 (DELETE FROM R WHERE A = 10; INSERT INTO R VALUES (10,55)):");
    println!("   {}", p2.table);

    let p3 = sql_update(&r, &[("B", Atom::Int(55))], &Pred::col_eq_const("A", 10))?;
    println!("P3 (UPDATE R SET B = 55 WHERE A = 10):");
    println!("   {}", p3.table);

    assert_eq!(p1.table.strip(), p2.table.strip());
    assert_eq!(p2.table.strip(), p3.table.strip());
    println!(
        "\n→ same plain result, three different provenance behaviours:\n\
         P1 builds a fresh table (copying); P2 keeps the table color but\n\
         invents the tuple; P3 keeps table AND tuple colors, replacing\n\
         only the assigned cell (kind-preserving, not copying)."
    );

    Ok(())
}
