//! Reproduces the worked annotation examples of §2 — the Q1/Q2 pair
//! and Figure 2 — printing the same annotated tables as the paper.
//!
//! Run with: `cargo run --example annotation_propagation`

use std::collections::BTreeMap;

use cdb_annotation::colored::{
    eval_colored, ColoredDatabase, ColoredRelation, ColoredTuple, Scheme,
};
use cdb_annotation::nested::ColoredTable;
use cdb_model::Atom;
use cdb_relalg::eval::paper_q;
use cdb_relalg::{Pred, ProjItem, Schema};

fn int(i: i64) -> Atom {
    Atom::Int(i)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- §2.1: the Q1/Q2 example -------------------------------------
    // R and S with each base value annotated with a distinct color
    // ♭1…♭8 (written b1…b8 here).
    let r = ColoredRelation::from_tuples(
        Schema::new(["A", "B"])?,
        [
            ColoredTuple::with_colors(vec![int(10), int(49)], vec!["b1", "b2"]),
            ColoredTuple::with_colors(vec![int(12), int(50)], vec!["b3", "b4"]),
        ],
    )?;
    let s = ColoredRelation::from_tuples(
        Schema::new(["A", "B"])?,
        [
            ColoredTuple::with_colors(vec![int(11), int(49)], vec!["b5", "b6"]),
            ColoredTuple::with_colors(vec![int(12), int(50)], vec!["b7", "b8"]),
        ],
    )?;
    let db = ColoredDatabase::new()
        .with("R", r.clone())
        .with("S", s.clone());

    println!("R (annotated):\n{r}");
    println!("S (annotated):\n{s}");

    let q1 = paper_q(vec![ProjItem::col("R.A", "A"), ProjItem::col("R.B", "B")]);
    let q2 = paper_q(vec![ProjItem::col("S.A", "A"), ProjItem::constant(50, "B")]);
    println!("Q1: SELECT R.A, R.B  FROM R, S WHERE R.A = S.A AND R.B = 50");
    println!("Q2: SELECT S.A, 50 AS B FROM R, S WHERE R.A = S.A AND R.B = 50\n");

    let out1 = eval_colored(&db, &q1, &Scheme::Default)?;
    let out2 = eval_colored(&db, &q2, &Scheme::Default)?;
    println!("Q1 under the default scheme:\n{out1}");
    println!("Q2 under the default scheme:\n{out2}");
    println!("→ classically equivalent, provenance-distinct (the paper's point).\n");

    let all1 = eval_colored(&db, &q1, &Scheme::DefaultAll)?;
    let all2 = eval_colored(&db, &q2, &Scheme::DefaultAll)?;
    println!("Q1 under DEFAULT-ALL:\n{all1}");
    println!("Q2 under DEFAULT-ALL:\n{all2}");
    assert_eq!(all1, all2);
    println!("→ DEFAULT-ALL restores invariance under the rewrite.\n");

    // Custom propagation: steer B's annotation from S.B (a pSQL
    // PROPAGATE clause).
    let steer: BTreeMap<String, Vec<String>> = [("B".to_string(), vec!["S.B".to_string()])]
        .into_iter()
        .collect();
    let custom = eval_colored(&db, &q2, &Scheme::Custom(steer))?;
    println!("Q2 with PROPAGATE S.B AS B:\n{custom}");

    // ---- Figure 2: colored complex objects ---------------------------
    println!("---- Figure 2 ----");
    let table = ColoredTable::figure2_style(
        Schema::new(["A", "B"])?,
        &[vec![int(10), int(50)], vec![int(12), int(50)]],
    );
    println!("R = {}", table.table);
    let sel = table.select(&Pred::col_eq_const("A", 10))?;
    println!("σ_A=10(R) = {}", sel.table);
    let proj = table.project(&["B"])?;
    println!("π_B(R)    = {}", proj.table);
    println!(
        "→ selection preserves whole tuples (and their colors); projection\n\
         copies cells into freshly-invented (⊥) tuples; both build a ⊥ table."
    );

    Ok(())
}
