//! Schema evolution (§6): the three subtype disciplines on an evolving
//! content model, the interleaving blow-up, and schema inference over
//! schema-less entries.
//!
//! Run with: `cargo run --example schema_evolution`

use cdb_model::Value;
use cdb_schema::automata::state_count;
use cdb_schema::infer::{infer_regex, infer_type};
use cdb_schema::{inclusion_subtype, interleave_subtype, width_subtype, Regex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Evolving a content model (§6.1) ==");
    let old = Regex::parse("id ac de sq").map_err(to_err)?;
    let appended = Regex::parse("id ac de sq dr").map_err(to_err)?; // new field at the end
    let inserted = Regex::parse("id ac kw de sq").map_err(to_err)?; // new field in the middle

    println!("old model:      {old}");
    println!("appended field: {appended}");
    println!("inserted field: {inserted}\n");

    println!(
        "{:<22} {:>10} {:>8} {:>12}",
        "evolved vs old", "inclusion", "width", "interleaving"
    );
    for (name, evolved) in [
        ("appended (… dr)", &appended),
        ("inserted (… kw …)", &inserted),
    ] {
        println!(
            "{:<22} {:>10} {:>8} {:>12}",
            name,
            inclusion_subtype(evolved, &old),
            width_subtype(evolved, &old),
            interleave_subtype(evolved, &old),
        );
    }
    println!(
        "→ inclusion subtyping breaks on ANY extension (the XDuce/CDuce\n\
         problem); width subtyping only tolerates appends; interleaving\n\
         subtyping recovers the relational 'adding a column is harmless'.\n"
    );

    println!("== The interleaving blow-up (§6.1, [42,43,56]) ==");
    println!(
        "{:<14} {:>12} {:>16}",
        "expression", "DFA states", "flat regex size"
    );
    let syms = ["a", "b", "c", "d", "e", "f", "g"];
    for n in 1..=6 {
        let e = syms[..n]
            .iter()
            .map(|s| Regex::sym(*s))
            .reduce(Regex::interleave)
            .expect("non-empty");
        let states = state_count(&e).expect("within cap");
        let flat = e.eliminate_interleave().size();
        println!(
            "{:<14} {:>12} {:>16}",
            format!("{} syms &", n),
            states,
            flat
        );
    }
    println!("→ 2ⁿ states: compact to write, exponential to compile away.\n");

    println!("== Schema inference for schema-less data (§6, AceDB) ==");
    // Entries accumulated without a schema.
    let entries = [
        Value::record([
            ("name", Value::str("Iceland")),
            ("population", Value::int(300_000)),
            ("althing", Value::str("est. 930")),
        ]),
        Value::record([
            ("name", Value::str("Latvia")),
            ("population", Value::int(1_900_000)),
        ]),
        Value::record([
            ("name", Value::str("Monaco")),
            ("population", Value::int(38_000)),
            ("monarch", Value::str("Albert II")),
        ]),
    ];
    let t = infer_type(entries.iter());
    println!("inferred entry type: {t}");
    for e in &entries {
        assert!(t.check(e).is_ok());
    }
    println!("✓ every existing entry checks against the retro-fitted schema");

    // Content-model inference from observed field orders.
    let observed = vec![
        vec!["id", "ref", "sq"],
        vec!["id", "ref", "ref", "sq"],
        vec!["id", "kw", "ref", "sq"],
    ];
    let model = infer_regex(&observed);
    println!("\nobserved field sequences: {observed:?}");
    println!("inferred content model:  {model}");
    for o in &observed {
        assert!(model.matches(o.iter().copied()));
    }
    println!("✓ accepts all observations (and generalizes: repeats, optionals)");

    Ok(())
}

fn to_err(s: String) -> Box<dyn std::error::Error> {
    s.into()
}
