//! Quickstart: the full curated-database lifecycle in one sitting.
//!
//! Builds a small IUPHAR-like receptor database, curates it with
//! attributed transactions, annotates it, publishes versions into the
//! archive, cites an entry, travels in time, and asks the lifecycle
//! questions of §6.2.
//!
//! Run with: `cargo run --example quickstart`

use curated_db::{Atom, CuratedDatabase, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small curated database in the style of the IUPHAR receptor
    // database: "most of the curation effort is supplied by volunteers,
    // and only two people are involved with its direct maintenance" (§1).
    let mut db = CuratedDatabase::new("iuphar", "name");

    println!("== Curation ==");
    db.add_entry(
        "joanna",
        1,
        "GABA-A",
        &[
            ("kind", Atom::Str("ligand-gated ion channel".into())),
            ("subunits", Atom::Int(5)),
        ],
    )?;
    db.add_entry(
        "michael",
        2,
        "5-HT3",
        &[
            ("kind", Atom::Str("ligand-gated ion channel".into())),
            ("subunits", Atom::Int(5)),
        ],
    )?;
    db.add_entry(
        "joanna",
        3,
        "GABA-B1",
        &[("kind", Atom::Str("GPCR".into()))],
    )?;
    db.add_entry(
        "joanna",
        3,
        "GABA-B2",
        &[("kind", Atom::Str("GPCR".into()))],
    )?;
    println!("entries: {:?}", db.entry_keys()?);

    // Superimposed annotation (§2: DAS-style, external to the core data).
    db.annotate(
        "GABA-A",
        Some("subunits"),
        "michael",
        "pentamer confirmed by cryo-EM",
        4,
    )?;
    println!(
        "note on GABA-A.subunits: {:?}",
        db.notes_on("GABA-A", Some("subunits"))[0].text
    );

    println!("\n== Publishing and citation (§5) ==");
    let v0 = db.publish("2008-06")?;
    let citation = db.cite(v0, "GABA-A")?;
    println!("cite: {citation}");

    // The working database moves on…
    db.edit_field("michael", 5, "GABA-A", "subunits", Atom::Int(4))?;
    let v1 = db.publish("2008-12")?;

    // …but the citation still resolves to the cited version.
    let cited = citation.resolve(db.archive())?;
    println!("cited entry (still the old one): {cited}");
    assert_eq!(cited.field("subunits"), Some(&Value::int(5)));

    println!("\n== Temporal queries (§5.1) ==");
    for (v, a) in db.field_series("GABA-A", "subunits")? {
        println!("  version {v}: subunits = {a}");
    }
    let _ = v1;

    println!("\n== Fission & fusion (§6.2) ==");
    // GABA-B1 and GABA-B2 turn out to be subunits of one receptor.
    db.merge_entries("joanna", 6, "GABA-B1", "GABA-B2")?;
    println!(
        "what happened to GABA-B2? → now part of {:?}",
        db.resolve_id("GABA-B2")?
    );
    db.publish("2009-06")?;
    let last = db.version(2)?;
    println!(
        "published entry count: {}",
        last.as_set().map(|s| s.len()).unwrap_or(0)
    );

    println!("\n== Provenance (§3) ==");
    let node = db.entry_node("GABA-A")?;
    let curators = cdb_curation::queries::curators_of(&db.curated, node)?;
    println!("curators of GABA-A: {curators:?}");
    let created = cdb_curation::queries::when_created(&db.curated, node);
    println!("created in transaction: {created:?}");

    Ok(())
}
