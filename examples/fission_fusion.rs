//! Object fission and fusion (§6.2): UniProt-style entry merging with
//! retired identifiers, Factbook-style country splits, and the lifecycle
//! queries "What happened to X?" / "How did Y come about?".
//!
//! Run with: `cargo run --example fission_fusion`

use cdb_workload::uniprot::{UniprotConfig, UniprotSim};
use curated_db::{Atom, CuratedDatabase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fusion in a gene database ==");
    let mut db = CuratedDatabase::new("genes", "ac");
    db.add_entry(
        "curator1",
        1,
        "Q00001",
        &[("gene", Atom::Str("YWHAH".into()))],
    )?;
    db.add_entry(
        "curator1",
        1,
        "Q00002",
        &[("gene", Atom::Str("YWHA1".into()))],
    )?;
    db.add_entry(
        "curator2",
        2,
        "Q00003",
        &[("gene", Atom::Str("OTHER".into()))],
    )?;
    db.publish("rel-27")?;

    // "Fusion occurs in genetic databases when it is discovered … that
    // two entries refer to the same gene."
    db.merge_entries("curator2", 3, "Q00001", "Q00002")?;
    db.publish("rel-28")?;

    println!("What happened to Q00002? → {:?}", db.resolve_id("Q00002")?);
    println!(
        "How did Q00001 come about? ← absorbed {:?}",
        db.lifecycle.how_did_come_about("Q00001")?
    );
    println!(
        "secondary (retired) accessions of Q00001: {:?}",
        db.lifecycle.secondary_ids("Q00001")
    );

    // The published version records the retired id, UniProt-style.
    let v1 = db.version(1)?;
    let entry = v1
        .as_set()
        .and_then(|s| {
            s.iter()
                .find(|e| e.field("ac") == Some(&curated_db::Value::str("Q00001")))
        })
        .expect("entry exists");
    println!("published entry: {entry}");

    println!("\n== Fission: a split entry ==");
    db.split_entry(
        "curator1",
        4,
        "Q00003",
        &[
            ("Q00004", vec![("gene", Atom::Str("OTHER-A".into()))]),
            ("Q00005", vec![("gene", Atom::Str("OTHER-B".into()))]),
        ],
    )?;
    db.publish("rel-29")?;
    println!("What happened to Q00003? → {:?}", db.resolve_id("Q00003")?);
    println!(
        "How did Q00004 come about? ← split from {:?}",
        db.lifecycle.how_did_come_about("Q00004")?
    );

    // Even chains resolve: merge one part away again.
    db.merge_entries("curator1", 5, "Q00001", "Q00004")?;
    println!(
        "after a further merge, What happened to Q00003? → {:?}",
        db.resolve_id("Q00003")?
    );

    println!("\n== At scale: the synthetic UniProt simulator ==");
    let mut sim = UniprotSim::new(
        7,
        UniprotConfig {
            initial_entries: 200,
            fusion_probability: 0.8,
            ..Default::default()
        },
    );
    for _ in 0..10 {
        sim.advance();
    }
    println!(
        "after 10 releases: {} entries, {} fusion events",
        sim.entry_count(),
        sim.fusions.len()
    );
    for f in sim.fusions.iter().take(5) {
        println!(
            "  release {}: {} absorbed {}",
            f.release, f.kept, f.absorbed
        );
    }

    Ok(())
}
