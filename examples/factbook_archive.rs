//! The World-Factbook archiving scenario of §5: publish yearly editions
//! of a country database, compare the storage cost of full snapshots,
//! a delta log, and the fat-node archive, then run the paper's
//! longitudinal query — "the internet penetration of Liechtenstein over
//! the past five years, … correlate it with economic data".
//!
//! Run with: `cargo run --example factbook_archive`

use cdb_archive::temporal;
use cdb_archive::{Archive, DeltaStore, SnapshotStore};
use cdb_model::keys::KeyStep;
use cdb_model::KeyPath;
use cdb_workload::factbook::{FactbookConfig, FactbookSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let years = 15;
    let mut sim = FactbookSim::new(
        2008,
        FactbookConfig {
            countries: 40,
            revision_fraction: 0.3,
            fission_probability: 0.15,
        },
    );

    let spec = FactbookSim::key_spec();
    let mut archive = Archive::new("factbook", spec.clone());
    let mut snapshots = SnapshotStore::new();
    let mut deltas = DeltaStore::new(spec.clone());

    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12}",
        "year", "countries", "snapshots B", "deltas B", "archive B"
    );
    for y in 0..years {
        let edition = sim.snapshot();
        let label = format!("{}", 1993 + y);
        archive.add_version(&edition, &label)?;
        snapshots.add_version(&edition, &label);
        deltas.add_version(&edition, &label)?;
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>12}",
            label,
            sim.country_count(),
            snapshots.encoded_size(),
            deltas.encoded_size(),
            archive.encoded_size(),
        );
        sim.advance();
    }

    println!("\nAll three stores reconstruct identical versions:");
    for v in [0u32, (years / 2) as u32, (years - 1) as u32] {
        let a = archive.retrieve(v)?;
        assert_eq!(a, snapshots.retrieve(v)?);
        assert_eq!(a, deltas.retrieve(v)?);
        println!(
            "  version {v}: ✓ ({} countries)",
            a.as_set().map(|s| s.len()).unwrap_or(0)
        );
    }

    // The longitudinal query, directly on the archive.
    let country = sim.country_name(0).to_owned();
    let net_path = KeyPath::root()
        .child(KeyStep::Entry(vec![cdb_model::Atom::Str(country.clone())]))
        .child(KeyStep::Field("people".into()))
        .child(KeyStep::Field("internet_users".into()));
    let gdp_path = KeyPath::root()
        .child(KeyStep::Entry(vec![cdb_model::Atom::Str(country.clone())]))
        .child(KeyStep::Field("economy".into()))
        .child(KeyStep::Field("gdp_musd".into()));

    println!("\nInternet users of {country} over the archive's lifetime:");
    for (v, a) in temporal::series(&archive, &net_path)? {
        println!("  {}: {a}", archive.versions()[v as usize].label);
    }
    if let Some(r) = temporal::correlate(&archive, &net_path, &gdp_path)? {
        println!("correlation with GDP: r = {r:.3}");
    }

    // Fission history, off the archive's interval structure.
    println!("\nCountry lifespans with bounded intervals (fissions visible):");
    for (kp, spans) in temporal::entry_lifespans(&archive, &KeyPath::root())? {
        if spans.iter().any(|(_, e)| e.is_some()) {
            println!("  {kp}: {spans:?}");
        }
    }
    println!("\nrecorded fission events: {}", sim.fissions.len());
    for f in sim.fissions.iter().take(3) {
        println!("  year {}: {} split into {:?}", f.year, f.original, f.parts);
    }

    Ok(())
}
