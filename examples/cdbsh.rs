//! `cdbsh` — an interactive curation shell over the integrated engine.
//!
//! A line-oriented front end exercising the whole public API: curation,
//! annotation, publishing, citation, temporal queries, lifecycle, path
//! queries, SQL over relational views, and the observability layer
//! (`stats`, `trace`, `profile`). Works interactively or with piped
//! scripts:
//!
//! ```console
//! $ cargo run --example cdbsh <<'EOF'
//! new iuphar name
//! add alice GABA-A kind=receptor tm=4
//! add bob 5-HT3 kind=receptor tm=4
//! publish 2008-06
//! edit alice GABA-A tm 5
//! publish 2008-12
//! series GABA-A tm
//! cite 0 GABA-A
//! sql SELECT name FROM entries WHERE tm = 4
//! profile sql SELECT name FROM entries WHERE tm = 4
//! stats
//! path //tm
//! merge alice GABA-A 5-HT3
//! what 5-HT3
//! quit
//! EOF
//! ```
//!
//! A database opened with `open <name> <key> <dir>` is served durably
//! through [`SharedDb`] (WAL + group commit); `profile add …` then
//! shows the full write path, including the `storage.wal.sync` span.

use std::io::{self, BufRead, Write};

use curated_db::model::PathQuery;
use curated_db::obs;
use curated_db::relalg::sql;
use curated_db::server::{Client, Server, ServerConfig, TcpTransport};
use curated_db::{
    Atom, CuratedDatabase, ShardMap, ShardedDb, SharedDb, Snapshot, DEFAULT_BATCH_WINDOW,
};

fn main() {
    let stdin = io::stdin();
    let mut shell = Shell {
        mem: None,
        shared: None,
        sharded: None,
        server: None,
        remote: None,
    };
    let mut clock: u64 = 0;
    let interactive = false; // piped-friendly: no prompt echo logic needed

    println!("cdbsh — curated-database shell (type `help`)");
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        clock += 1;
        match run_command(&mut shell, clock, line) {
            Ok(Output::Quit) => break,
            Ok(Output::Text(s)) => println!("{s}"),
            Err(e) => println!("error: {e}"),
        }
        if interactive {
            let _ = io::stdout().flush();
        }
    }
    // Orderly goodbye whether the script said `quit` or just ended:
    // close our own connection first so the drain below doesn't have
    // to force it, then drain the server.
    if let Some(mut client) = shell.remote.take() {
        let _ = client.close();
    }
    if let Some(server) = shell.server.take() {
        let report = server.drain(std::time::Duration::from_secs(5));
        println!(
            "server drained ({} sessions served, {} forced)",
            report.sessions_served, report.forced
        );
    }
}

enum Output {
    Text(String),
    Quit,
}

const NO_DB: &str = "no database: use `new <name> <key>` or `open <name> <key> <dir>`";

/// Shell state: at most one database — in-memory (`new`), served
/// durably through [`SharedDb`] (`open`), or range-sharded through
/// [`ShardedDb`] (`shard new`) — plus optionally a running TCP server
/// over it (`serve`) and a protocol client (`connect`) that routes
/// curation commands over the wire.
struct Shell {
    mem: Option<CuratedDatabase>,
    shared: Option<SharedDb>,
    sharded: Option<ShardedDb>,
    server: Option<Server>,
    remote: Option<Client<TcpTransport>>,
}

/// A read-only view of the current database. For a durable session
/// this is a consistent [`Snapshot`]; reads never block writers.
enum ReadView<'a> {
    Mem(&'a CuratedDatabase),
    Snap(Snapshot),
}

impl ReadView<'_> {
    fn db(&self) -> &CuratedDatabase {
        match self {
            ReadView::Mem(db) => db,
            ReadView::Snap(s) => s,
        }
    }
}

impl Shell {
    fn read_view(&self) -> Result<ReadView<'_>, String> {
        if let Some(s) = &self.shared {
            return Ok(ReadView::Snap(s.snapshot()));
        }
        if self.sharded.is_some() {
            return Err(
                "sharded database: reads route per shard — use `entries`, `show <key>`, \
                 `notes <key> <field|->`, `what <id>`, or `shard` for the layout"
                    .to_owned(),
            );
        }
        self.mem
            .as_ref()
            .map(ReadView::Mem)
            .ok_or_else(|| NO_DB.to_owned())
    }

    /// Every metric the current database can see: its own registry
    /// merged with the process-global one (global only when no
    /// database is open).
    fn metrics(&self) -> obs::MetricsSnapshot {
        if let Some(s) = &self.shared {
            s.metrics_snapshot()
        } else if let Some(sh) = &self.sharded {
            sh.metrics_snapshot()
        } else if let Some(m) = &self.mem {
            m.metrics_snapshot()
        } else {
            obs::global().snapshot()
        }
    }
}

fn run_command(shell: &mut Shell, time: u64, line: &str) -> Result<Output, String> {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let text = |s: String| Ok(Output::Text(s));

    // While connected, curation and query commands travel over the
    // wire; session-control and observability commands stay local
    // (`trace` needs both halves — the local rings and the wire —
    // and `blackbox` reads local disk).
    if !matches!(
        cmd,
        "help" | "quit" | "exit" | "serve" | "connect" | "disconnect" | "trace" | "blackbox"
    ) {
        if let Some(client) = shell.remote.as_mut() {
            return remote_command(client, time, cmd, &rest);
        }
    }

    match cmd {
        "help" => text(HELP.trim().to_owned()),
        "quit" | "exit" => Ok(Output::Quit),
        "serve" => {
            let [addr] = take::<1>(&rest)?;
            if shell.server.is_some() {
                return Err("already serving (one server per shell)".into());
            }
            // A served database must be shared or sharded; promote an
            // in-memory one (it keeps no WAL — `open` first for
            // durability). A sharded database serves through the same
            // handle: the server routes each request by its key.
            let config = ServerConfig::default();
            let note = format!("{} workers, {} slots", config.workers, config.slots);
            let server = if let Some(sh) = &shell.sharded {
                Server::bind(sh.clone(), addr, config)
            } else {
                if shell.shared.is_none() {
                    let owned = shell.mem.take().ok_or(NO_DB)?;
                    shell.shared = Some(SharedDb::from_db(owned));
                }
                let db = shell.shared.as_ref().expect("just installed").clone();
                Server::bind(db, addr, config)
            }
            .map_err(|e| e.to_string())?;
            let bound = server.local_addr();
            shell.server = Some(server);
            text(format!("serving on {bound} ({note})"))
        }
        "connect" => {
            if shell.remote.is_some() {
                return Err("already connected (disconnect first)".into());
            }
            let addr = match rest.as_slice() {
                [] => shell
                    .server
                    .as_ref()
                    .map(|s| s.local_addr().to_string())
                    .ok_or("connect <addr>, or `serve` first to connect locally")?,
                [addr] => (*addr).to_string(),
                _ => return Err("connect [addr]".into()),
            };
            let mut client = Client::dial(&addr).map_err(|e| e.to_string())?;
            let name = client.hello("cdbsh").map_err(|e| e.to_string())?;
            let epoch = client.epoch().map_err(|e| e.to_string())?;
            shell.remote = Some(client);
            text(format!(
                "connected to {name:?} at {addr} (session pinned at epoch {epoch})"
            ))
        }
        "disconnect" => {
            let mut client = shell.remote.take().ok_or("not connected")?;
            let _ = client.close();
            text("disconnected".into())
        }
        "new" => {
            let [name, key] = take::<2>(&rest)?;
            shell.mem = Some(CuratedDatabase::new(*name, *key));
            shell.shared = None;
            shell.sharded = None;
            text(format!("created database {name:?} keyed by {key:?}"))
        }
        "open" => {
            let [name, key, dir] = take::<3>(&rest)?;
            let shared =
                SharedDb::open_dir(*name, *key, dir, DEFAULT_BATCH_WINDOW).map_err(fmt_err)?;
            let recovered = shared.snapshot().curated.log.len();
            shell.shared = Some(shared);
            shell.mem = None;
            shell.sharded = None;
            // Arm the black box: from here on, a Corrupt recovery, a
            // failed 2PC decision sync, or a session panic snapshots
            // the rings + metrics into <dir>/flight.dump.
            obs::flight::install(dir);
            text(format!(
                "opened durable database {name:?} in {dir} \
                 ({recovered} transactions recovered; flight recorder armed)"
            ))
        }
        "shard" => shard_command(shell, &rest),
        "stats" => {
            let snap = shell.metrics();
            match rest.first() {
                None => text(obs::export::text_table(&snap)),
                Some(&"json") => text(obs::export::line_json(&snap)),
                Some(other) => Err(format!("stats takes no argument or `json`, got {other:?}")),
            }
        }
        "trace" => {
            let [arg] = take::<1>(&rest)?;
            match *arg {
                "on" => {
                    obs::set_tracing(true);
                    text(
                        "tracing on: spans are recorded to the ring buffer \
                         (and stamped onto wire requests while connected)"
                            .into(),
                    )
                }
                "off" => {
                    obs::set_tracing(false);
                    text("tracing off".into())
                }
                "show" => text(obs::export::span_tree(&obs::recent_events())),
                "last" => {
                    let client = shell.remote.as_ref().ok_or("trace last needs `connect`")?;
                    match client.last_trace().0 {
                        0 => Err("no traced exchange yet (`trace on`, then run a command)".into()),
                        id => text(format!("last wire trace id: {id}")),
                    }
                }
                "server" => {
                    let client = shell
                        .remote
                        .as_mut()
                        .ok_or("trace server needs `connect`")?;
                    let dump = client.trace_dump().map_err(|e| e.to_string())?;
                    let spans = obs::export::parse_span_lines(&dump)?;
                    text(format!(
                        "server rings — {} spans:\n{}",
                        spans.len(),
                        obs::export::wire_span_tree(&spans)
                    ))
                }
                "merged" => {
                    // The distributed view: this shell's rings plus the
                    // server's, filtered to the last traced exchange and
                    // merged into one tree — both halves of the wire.
                    let client = shell
                        .remote
                        .as_mut()
                        .ok_or("trace merged needs `connect`")?;
                    let trace = client.last_trace();
                    if trace.0 == 0 {
                        return Err(
                            "no traced exchange yet (`trace on`, then run a command)".into()
                        );
                    }
                    let server = obs::export::parse_span_lines(
                        &client.trace_dump().map_err(|e| e.to_string())?,
                    )?;
                    let local = obs::export::parse_span_lines(&obs::export::span_line_json(
                        &obs::recent_events(),
                    ))?;
                    let merged = obs::export::merge_span_dumps(&[local, server], trace);
                    text(format!(
                        "trace {} — {} spans across client and server:\n{}",
                        trace.0,
                        merged.len(),
                        obs::export::wire_span_tree(&merged)
                    ))
                }
                other => Err(format!(
                    "trace takes on|off|show|last|server|merged, got {other:?}"
                )),
            }
        }
        "blackbox" => {
            let [dir] = take::<1>(&rest)?;
            match obs::flight::load(std::path::Path::new(dir))? {
                None => text(format!("no flight dump in {dir}")),
                Some(dump) => {
                    let spans = dump.spans()?;
                    text(format!(
                        "flight dump #{} — reason {:?}:\n{}",
                        dump.seq,
                        dump.reason,
                        obs::export::wire_span_tree(&spans)
                    ))
                }
            }
        }
        "profile" => {
            if rest.is_empty() {
                return Err("profile <command …>".into());
            }
            let nested = line["profile".len()..].trim();
            let was = obs::tracing_enabled();
            obs::set_tracing(true);
            let root = obs::trace_root();
            let res = run_command(shell, time, nested);
            let events = obs::events_for_trace(root.id());
            drop(root);
            obs::set_tracing(was);
            match res {
                Ok(Output::Text(s)) => text(format!(
                    "{s}\n\nprofile — {} spans:\n{}",
                    events.len(),
                    obs::export::span_tree(&events)
                )),
                Ok(Output::Quit) => Ok(Output::Quit),
                Err(e) => Err(e),
            }
        }
        "add" => {
            if rest.len() < 2 {
                return Err("add <curator> <key> [field=value …]".into());
            }
            let (curator, key) = (rest[0], rest[1]);
            let fields: Vec<(&str, Atom)> = rest[2..]
                .iter()
                .map(|kv| parse_field(kv))
                .collect::<Result<_, _>>()?;
            match (&mut shell.mem, &shell.shared, &shell.sharded) {
                (Some(db), _, _) => db.add_entry(curator, time, key, &fields).map(|_| ()),
                (None, Some(s), _) => s.add_entry(curator, time, key, &fields).map(|_| ()),
                (None, None, Some(sh)) => sh.add_entry(curator, time, key, &fields).map(|_| ()),
                (None, None, None) => return Err(NO_DB.into()),
            }
            .map_err(fmt_err)?;
            match &shell.sharded {
                Some(sh) => text(format!(
                    "added entry {key:?} (shard {})",
                    sh.map().route(key)
                )),
                None => text(format!("added entry {key:?}")),
            }
        }
        "edit" => {
            let [curator, key, field, value] = take::<4>(&rest)?;
            let value = parse_atom(value);
            match (&mut shell.mem, &shell.shared, &shell.sharded) {
                (Some(db), _, _) => db.edit_field(curator, time, key, field, value),
                (None, Some(s), _) => s.edit_field(curator, time, key, field, value),
                (None, None, Some(sh)) => sh.edit_field(curator, time, key, field, value),
                (None, None, None) => return Err(NO_DB.into()),
            }
            .map_err(fmt_err)?;
            text(format!("edited {key}.{field}"))
        }
        "note" => {
            if rest.len() < 4 {
                return Err("note <author> <key> <field|-> <text…>".into());
            }
            let (author, key, field) = (rest[0], rest[1], rest[2]);
            let body = rest[3..].join(" ");
            let field = if field == "-" { None } else { Some(field) };
            match (&mut shell.mem, &shell.shared, &shell.sharded) {
                (Some(db), _, _) => db.annotate(key, field, author, &body, time),
                (None, Some(s), _) => s.annotate(key, field, author, &body, time),
                (None, None, Some(sh)) => sh.annotate(key, field, author, &body, time),
                (None, None, None) => return Err(NO_DB.into()),
            }
            .map_err(fmt_err)?;
            text("noted".into())
        }
        "publish" => {
            let [label] = take::<1>(&rest)?;
            if let Some(sh) = &shell.sharded {
                let ids = sh.publish(*label).map_err(fmt_err)?;
                let ids: Vec<String> = ids.iter().map(|v| v.to_string()).collect();
                return text(format!(
                    "published per-shard versions [{}] ({label})",
                    ids.join(", ")
                ));
            }
            let v = match (&mut shell.mem, &shell.shared) {
                (Some(db), _) => db.publish(*label),
                (None, Some(s)) => s.publish(*label),
                (None, None) => return Err(NO_DB.into()),
            }
            .map_err(fmt_err)?;
            text(format!("published version {v} ({label})"))
        }
        "merge" => {
            let [curator, kept, absorbed] = take::<3>(&rest)?;
            match (&mut shell.mem, &shell.shared, &shell.sharded) {
                (Some(db), _, _) => db.merge_entries(curator, time, kept, absorbed),
                (None, Some(s), _) => s.merge_entries(curator, time, kept, absorbed),
                (None, None, Some(sh)) => sh.merge_entries(curator, time, kept, absorbed),
                (None, None, None) => return Err(NO_DB.into()),
            }
            .map_err(fmt_err)?;
            match &shell.sharded {
                Some(sh) if sh.map().route(kept) != sh.map().route(absorbed) => text(format!(
                    "{absorbed} merged into {kept} (cross-shard: {} ← {})",
                    sh.map().route(kept),
                    sh.map().route(absorbed)
                )),
                _ => text(format!("{absorbed} merged into {kept}")),
            }
        }
        "index" => {
            let [field] = take::<1>(&rest)?;
            let created = match (&mut shell.mem, &shell.shared, &shell.sharded) {
                (Some(db), _, _) => db.create_index(field),
                (None, Some(s), _) => s.create_index(field),
                (None, None, Some(sh)) => sh.create_index(field),
                (None, None, None) => return Err(NO_DB.into()),
            }
            .map_err(fmt_err)?;
            text(if created {
                format!("index on {field:?} created (durable; maintained per commit)")
            } else {
                format!("index on {field:?} already exists")
            })
        }
        "drop-index" => {
            let [field] = take::<1>(&rest)?;
            let dropped = match (&mut shell.mem, &shell.shared, &shell.sharded) {
                (Some(db), _, _) => db.drop_index(field),
                (None, Some(s), _) => s.drop_index(field),
                (None, None, Some(sh)) => sh.drop_index(field),
                (None, None, None) => return Err(NO_DB.into()),
            }
            .map_err(fmt_err)?;
            text(if dropped {
                format!("index on {field:?} dropped")
            } else {
                format!("no index on {field:?}")
            })
        }
        "checkpoint" => {
            if let Some(sh) = &shell.sharded {
                let all = sh.checkpoint().map_err(fmt_err)?;
                let lines: Vec<String> = all
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        format!(
                            "shard {i}: {} bytes covered, {} segments live, {} retired",
                            s.covered_bytes, s.live_segments, s.retired_segments
                        )
                    })
                    .collect();
                return text(lines.join("\n"));
            }
            let stats = match (&mut shell.mem, &shell.shared) {
                (Some(db), _) => db.checkpoint(),
                (None, Some(s)) => s.checkpoint(),
                (None, None) => return Err(NO_DB.into()),
            }
            .map_err(fmt_err)?;
            text(format!(
                "checkpoint installed: {} bytes covered, {} segments live, \
                 {} retired ({} bytes reclaimed)",
                stats.covered_bytes,
                stats.live_segments,
                stats.retired_segments,
                stats.reclaimed_bytes,
            ))
        }
        "parallel" => {
            let [writers, readers, ops] = take::<3>(&rest)?;
            let writers: usize = writers.parse().map_err(|_| "writers must be a number")?;
            let readers: usize = readers.parse().map_err(|_| "readers must be a number")?;
            let ops: u64 = ops.parse().map_err(|_| "ops must be a number")?;
            if let Some(shared) = &shell.shared {
                return text(parallel_session(shared, time, writers, readers, ops)?);
            }
            let owned = shell.mem.take().ok_or(NO_DB)?;
            let mut shared = SharedDb::from_db(owned);
            let report = parallel_session(&shared, time, writers, readers, ops);
            let back = loop {
                match shared.into_inner() {
                    Ok(db) => break db,
                    Err(again) => {
                        shared = again;
                        std::thread::yield_now();
                    }
                }
            };
            shell.mem = Some(back);
            text(report?)
        }
        _ => {
            if let Some(sh) = &shell.sharded {
                return sharded_read(sh, cmd, &rest);
            }
            let view = shell.read_view()?;
            let db = view.db();
            match cmd {
                "notes" => {
                    let [key, field] = take::<2>(&rest)?;
                    let field = if *field == "-" { None } else { Some(*field) };
                    let notes = db.notes_on(key, field);
                    text(
                        notes
                            .iter()
                            .map(|n| format!("[{}] {}: {}", n.time, n.author, n.text))
                            .collect::<Vec<_>>()
                            .join("\n"),
                    )
                }
                "versions" => text(
                    db.archive()
                        .versions()
                        .iter()
                        .map(|v| format!("{}: {}", v.id, v.label))
                        .collect::<Vec<_>>()
                        .join("\n"),
                ),
                "cite" => {
                    let [v, key] = take::<2>(&rest)?;
                    let v: u32 = v.parse().map_err(|_| "version must be a number")?;
                    let c = db.cite(v, key).map_err(fmt_err)?;
                    text(c.to_string())
                }
                "series" => {
                    let [key, field] = take::<2>(&rest)?;
                    let s = db.field_series(key, field).map_err(fmt_err)?;
                    text(
                        s.iter()
                            .map(|(v, a)| format!("v{v}: {a}"))
                            .collect::<Vec<_>>()
                            .join("\n"),
                    )
                }
                "entries" => text(db.entry_keys().map_err(fmt_err)?.join(", ")),
                "show" => {
                    let [key] = take::<1>(&rest)?;
                    let node = db.entry_node(key).map_err(fmt_err)?;
                    let v = db
                        .curated
                        .tree
                        .subtree_value(node)
                        .map_err(|e| e.to_string())?;
                    text(v.to_string())
                }
                "what" => {
                    let [id] = take::<1>(&rest)?;
                    let current = db.resolve_id(id).map_err(fmt_err)?;
                    text(format!("{id} → {current:?}"))
                }
                "history" => {
                    let [key] = take::<1>(&rest)?;
                    let node = db.entry_node(key).map_err(fmt_err)?;
                    let h = curated_db::curation::queries::history(&db.curated, node);
                    text(
                        h.iter()
                            .map(|(t, ops)| {
                                format!("{} by {} ({} ops)", t.id, t.curator, ops.len())
                            })
                            .collect::<Vec<_>>()
                            .join("\n"),
                    )
                }
                "sql" => {
                    let query = line[3..].trim();
                    let mut rdb = entries_view(db)?;
                    let out = sql::execute(&mut rdb, query).map_err(|e| e.to_string())?;
                    text(out.to_string())
                }
                "explain" => {
                    // Like `sql`, but runs the query through the
                    // cost-based planner: statistics and any registered
                    // durable indexes pick the access paths and join
                    // order, and the printed plan tree shows the
                    // planner's row estimates next to the measured
                    // actuals, followed by the cumulative eval metrics
                    // from the observability registry.
                    let query = line[7..].trim();
                    let stmt = sql::parse(query).map_err(|e| e.to_string())?;
                    let sql::Statement::Query(expr) = stmt else {
                        return Err("explain takes a SELECT query".into());
                    };
                    let fields = all_fields(db)?;
                    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
                    let (out, plan, runs) =
                        curated_db::core::views::query_entries_planned(db, &field_refs, &expr)
                            .map_err(fmt_err)?;
                    text(format!(
                        "{}{}\n{out}",
                        plan.render(Some(&runs)),
                        eval_registry_summary()
                    ))
                }
                "indexes" => {
                    let fields = db.index_fields();
                    if fields.is_empty() {
                        text("no indexes (create one with `index <field>`)".into())
                    } else {
                        text(
                            fields
                                .iter()
                                .map(|f| {
                                    let i = db.field_index(f).expect("listed field is indexed");
                                    format!(
                                        "{f}: {} distinct value(s) over {} entrie(s)",
                                        i.distinct(),
                                        i.len()
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join("\n"),
                        )
                    }
                }
                "diff" => {
                    let [a, b] = take::<2>(&rest)?;
                    let a: u32 = a.parse().map_err(|_| "version must be a number")?;
                    let b: u32 = b.parse().map_err(|_| "version must be a number")?;
                    let changes = db.archive().diff(a, b).map_err(|e| e.to_string())?;
                    text(
                        changes
                            .iter()
                            .map(|(kp, c)| format!("{kp}: {c:?}"))
                            .collect::<Vec<_>>()
                            .join("\n"),
                    )
                }
                "prov" => {
                    let q = line[4..].trim();
                    let a = curated_db::curation::provql::query(&db.curated, q)?;
                    text(a.to_string())
                }
                "path" => {
                    let [expr] = take::<1>(&rest)?;
                    let q = PathQuery::parse(expr)?;
                    let snapshot = db.export().map_err(fmt_err)?;
                    let hits = q.values(&snapshot);
                    text(
                        hits.iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join("\n"),
                    )
                }
                other => Err(format!("unknown command {other:?} (try `help`)")),
            }
        }
    }
}

/// `shard …` — create and inspect a range-sharded database.
///
/// `shard new` partitions the key space into `n` contiguous ranges,
/// each served by its own shard; every write thereafter routes by key,
/// and a merge whose two keys land on different shards runs as a
/// cross-shard 2PC transaction. `shard` alone prints the layout;
/// `shard route <key>` answers where a key would go.
fn shard_command(shell: &mut Shell, rest: &[&str]) -> Result<Output, String> {
    let text = |s: String| Ok(Output::Text(s));
    match rest {
        ["new", name, key, n] => {
            let n: usize = n.parse().map_err(|_| "shard count must be a number")?;
            if n == 0 {
                return Err("shard count must be at least 1".into());
            }
            let map = ShardMap::uniform(n);
            shell.sharded = Some(ShardedDb::new(*name, *key, map));
            shell.mem = None;
            shell.shared = None;
            text(format!(
                "created sharded database {name:?} keyed by {key:?} over {n} shard(s); \
                 writes route by key, cross-shard merges run 2PC"
            ))
        }
        ["route", key] => {
            let sh = shell.sharded.as_ref().ok_or(NO_SHARDED)?;
            text(format!("{key:?} → shard {}", sh.map().route(key)))
        }
        [] => {
            let sh = shell.sharded.as_ref().ok_or(NO_SHARDED)?;
            let snap = sh.snapshot();
            let bounds = sh.map().bounds();
            let mut lines = vec![format!(
                "{} shard(s), combined epoch {}",
                sh.shard_count(),
                snap.epoch()
            )];
            for (i, s) in snap.shards().iter().enumerate() {
                let lo = if i == 0 { "-inf" } else { &bounds[i - 1] };
                let hi = bounds.get(i).map_or("+inf", String::as_str);
                let keys = s.entry_keys().map_err(fmt_err)?;
                lines.push(format!(
                    "shard {i} [{lo:?}, {hi:?}): epoch {}, {} entries: {}",
                    s.epoch(),
                    keys.len(),
                    keys.join(", ")
                ));
            }
            let m = sh.metrics_snapshot();
            let get = |k: &str| m.counters.get(k).copied().unwrap_or(0);
            lines.push(format!(
                "cross-shard txns: {} committed, {} aborted",
                get("core.sharded.cross.commits"),
                get("core.sharded.cross.aborts")
            ));
            text(lines.join("\n"))
        }
        _ => Err("shard [new <name> <keyfield> <n> | route <key>]".into()),
    }
}

const NO_SHARDED: &str = "no sharded database: use `shard new <name> <keyfield> <n>`";

/// Key-routed reads over a sharded database: each command pins one
/// coherent [`ShardedSnapshot`] and serves single-key reads from the
/// shard the key routes to; `what` resolves lineage across all shards.
fn sharded_read(sh: &ShardedDb, cmd: &str, rest: &[&str]) -> Result<Output, String> {
    let text = |s: String| Ok(Output::Text(s));
    let snap = sh.snapshot();
    match cmd {
        "entries" => text(snap.entry_keys().map_err(fmt_err)?.join(", ")),
        "what" => {
            let [id] = take::<1>(rest)?;
            let current = snap.resolve_id(id).map_err(fmt_err)?;
            text(format!("{id} → {current:?}"))
        }
        "show" => {
            let [key] = take::<1>(rest)?;
            let db = snap.for_key(key);
            let node = db.entry_node(key).map_err(fmt_err)?;
            let v = db
                .curated
                .tree
                .subtree_value(node)
                .map_err(|e| e.to_string())?;
            text(format!("{v} (shard {})", sh.map().route(key)))
        }
        "notes" => {
            let [key, field] = take::<2>(rest)?;
            let field = if *field == "-" { None } else { Some(*field) };
            let notes = snap.for_key(key).notes_on(key, field);
            text(
                notes
                    .iter()
                    .map(|n| format!("[{}] {}: {}", n.time, n.author, n.text))
                    .collect::<Vec<_>>()
                    .join("\n"),
            )
        }
        other => Err(format!(
            "{other:?} is not routed on a sharded database \
             (entries/show/notes/what work per shard; or `serve` + `connect`)"
        )),
    }
}

/// Command dispatch while `connect`ed: the same verbs, served by the
/// remote session over the wire. Reads come back stamped with the
/// session's pinned epoch; `refresh` re-pins it.
fn remote_command(
    client: &mut Client<TcpTransport>,
    time: u64,
    cmd: &str,
    rest: &[&str],
) -> Result<Output, String> {
    let text = |s: String| Ok(Output::Text(s));
    let net = |e: curated_db::server::ClientError| e.to_string();
    match cmd {
        "ping" => {
            client.ping().map_err(net)?;
            text("pong".into())
        }
        "add" => {
            if rest.len() < 2 {
                return Err("add <curator> <key> [field=value …]".into());
            }
            let (curator, key) = (rest[0], rest[1]);
            let fields: Vec<(String, Atom)> = rest[2..]
                .iter()
                .map(|kv| parse_field(kv).map(|(k, v)| (k.to_owned(), v)))
                .collect::<Result<_, _>>()?;
            let id = client.add(curator, time, key, fields).map_err(net)?;
            text(format!("added entry {key:?} (node {id})"))
        }
        "edit" => {
            let [curator, key, field, value] = take::<4>(rest)?;
            client
                .edit(curator, time, key, field, parse_atom(value))
                .map_err(net)?;
            text(format!("edited {key}.{field}"))
        }
        "note" => {
            if rest.len() < 4 {
                return Err("note <author> <key> <field|-> <text…>".into());
            }
            let (author, key, field) = (rest[0], rest[1], rest[2]);
            let body = rest[3..].join(" ");
            let field = if field == "-" { None } else { Some(field) };
            client
                .annotate(key, field, author, &body, time)
                .map_err(net)?;
            text("noted".into())
        }
        "publish" => {
            let [label] = take::<1>(rest)?;
            let v = client.publish(label).map_err(net)?;
            text(format!("published version {v} ({label})"))
        }
        "merge" => {
            let [curator, kept, absorbed] = take::<3>(rest)?;
            client.merge(curator, time, kept, absorbed).map_err(net)?;
            text(format!("{absorbed} merged into {kept}"))
        }
        "entries" => {
            let (epoch, keys) = client.entries().map_err(net)?;
            text(format!("epoch {epoch}: {}", keys.join(", ")))
        }
        "get" => {
            let [key, field] = take::<2>(rest)?;
            let (epoch, value) = client.get(key, field).map_err(net)?;
            text(format!("{key}.{field} = {value} (epoch {epoch})"))
        }
        "refresh" => {
            let epoch = client.refresh().map_err(net)?;
            text(format!("re-pinned at epoch {epoch}"))
        }
        "epoch" => {
            let epoch = client.epoch().map_err(net)?;
            text(format!("epoch {epoch}"))
        }
        "stats" => {
            // The server answers with its line-JSON metrics dump; the
            // optional `json` argument is accepted for symmetry with
            // the local command.
            match rest {
                [] | ["json"] => text(client.stats().map_err(net)?.trim_end().to_owned()),
                other => Err(format!("stats takes no argument or `json`, got {other:?}")),
            }
        }
        other => Err(format!(
            "{other:?} is not served over a connection (disconnect for the full shell)"
        )),
    }
}

/// Cumulative `relalg.eval.*` readings from the process-global
/// registry, appended to `explain` output so repeated queries show
/// their latency distribution.
fn eval_registry_summary() -> String {
    let snap = obs::global().snapshot();
    let count = snap.counters.get("relalg.eval.count").copied().unwrap_or(0);
    match snap.histograms.get("relalg.eval.ns") {
        Some(h) if h.count > 0 => format!(
            "\nregistry: {count} queries so far — eval latency p50 {} / p95 {} / p99 {}",
            obs::export::fmt_ns(h.p50()),
            obs::export::fmt_ns(h.p95()),
            obs::export::fmt_ns(h.p99()),
        ),
        _ => String::new(),
    }
}

/// `parallel <writers> <readers> <ops>` — serve the database through
/// [`SharedDb`]: writer threads add and edit entries through group
/// commit while reader threads take snapshots and verify epoch and
/// log-prefix monotonicity.
fn parallel_session(
    shared: &SharedDb,
    time: u64,
    writers: usize,
    readers: usize,
    ops: u64,
) -> Result<String, String> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let salt = shared.snapshot().curated.log.len();
    let done = Arc::new(AtomicBool::new(false));
    let samples = Arc::new(AtomicU64::new(0));

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let db = shared.clone();
            let done = done.clone();
            let samples = samples.clone();
            std::thread::spawn(move || {
                let mut last: Option<Snapshot> = None;
                while !done.load(Ordering::Acquire) {
                    let snap = db.snapshot();
                    if let Some(prev) = &last {
                        assert!(snap.epoch() >= prev.epoch(), "epoch went backwards");
                        let (p, n) = (&prev.curated.log, &snap.curated.log);
                        assert!(
                            p.len() <= n.len() && p.iter().zip(n.iter()).all(|(a, b)| a.id == b.id),
                            "snapshot log is not a prefix of its successor"
                        );
                    }
                    samples.fetch_add(1, Ordering::Relaxed);
                    last = Some(snap);
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = shared.clone();
            std::thread::spawn(move || {
                let curator = format!("worker{w}");
                for i in 0..ops {
                    let t = time * 1_000 + (w as u64) * ops + i;
                    let key = format!("p{salt}w{w}n{i}");
                    db.add_entry(&curator, t, &key, &[("v", Atom::Int(i as i64))])
                        .map_err(|e| e.to_string())?;
                    db.edit_field(&curator, t, &key, "v", Atom::Int(-(i as i64)))
                        .map_err(|e| e.to_string())?;
                }
                Ok::<(), String>(())
            })
        })
        .collect();

    let mut failures = Vec::new();
    for (w, h) in writer_handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => failures.push(format!("writer {w}: {e}")),
            Err(_) => failures.push(format!("writer {w} panicked")),
        }
    }
    done.store(true, Ordering::Release);
    for h in reader_handles {
        if h.join().is_err() {
            failures.push("a reader observed inconsistent snapshots".into());
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    let stats = shared.group_stats();
    let epoch = shared.epoch();
    let reads = samples.load(Ordering::Relaxed);
    let stats_line = match stats {
        Some(s) => format!(
            "{} commits in {} synced batches (max batch {})",
            s.frames_synced, s.batches, s.max_batch
        ),
        None => "in-memory database: no WAL, group commit idle".into(),
    };
    Ok(format!(
        "parallel session done: {writers} writers × {ops} add+edit ops, \
         {readers} readers took {reads} consistent snapshots \
         (final epoch {epoch}); {stats_line}"
    ))
}

const HELP: &str = r#"
commands:
  new <name> <keyfield>              create an in-memory database
  open <name> <keyfield> <dir>       open a durable database (WAL +
                                       group commit) in <dir>
  add <curator> <key> [f=v …]        add an entry
  edit <curator> <key> <field> <v>   edit a field
  note <author> <key> <field|-> <t…> annotate (- = whole entry)
  notes <key> <field|->              list annotations
  publish <label>                    archive the current state
  versions | diff <v1> <v2>          list versions / diff two versions
  cite <version> <key>               cite an entry as of a version
  series <key> <field>               value history across versions
  entries | show <key> | history <key>
  merge <curator> <kept> <absorbed>  fuse entries (retires the absorbed id)
  what <id>                          what happened to an identifier
  checkpoint                         install a checkpoint atomically and
                                       retire covered WAL segments
  sql <SELECT …>                     query the relational view `entries`
  explain <SELECT …>                 run via the cost-based planner;
                                       print the plan tree (estimated vs
                                       actual rows, per-operator ms) and
                                       the registry's eval latency
  index <field> | drop-index <field> create/drop a durable secondary
                                       index (WAL-registered, rebuilt on
                                       recovery, used by explain/sql
                                       plans as hash index scans)
  indexes                            list registered indexes
  stats [json]                       metrics registry: text table, or
                                       one JSON object per line
  trace on|off|show                  toggle span recording / show the
                                       recent-span ring buffer; while
                                       connected, `on` also stamps the
                                       trace id onto wire requests
  trace last|server|merged           (connected) last wire trace id /
                                       the server's span rings / both
                                       halves merged into one tree
  blackbox <dir>                     read the flight-recorder dump a
                                       durable database left in <dir>
  profile <command …>                run any command with tracing forced
                                       on and print its span tree
  parallel <writers> <readers> <ops> serve the db concurrently: writers
                                       add+edit over group commit while
                                       readers verify snapshot isolation
  shard new <name> <keyfield> <n>    create an in-memory database range-
                                       sharded over <n> shards; writes
                                       route by key, cross-shard merges
                                       run 2PC
  shard | shard route <key>          print the shard layout (ranges,
                                       entries, cross-shard txn counts)
                                       / where a key routes
  serve <addr>                       serve the db over TCP (use :0 for
                                       an ephemeral port; printed back);
                                       a sharded db serves through the
                                       same protocol, routed by key
  connect [addr]                     connect a wire client (no addr =
                                       this shell's own server); then
                                       add/edit/note/publish/merge/
                                       entries/get/refresh/epoch/ping/
                                       stats travel over the wire
  disconnect                         close the wire session
  get <key> <field>                  (connected) read one field with
                                       its serving epoch
  path </a/b | //x>                  path query over the exported value
  prov <provql>                      provenance query language, e.g.
                                       prov VALUE /entry/name AT TXN 0
                                       prov WHEN CREATED /entry/name
                                       prov FROM WHERE /entry
                                       prov WHO TOUCHED /entry
                                       prov CHANGED BETWEEN TXN 0 AND TXN 2
  help | quit
"#;

fn take<'a, const N: usize>(rest: &'a [&'a str]) -> Result<&'a [&'a str; N], String> {
    rest.get(..N)
        .and_then(|s| <&[&str; N]>::try_from(s).ok())
        .filter(|_| rest.len() == N)
        .ok_or_else(|| format!("expected exactly {N} arguments"))
}

fn parse_field(kv: &str) -> Result<(&str, Atom), String> {
    let (k, v) = kv
        .split_once('=')
        .ok_or_else(|| format!("expected field=value, got {kv:?}"))?;
    Ok((k, parse_atom(v)))
}

fn parse_atom(s: &str) -> Atom {
    if let Ok(i) = s.parse::<i64>() {
        Atom::Int(i)
    } else if s == "true" || s == "false" {
        Atom::Bool(s == "true")
    } else {
        Atom::Str(s.to_owned())
    }
}

fn entries_view(db: &CuratedDatabase) -> Result<curated_db::relalg::Database, String> {
    // Build a view over every field any entry has.
    let fields = all_fields(db)?;
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    let rel = curated_db::core::views::entry_relation(db, &field_refs).map_err(fmt_err)?;
    let mut rdb = curated_db::relalg::Database::new();
    rdb.insert("entries", rel);
    Ok(rdb)
}

fn all_fields(db: &CuratedDatabase) -> Result<Vec<String>, String> {
    let mut out: Vec<String> = Vec::new();
    for key in db.entry_keys().map_err(fmt_err)? {
        let node = db.entry_node(&key).map_err(fmt_err)?;
        for &c in db.curated.tree.children(node).map_err(|e| e.to_string())? {
            let l = db.curated.tree.label(c).map_err(|e| e.to_string())?;
            if l != db.key_field() && !out.iter().any(|x| x == l) {
                out.push(l.to_owned());
            }
        }
    }
    Ok(out)
}

fn fmt_err(e: curated_db::DbError) -> String {
    e.to_string()
}
