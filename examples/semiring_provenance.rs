//! Reproduces Figure 4 — semiring provenance — and instantiates the
//! provenance polynomials in every semiring of §4.1, demonstrating the
//! specialization chain.
//!
//! Run with: `cargo run --example semiring_provenance`

use cdb_model::Atom;
use cdb_semiring::eval::{eval_k, figure4_database, figure4_query};
use cdb_semiring::hom::{poly_to_nat, poly_to_why, why_to_lineage, why_to_minwhy};
use cdb_semiring::instances::prob::event_probability;
use cdb_semiring::{Polynomial, Tropical};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s = |x: &str| Atom::Str(x.into());
    println!("Figure 4: R = {{(a,b,c) ↦ p, (d,b,e) ↦ r, (f,g,e) ↦ s}}");
    println!("V(X,Z) :- R(X,_,Z)  ∪  π(σ[Y=Y' ∨ Z=Z'](R × R))\n");

    // Evaluate once, in the most general semiring: ℕ[X].
    let db = figure4_database(|v| Polynomial::var(v));
    let v = eval_k(&db, &figure4_query())?;

    println!(
        "{:<10} {:<18} {:<14} {:<22} {:<10} {:<8}",
        "tuple", "ℕ[X] polynomial", "why-prov", "minimal-why", "lineage", "count"
    );
    for (tuple, poly) in v.iter() {
        let why = poly_to_why(poly);
        let min = why_to_minwhy(&why);
        let lin = why_to_lineage(&why);
        let n = poly_to_nat(poly);
        let t = format!("({}, {})", tuple[0], tuple[1]);
        println!(
            "{:<10} {:<18} {:<14} {:<22} {:<10} {:<8}",
            t.replace('"', ""),
            poly.to_string(),
            why.to_string(),
            min.to_string(),
            lin.to_string(),
            n.to_string(),
        );
    }

    // Probability: treat p, r, s as independent events.
    println!("\nProbabilistic event tables (p = 0.9, r = 0.8, s = 0.5):");
    let marginal = |v: &str| match v {
        "p" => 0.9,
        "r" => 0.8,
        _ => 0.5,
    };
    for (tuple, poly) in v.iter() {
        let e = why_to_minwhy(&poly_to_why(poly));
        let prob = event_probability(&e, &marginal);
        println!(
            "  P[({}, {}) present] = {prob:.3}",
            tuple[0].to_string().replace('"', ""),
            tuple[1].to_string().replace('"', "")
        );
    }

    // Tropical: cheapest derivation (cost of licensing each source
    // tuple, §1.2's micropayments).
    println!("\nTropical (licensing costs p = 3, r = 2, s = 10):");
    let cost_db = figure4_database(|v| {
        Tropical::Cost(match v {
            "p" => 3,
            "r" => 2,
            _ => 10,
        })
    });
    let costs = eval_k(&cost_db, &figure4_query())?;
    for (tuple, k) in costs.iter() {
        println!(
            "  cheapest derivation of ({}, {}): {k}",
            tuple[0].to_string().replace('"', ""),
            tuple[1].to_string().replace('"', "")
        );
    }

    // The fundamental commutation property, checked live.
    let why_direct = eval_k(
        &figure4_database(|x| cdb_semiring::Why::var(x)),
        &figure4_query(),
    )?;
    assert_eq!(v.map_annotations(&poly_to_why), why_direct);
    println!("\n✓ evaluate-in-ℕ[X]-then-specialize = evaluate-directly (homomorphism property)");

    // The (d,e) tuple, narrated as the paper does for (a,c)/(a,e).
    let de = v.annotation(&vec![s("d"), s("e")]);
    println!("\n(d,e) was formed by: unioning r with r·r and with the join r·s — {de}");

    Ok(())
}
