//! Curation-session simulation: the copy-paste-correct loop of §3.
//!
//! "One typically tries to find a bibtex entry on the web, copies and
//! pastes it into one's own bibliography, and then corrects it" — this
//! module drives `cdb-curation` through exactly that loop at scale, so
//! the provenance-store experiments (E6) measure realistic op mixes.

use cdb_curation::ops::CuratedTree;
use cdb_curation::provstore::StoreMode;
use cdb_curation::NodeId;
use cdb_model::Atom;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a simulated curation effort.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Entries available in the upstream source database.
    pub source_entries: usize,
    /// Fields per source entry.
    pub fields_per_entry: usize,
    /// Transactions (curator sessions) to run.
    pub transactions: usize,
    /// Pastes per transaction.
    pub pastes_per_txn: usize,
    /// Corrections (field edits) per transaction.
    pub edits_per_txn: usize,
    /// Fresh inserts per transaction.
    pub inserts_per_txn: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            source_entries: 50,
            fields_per_entry: 8,
            transactions: 20,
            pastes_per_txn: 3,
            edits_per_txn: 4,
            inserts_per_txn: 1,
        }
    }
}

/// A simulated curation effort: an upstream source database and a
/// curator's target database built by copy-paste-correct loops.
#[derive(Debug)]
pub struct CurationSim {
    /// The upstream database entries are copied from.
    pub source: CuratedTree,
    /// The curator's database.
    pub target: CuratedTree,
    source_entries: Vec<NodeId>,
    pasted_roots: Vec<NodeId>,
    rng: StdRng,
    cfg: SessionConfig,
    time: u64,
}

impl CurationSim {
    /// Builds the source database and an empty target with the given
    /// provenance-store mode.
    pub fn new(seed: u64, mode: StoreMode, cfg: SessionConfig) -> Self {
        let mut source = CuratedTree::new("upstream", StoreMode::Hereditary);
        let mut source_entries = Vec::new();
        let root = source.tree.root();
        let mut t = source.begin("upstream-team", 0);
        for i in 0..cfg.source_entries {
            let e = t.insert(root, format!("entry{i}"), None).expect("insert");
            for f in 0..cfg.fields_per_entry {
                t.insert(e, format!("f{f}"), Some(Atom::Str(format!("v{i}.{f}"))))
                    .expect("insert");
            }
            source_entries.push(e);
        }
        t.commit();
        CurationSim {
            source,
            target: CuratedTree::new("curated", mode),
            source_entries,
            pasted_roots: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            cfg,
            time: 1,
        }
    }

    /// Runs all configured transactions.
    pub fn run(&mut self) {
        for s in 0..self.cfg.transactions {
            self.run_one(s);
        }
    }

    fn run_one(&mut self, session: usize) {
        let curator = format!("curator{}", session % 3);
        let root = self.target.tree.root();
        self.time += 1;

        // Copy phase: pick entries to paste (clipboards made before the
        // transaction opens, as in real desktop copy-paste).
        let mut clips = Vec::new();
        for _ in 0..self.cfg.pastes_per_txn {
            let i = self.rng.gen_range(0..self.source_entries.len());
            clips.push(self.source.copy(self.source_entries[i]).expect("copy"));
        }

        let mut t = self.target.begin(curator, self.time);
        for clip in &clips {
            let pasted = t.paste(root, clip).expect("paste");
            self.pasted_roots.push(pasted);
        }
        // Correct phase: edit random fields of random pasted entries.
        // Curators iterate: about half the corrections are revised again
        // within the same session (typo fixed, then wording improved) —
        // the pattern transaction squashing collapses.
        for _ in 0..self.cfg.edits_per_txn {
            if self.pasted_roots.is_empty() {
                break;
            }
            let i = self.rng.gen_range(0..self.pasted_roots.len());
            let entry = self.pasted_roots[i];
            if let Ok(children) = t.tree().children(entry).map(<[NodeId]>::to_vec) {
                if !children.is_empty() {
                    let c = children[self.rng.gen_range(0..children.len())];
                    let _ = t.modify(c, Some(Atom::Str(format!("corrected@{}", self.time))));
                    if self.rng.gen_bool(0.5) {
                        let _ = t.modify(c, Some(Atom::Str(format!("revised@{}", self.time))));
                    }
                }
            }
        }
        // Fresh data typed in by the curator — plus the occasional
        // scratch note created and discarded within the session.
        for k in 0..self.cfg.inserts_per_txn {
            let e = t
                .insert(
                    root,
                    format!("note_{session}_{k}"),
                    Some(Atom::Str("obs".into())),
                )
                .expect("insert");
            let _ = e;
        }
        if self.rng.gen_bool(0.4) {
            let scratch = t
                .insert(
                    root,
                    format!("scratch_{session}"),
                    Some(Atom::Str("tmp".into())),
                )
                .expect("insert");
            let _ = t.modify(scratch, Some(Atom::Str("tmp2".into())));
            let _ = t.delete(scratch);
        }
        t.commit();
    }

    /// The pasted entry roots (for provenance queries).
    pub fn pasted_roots(&self) -> &[NodeId] {
        &self.pasted_roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_curation::provstore::squash;
    use cdb_curation::queries;

    #[test]
    fn sessions_are_deterministic() {
        let mut a = CurationSim::new(11, StoreMode::Hereditary, SessionConfig::default());
        let mut b = CurationSim::new(11, StoreMode::Hereditary, SessionConfig::default());
        a.run();
        b.run();
        assert_eq!(a.target.tree.size(), b.target.tree.size());
        assert_eq!(a.target.prov.record_count(), b.target.prov.record_count());
    }

    #[test]
    fn hereditary_store_is_much_smaller_than_naive() {
        let cfg = SessionConfig::default();
        let mut naive = CurationSim::new(5, StoreMode::Naive, cfg.clone());
        let mut hered = CurationSim::new(5, StoreMode::Hereditary, cfg);
        naive.run();
        hered.run();
        let (n, h) = (
            naive.target.prov.record_count(),
            hered.target.prov.record_count(),
        );
        assert!(
            n > 3 * h,
            "naive {n} records vs hereditary {h}: pasted subtrees have 9 nodes each"
        );
    }

    #[test]
    fn provenance_queries_work_after_simulation() {
        let mut sim = CurationSim::new(8, StoreMode::Hereditary, SessionConfig::default());
        sim.run();
        let some_entry = sim.pasted_roots()[0];
        // Every pasted entry knows it was copied from upstream.
        let chain = queries::how_arrived(&sim.target, some_entry);
        assert!(chain
            .iter()
            .any(|o| matches!(o, cdb_curation::Origin::CopiedFrom { db, .. } if db == "upstream")));
        assert!(queries::when_created(&sim.target, some_entry).is_some());
    }

    #[test]
    fn squashing_shortens_transaction_logs() {
        // Edits in the same txn as the paste fold away under squashing
        // only when they hit nodes created in that txn; measure overall.
        let mut sim = CurationSim::new(
            9,
            StoreMode::Hereditary,
            SessionConfig {
                transactions: 10,
                edits_per_txn: 8,
                ..Default::default()
            },
        );
        sim.run();
        let raw: usize = sim.target.log.iter().map(|t| t.ops.len()).sum();
        let squashed: usize = sim.target.log.iter().map(|t| squash(&t.ops).len()).sum();
        assert!(squashed < raw, "{squashed} < {raw}");
    }
}
