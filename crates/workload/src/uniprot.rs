//! UniProt-like protein-entry databases.
//!
//! Entries mimic the Figure 1 flat-file structure: accession (`ac`, the
//! key), identifier, description, gene names, organism and lineage,
//! references, comment fields (the annotation §2 distinguishes from core
//! data), keywords and a sequence. Evolution follows the paper's
//! characterization: "curated databases do not grow or change rapidly"
//! and "updates are mostly additions … a node tends to persist through
//! many versions".

use cdb_model::{KeySpec, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic UniProt-like database evolution.
#[derive(Debug, Clone)]
pub struct UniprotConfig {
    /// Entries in the initial release.
    pub initial_entries: usize,
    /// New entries added per release (additions dominate).
    pub adds_per_release: usize,
    /// Fraction of existing entries whose annotation changes per
    /// release.
    pub edit_fraction: f64,
    /// Fraction of existing entries deleted per release (tiny).
    pub delete_fraction: f64,
    /// Probability per release of a *fusion* event (two entries found to
    /// be the same gene, §6.2).
    pub fusion_probability: f64,
    /// Amino-acid sequence length.
    pub sequence_len: usize,
}

impl Default for UniprotConfig {
    fn default() -> Self {
        UniprotConfig {
            initial_entries: 100,
            adds_per_release: 10,
            edit_fraction: 0.05,
            delete_fraction: 0.005,
            fusion_probability: 0.3,
            sequence_len: 120,
        }
    }
}

/// A recorded fusion event: `absorbed` was merged into `kept`, and its
/// accession retired (the paper's UniProt retired-identifier mechanism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionEvent {
    /// The release at which the fusion happened.
    pub release: u32,
    /// The surviving accession.
    pub kept: String,
    /// The retired accession.
    pub absorbed: String,
}

/// A deterministic UniProt-like database simulator.
#[derive(Debug, Clone)]
pub struct UniprotSim {
    cfg: UniprotConfig,
    rng: StdRng,
    entries: Vec<Entry>,
    next_ac: usize,
    release: u32,
    /// All fusion events so far.
    pub fusions: Vec<FusionEvent>,
}

#[derive(Debug, Clone)]
struct Entry {
    ac: String,
    id: String,
    de: String,
    gene: String,
    organism: String,
    lineage: Vec<String>,
    function: String,
    similarity: String,
    keywords: Vec<String>,
    sequence: String,
    /// Accessions retired into this entry by fusion.
    secondary_acs: Vec<String>,
    annotation_rev: u32,
}

const ORGANISMS: [&str; 4] = [
    "HOMO SAPIENS",
    "MUS MUSCULUS",
    "RATTUS NORVEGICUS",
    "DANIO RERIO",
];
const KEYWORDS: [&str; 8] = [
    "BRAIN",
    "NEURONE",
    "PHOSPHORYLATION",
    "MULTIGENE FAMILY",
    "KINASE",
    "MEMBRANE",
    "TRANSPORT",
    "SIGNAL",
];
const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

impl UniprotSim {
    /// Creates a simulator with a deterministic seed and builds the
    /// initial release.
    pub fn new(seed: u64, cfg: UniprotConfig) -> Self {
        let mut sim = UniprotSim {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            entries: Vec::new(),
            next_ac: 0,
            release: 0,
            fusions: Vec::new(),
        };
        for _ in 0..sim.cfg.initial_entries {
            let e = sim.fresh_entry();
            sim.entries.push(e);
        }
        sim
    }

    fn fresh_entry(&mut self) -> Entry {
        let n = self.next_ac;
        self.next_ac += 1;
        let seq: String = (0..self.cfg.sequence_len)
            .map(|_| AMINO[self.rng.gen_range(0..AMINO.len())] as char)
            .collect();
        let org = ORGANISMS[self.rng.gen_range(0..ORGANISMS.len())];
        let nkw = self.rng.gen_range(1..4);
        let keywords = (0..nkw)
            .map(|_| KEYWORDS[self.rng.gen_range(0..KEYWORDS.len())].to_owned())
            .collect();
        Entry {
            ac: format!("Q{n:05}"),
            id: format!("P{n:04}_HUMAN"),
            de: format!("PROTEIN {n} (FAMILY {})", n % 17),
            gene: format!("GN{}", n % 311),
            organism: org.to_owned(),
            lineage: vec![
                "EUKARYOTA".into(),
                "METAZOA".into(),
                "CHORDATA".into(),
                org.split(' ').next().unwrap_or("GENUS").to_owned(),
            ],
            function: format!("ACTIVATES PATHWAY {}", n % 29),
            similarity: format!("BELONGS TO THE {} FAMILY", n % 17),
            keywords,
            sequence: seq,
            secondary_acs: Vec::new(),
            annotation_rev: 0,
        }
    }

    /// The hierarchical key spec for this database: entries keyed by
    /// accession, references by number.
    pub fn key_spec() -> KeySpec {
        KeySpec::new().rule(Vec::<String>::new(), ["ac"])
    }

    /// The current release as a value: a set of entry records.
    pub fn snapshot(&self) -> Value {
        Value::set(self.entries.iter().map(entry_value))
    }

    /// Current release number.
    pub fn release(&self) -> u32 {
        self.release
    }

    /// Current entry count.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Advances one release: additions, a few annotation edits, rare
    /// deletions, and possibly a fusion.
    pub fn advance(&mut self) {
        self.release += 1;
        // Annotation edits.
        let n = self.entries.len();
        let edits = ((n as f64) * self.cfg.edit_fraction).ceil() as usize;
        for _ in 0..edits.min(n) {
            let i = self.rng.gen_range(0..self.entries.len());
            let release = self.release;
            let e = &mut self.entries[i];
            e.annotation_rev = release;
            e.function = format!("ACTIVATES PATHWAY {} (REV {release})", i % 29);
        }
        // Rare deletions.
        let dels = ((n as f64) * self.cfg.delete_fraction).floor() as usize;
        for _ in 0..dels {
            if self.entries.len() > 2 {
                let i = self.rng.gen_range(0..self.entries.len());
                self.entries.remove(i);
            }
        }
        // Possible fusion: two entries discovered to be the same gene.
        if self.entries.len() > 2 && self.rng.gen_bool(self.cfg.fusion_probability) {
            let i = self.rng.gen_range(0..self.entries.len());
            let mut j = self.rng.gen_range(0..self.entries.len());
            while j == i {
                j = self.rng.gen_range(0..self.entries.len());
            }
            let (keep, absorb) = if i < j { (i, j) } else { (j, i) };
            let absorbed = self.entries.remove(absorb);
            let kept = &mut self.entries[keep];
            kept.secondary_acs.push(absorbed.ac.clone());
            kept.secondary_acs
                .extend(absorbed.secondary_acs.iter().cloned());
            self.fusions.push(FusionEvent {
                release: self.release,
                kept: kept.ac.clone(),
                absorbed: absorbed.ac,
            });
        }
        // Additions dominate.
        for _ in 0..self.cfg.adds_per_release {
            let e = self.fresh_entry();
            self.entries.push(e);
        }
    }
}

fn entry_value(e: &Entry) -> Value {
    Value::record([
        ("ac", Value::str(e.ac.clone())),
        ("id", Value::str(e.id.clone())),
        ("de", Value::str(e.de.clone())),
        ("gn", Value::str(e.gene.clone())),
        ("os", Value::str(e.organism.clone())),
        (
            "oc",
            Value::list(e.lineage.iter().map(|l| Value::str(l.clone()))),
        ),
        (
            "cc",
            Value::record([
                ("function", Value::str(e.function.clone())),
                ("similarity", Value::str(e.similarity.clone())),
                ("annotation_rev", Value::int(i64::from(e.annotation_rev))),
            ]),
        ),
        (
            "kw",
            Value::set(e.keywords.iter().map(|k| Value::str(k.clone()))),
        ),
        (
            "secondary_acs",
            Value::set(e.secondary_acs.iter().map(|a| Value::str(a.clone()))),
        ),
        ("sq", Value::str(e.sequence.clone())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = UniprotSim::new(42, UniprotConfig::default());
        let mut b = UniprotSim::new(42, UniprotConfig::default());
        for _ in 0..3 {
            a.advance();
            b.advance();
        }
        assert_eq!(a.snapshot(), b.snapshot());
        let mut c = UniprotSim::new(43, UniprotConfig::default());
        c.advance();
        c.advance();
        c.advance();
        assert_ne!(a.snapshot(), c.snapshot(), "different seed differs");
    }

    #[test]
    fn snapshots_satisfy_the_key_spec() {
        let mut sim = UniprotSim::new(7, UniprotConfig::default());
        let spec = UniprotSim::key_spec();
        for _ in 0..5 {
            assert!(spec.keyed_nodes(&sim.snapshot()).is_ok());
            sim.advance();
        }
    }

    #[test]
    fn additions_dominate() {
        let cfg = UniprotConfig::default();
        let mut sim = UniprotSim::new(1, cfg.clone());
        let before = sim.entry_count();
        for _ in 0..10 {
            sim.advance();
        }
        let after = sim.entry_count();
        assert!(after > before + 10 * cfg.adds_per_release / 2);
    }

    #[test]
    fn fusions_retire_accessions() {
        let cfg = UniprotConfig {
            fusion_probability: 1.0,
            ..Default::default()
        };
        let mut sim = UniprotSim::new(5, cfg);
        sim.advance();
        assert_eq!(sim.fusions.len(), 1);
        let f = &sim.fusions[0];
        let snap = sim.snapshot();
        // The kept entry carries the retired ac in secondary_acs.
        let set = snap.as_set().unwrap();
        let kept = set
            .iter()
            .find(|e| e.field("ac") == Some(&Value::str(f.kept.clone())))
            .expect("kept entry present");
        let secs = kept.field("secondary_acs").unwrap().as_set().unwrap();
        assert!(secs.contains(&Value::str(f.absorbed.clone())));
        // The absorbed entry is gone.
        assert!(!set
            .iter()
            .any(|e| e.field("ac") == Some(&Value::str(f.absorbed.clone()))));
    }

    #[test]
    fn entries_have_the_figure1_fields() {
        let sim = UniprotSim::new(
            9,
            UniprotConfig {
                initial_entries: 1,
                ..Default::default()
            },
        );
        let snap = sim.snapshot();
        let e = sim_first(&snap);
        for f in ["ac", "id", "de", "gn", "os", "oc", "cc", "kw", "sq"] {
            assert!(e.field(f).is_some(), "missing field {f}");
        }
        let seq = e.field("sq").unwrap();
        assert_eq!(seq.as_atom().unwrap().as_str().unwrap().len(), 120);
    }

    fn sim_first(snap: &Value) -> &Value {
        snap.as_set().unwrap().iter().next().unwrap()
    }
}
