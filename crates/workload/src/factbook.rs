//! World-Factbook-like country databases with yearly revisions.
//!
//! Each country is a hierarchical entry (geography / people / economy /
//! government categories with leaf statistics). Yearly revisions nudge
//! the numeric leaves (the temporal-query workload: "the internet
//! penetration of Liechtenstein over the past five years") and
//! occasionally *split* a country (fission, §6.2 — "a phenomenon one
//! would expect in the World Factbook over its existence").

use cdb_model::{KeySpec, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic Factbook.
#[derive(Debug, Clone)]
pub struct FactbookConfig {
    /// Number of countries initially.
    pub countries: usize,
    /// Fraction of numeric leaves revised per year.
    pub revision_fraction: f64,
    /// Probability per year of a country fission.
    pub fission_probability: f64,
}

impl Default for FactbookConfig {
    fn default() -> Self {
        FactbookConfig {
            countries: 30,
            revision_fraction: 0.5,
            fission_probability: 0.2,
        }
    }
}

/// A recorded fission event: `original` split into `parts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FissionEvent {
    /// The year (version) of the split.
    pub year: u32,
    /// The country that ceased to exist.
    pub original: String,
    /// The successor countries.
    pub parts: Vec<String>,
}

#[derive(Debug, Clone)]
struct Country {
    name: String,
    population: i64,
    area: i64,
    gdp: i64,
    internet_users: i64,
    government: String,
    /// Predecessor country, if created by fission.
    predecessor: Option<String>,
}

/// A deterministic Factbook simulator.
#[derive(Debug, Clone)]
pub struct FactbookSim {
    cfg: FactbookConfig,
    rng: StdRng,
    countries: Vec<Country>,
    year: u32,
    next_id: usize,
    /// All fission events so far.
    pub fissions: Vec<FissionEvent>,
}

const GOVERNMENTS: [&str; 4] = [
    "republic",
    "constitutional monarchy",
    "federation",
    "parliamentary democracy",
];

impl FactbookSim {
    /// Creates the initial edition.
    pub fn new(seed: u64, cfg: FactbookConfig) -> Self {
        let mut sim = FactbookSim {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            countries: Vec::new(),
            year: 0,
            next_id: 0,
            fissions: Vec::new(),
        };
        for _ in 0..sim.cfg.countries {
            let c = sim.fresh_country(None);
            sim.countries.push(c);
        }
        sim
    }

    fn fresh_country(&mut self, predecessor: Option<String>) -> Country {
        let id = self.next_id;
        self.next_id += 1;
        Country {
            name: format!("Country{id:03}"),
            population: self.rng.gen_range(30_000..80_000_000),
            area: self.rng.gen_range(100..2_000_000),
            gdp: self.rng.gen_range(1_000..5_000_000),
            internet_users: self.rng.gen_range(1_000..1_000_000),
            government: GOVERNMENTS[self.rng.gen_range(0..GOVERNMENTS.len())].to_owned(),
            predecessor,
        }
    }

    /// The key spec: countries keyed by name.
    pub fn key_spec() -> KeySpec {
        KeySpec::new().rule(Vec::<String>::new(), ["name"])
    }

    /// Current year (version number).
    pub fn year(&self) -> u32 {
        self.year
    }

    /// Number of countries.
    pub fn country_count(&self) -> usize {
        self.countries.len()
    }

    /// The name of the i-th country (for building query paths).
    pub fn country_name(&self, i: usize) -> &str {
        &self.countries[i].name
    }

    /// The current edition as a value.
    pub fn snapshot(&self) -> Value {
        Value::set(self.countries.iter().map(country_value))
    }

    /// Advances one year.
    pub fn advance(&mut self) {
        self.year += 1;
        let n = self.countries.len();
        let revs = ((n as f64) * self.cfg.revision_fraction).ceil() as usize;
        for _ in 0..revs.min(n) {
            let i = self.rng.gen_range(0..self.countries.len());
            let c = &mut self.countries[i];
            // Random-walk the statistics, biased upward (growth).
            let bump = |rng: &mut StdRng, v: i64| -> i64 {
                let delta = rng.gen_range(-3..8) as f64 / 100.0;
                (v as f64 * (1.0 + delta)) as i64
            };
            c.population = bump(&mut self.rng, c.population).max(1_000);
            c.gdp = bump(&mut self.rng, c.gdp).max(100);
            c.internet_users = bump(&mut self.rng, c.internet_users).max(100);
        }
        if self.countries.len() > 1 && self.rng.gen_bool(self.cfg.fission_probability) {
            let i = self.rng.gen_range(0..self.countries.len());
            let original = self.countries.remove(i);
            let mut parts = Vec::new();
            for frac in [0.6, 0.4] {
                let mut part = self.fresh_country(Some(original.name.clone()));
                part.population = (original.population as f64 * frac) as i64;
                part.area = (original.area as f64 * frac) as i64;
                part.gdp = (original.gdp as f64 * frac) as i64;
                part.internet_users = (original.internet_users as f64 * frac) as i64;
                parts.push(part.name.clone());
                self.countries.push(part);
            }
            self.fissions.push(FissionEvent {
                year: self.year,
                original: original.name,
                parts,
            });
        }
    }
}

fn country_value(c: &Country) -> Value {
    let mut fields = vec![
        ("name".to_owned(), Value::str(c.name.clone())),
        (
            "geography".to_owned(),
            Value::record([("area_sq_km", Value::int(c.area))]),
        ),
        (
            "people".to_owned(),
            Value::record([
                ("population", Value::int(c.population)),
                ("internet_users", Value::int(c.internet_users)),
            ]),
        ),
        (
            "economy".to_owned(),
            Value::record([("gdp_musd", Value::int(c.gdp))]),
        ),
        (
            "government".to_owned(),
            Value::record([("type", Value::str(c.government.clone()))]),
        ),
    ];
    if let Some(p) = &c.predecessor {
        fields.push(("predecessor".to_owned(), Value::str(p.clone())));
    }
    Value::record(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_keyed() {
        let mut a = FactbookSim::new(3, FactbookConfig::default());
        let mut b = FactbookSim::new(3, FactbookConfig::default());
        let spec = FactbookSim::key_spec();
        for _ in 0..5 {
            a.advance();
            b.advance();
            assert!(spec.keyed_nodes(&a.snapshot()).is_ok());
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn revisions_change_leaf_statistics() {
        let mut sim = FactbookSim::new(
            1,
            FactbookConfig {
                fission_probability: 0.0,
                revision_fraction: 1.0,
                ..Default::default()
            },
        );
        let before = sim.snapshot();
        sim.advance();
        let after = sim.snapshot();
        assert_ne!(before, after);
        // Country set (names) unchanged without fission.
        let names = |v: &Value| -> std::collections::BTreeSet<Value> {
            v.as_set()
                .unwrap()
                .iter()
                .map(|c| c.field("name").unwrap().clone())
                .collect()
        };
        assert_eq!(names(&before), names(&after));
    }

    #[test]
    fn fission_splits_a_country() {
        let mut sim = FactbookSim::new(
            2,
            FactbookConfig {
                fission_probability: 1.0,
                countries: 5,
                ..Default::default()
            },
        );
        let before = sim.country_count();
        sim.advance();
        assert_eq!(sim.country_count(), before + 1, "one became two");
        assert_eq!(sim.fissions.len(), 1);
        let f = &sim.fissions[0];
        assert_eq!(f.parts.len(), 2);
        // Successors record their predecessor.
        let snap = sim.snapshot();
        for part in &f.parts {
            let c = snap
                .as_set()
                .unwrap()
                .iter()
                .find(|c| c.field("name") == Some(&Value::str(part.clone())))
                .unwrap();
            assert_eq!(
                c.field("predecessor"),
                Some(&Value::str(f.original.clone()))
            );
        }
    }

    #[test]
    fn hierarchy_has_the_factbook_categories() {
        let sim = FactbookSim::new(
            4,
            FactbookConfig {
                countries: 1,
                ..Default::default()
            },
        );
        let snap = sim.snapshot();
        let c = snap.as_set().unwrap().iter().next().unwrap();
        for cat in ["geography", "people", "economy", "government"] {
            assert!(c.field(cat).is_some(), "missing {cat}");
        }
    }
}
