//! # cdb-workload
//!
//! Synthetic workloads standing in for the curated databases the paper
//! describes (§1). The paper's actual datasets (UniProt releases, CIA
//! World Factbook editions, the IUPHAR receptor database) are not
//! redistributable, so these generators reproduce the *structural*
//! statistics the experiments depend on — hierarchical entries with
//! stable keys, append-mostly evolution, long-lived nodes, occasional
//! field edits and entry fission/fusion — with fully deterministic
//! seeding. (See DESIGN.md's substitution table.)
//!
//! * [`uniprot`] — protein-entry databases: large entries, slow change,
//!   additions dominate (the regime where §5.1 says fat-node archiving
//!   shines).
//! * [`factbook`] — country hierarchies with yearly revisions of leaf
//!   statistics (the temporal-query workload) and occasional country
//!   splits (fission, §6.2).
//! * [`sessions`] — copy-paste curation sessions against
//!   `cdb-curation`, driving the provenance-store experiments (E6).
//! * [`relational`] — flat equi-joinable tables with controllable key
//!   cardinality, for the join benchmarks and the engine-equivalence
//!   differential tests of `cdb-relalg::exec`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod factbook;
pub mod relational;
pub mod sessions;
pub mod uniprot;

pub use factbook::FactbookSim;
pub use relational::JoinConfig;
pub use sessions::CurationSim;
pub use uniprot::UniprotSim;
