//! Flat relational workloads: equi-joinable tables for the join
//! benchmarks and the engine-equivalence differential tests.
//!
//! The curated-database workloads ([`crate::uniprot`], [`crate::factbook`])
//! are hierarchical; the physical join engine in `cdb-relalg::exec` wants
//! wide, flat tables with controllable key skew. [`join_tables`] generates
//! a pair `R(K, A)` / `S(K, B)` whose join selectivity is set by
//! [`JoinConfig::key_cardinality`]: the expected output size of `R ⋈ S`
//! is `left_rows · right_rows / key_cardinality`.

use cdb_model::Atom;
use cdb_relalg::{Database, Pred, RaExpr, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a two-table equi-join workload.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Rows in `R` (the probe side of a hash join).
    pub left_rows: usize,
    /// Rows in `S` (the build side).
    pub right_rows: usize,
    /// Number of distinct join-key values; keys are drawn uniformly, so
    /// this controls both selectivity and hash-bucket fan-out.
    pub key_cardinality: usize,
    /// Number of distinct payload values in the non-key columns.
    pub payload_values: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            left_rows: 10_000,
            right_rows: 10_000,
            key_cardinality: 10_000,
            payload_values: 1_000,
        }
    }
}

/// Generates the pair `R(K, A)`, `S(K, B)` deterministically from a
/// seed. `K` is the shared join key; `A` and `B` are payloads.
pub fn join_tables(seed: u64, cfg: &JoinConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let card = cfg.key_cardinality.max(1) as i64;
    let payload = cfg.payload_values.max(1) as i64;
    let mut table = |rows: usize, payload_name: &str| {
        Relation::table(
            ["K", payload_name],
            (0..rows).map(|_| {
                vec![
                    Atom::Int(rng.gen_range(0..card)),
                    Atom::Int(rng.gen_range(0..payload)),
                ]
            }),
        )
        .expect("generated rows match the schema")
    };
    let r = table(cfg.left_rows, "A");
    let s = table(cfg.right_rows, "B");
    Database::new().with("R", r).with("S", s)
}

/// The natural-join query over [`join_tables`] output: `R ⋈ S` on `K`.
pub fn natural_join_query() -> RaExpr {
    RaExpr::scan("R").natural_join(RaExpr::scan("S"))
}

/// The same join written as SQL compiles it: `σ[r.K = s.K](R × S)` —
/// the shape the equi-join recognizer turns into a hash join.
pub fn select_product_query() -> RaExpr {
    RaExpr::ScanAs("R".into(), "r".into())
        .product(RaExpr::ScanAs("S".into(), "s".into()))
        .select(Pred::col_eq_col("r.K", "s.K"))
}

/// Generates the triple `R(K, A)`, `S(K, B)`, `T(K, C)` for the
/// planner benchmarks: `R` and `S` are sized per the config and `T` is
/// an eighth of `S` (at least one row), so a cost-based join order has
/// a genuinely smaller build side to prefer.
pub fn chain_tables(seed: u64, cfg: &JoinConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let card = cfg.key_cardinality.max(1) as i64;
    let payload = cfg.payload_values.max(1) as i64;
    let mut table = |rows: usize, payload_name: &str| {
        Relation::table(
            ["K", payload_name],
            (0..rows).map(|_| {
                vec![
                    Atom::Int(rng.gen_range(0..card)),
                    Atom::Int(rng.gen_range(0..payload)),
                ]
            }),
        )
        .expect("generated rows match the schema")
    };
    let r = table(cfg.left_rows, "A");
    let s = table(cfg.right_rows, "B");
    let t = table((cfg.right_rows / 8).max(1), "C");
    Database::new().with("R", r).with("S", s).with("T", t)
}

/// The three-way chain as SQL compiles it:
/// `σ[r.K = s.K ∧ s.K = t.K]((R × S) × T)`. The single-shape PR-1
/// recognizer can only hash one of the two equalities (the other
/// conjunct spans one side of the top product), so it materializes the
/// inner `R × S`; the planner runs two hash joins.
pub fn chain_query() -> RaExpr {
    RaExpr::ScanAs("R".into(), "r".into())
        .product(RaExpr::ScanAs("S".into(), "s".into()))
        .product(RaExpr::ScanAs("T".into(), "t".into()))
        .select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_col("s.K", "t.K")))
}

/// A point lookup on the join key: `σ[K = key](R)` — a full scan plus
/// filter without an index, one hash probe with one.
pub fn point_lookup_query(key: i64) -> RaExpr {
    RaExpr::scan("R").select(Pred::col_eq_const("K", key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = JoinConfig {
            left_rows: 50,
            right_rows: 40,
            ..JoinConfig::default()
        };
        assert_eq!(join_tables(7, &cfg), join_tables(7, &cfg));
        assert_ne!(join_tables(7, &cfg), join_tables(8, &cfg));
    }

    #[test]
    fn tables_have_requested_shapes() {
        let cfg = JoinConfig {
            left_rows: 30,
            right_rows: 20,
            key_cardinality: 5,
            payload_values: 3,
        };
        let db = join_tables(1, &cfg);
        let r = db.get("R").unwrap();
        let s = db.get("S").unwrap();
        assert_eq!(r.len(), 30);
        assert_eq!(s.len(), 20);
        assert_eq!(r.schema().attrs(), ["K", "A"]);
        assert_eq!(s.schema().attrs(), ["K", "B"]);
        for t in r.tuples() {
            match t[0] {
                Atom::Int(k) => assert!((0..5).contains(&k)),
                _ => panic!("integer keys"),
            }
        }
    }

    #[test]
    fn both_query_shapes_join_on_k() {
        let cfg = JoinConfig {
            left_rows: 40,
            right_rows: 40,
            key_cardinality: 8,
            payload_values: 4,
        };
        let db = join_tables(3, &cfg);
        let nat = cdb_relalg::eval::eval(&db, &natural_join_query()).unwrap();
        let sel = cdb_relalg::eval::eval(&db, &select_product_query()).unwrap();
        // Same matches; the σ(×) form keeps both K columns.
        assert_eq!(nat.schema().arity(), 3);
        assert_eq!(sel.schema().arity(), 4);
        assert!(!nat.is_empty());
        assert_eq!(
            nat.len(),
            cdb_relalg::eval::eval(&db, &select_product_query().project_cols(["r.K", "A", "B"]))
                .unwrap()
                .len()
        );
    }
}
