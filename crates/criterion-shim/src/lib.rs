//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates registry, so this workspace ships
//! a small std-only harness covering the subset of the `criterion 0.5`
//! API the benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`BenchmarkId`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs a short calibration pass, then
//! `sample_size` samples of enough iterations to fill ~20 ms each;
//! median, mean, and min per-iteration times are printed as a table row.
//! No plotting, no statistics beyond that — the benches in this repo
//! print their own result tables.
//!
//! **Smoke mode:** setting `CDB_BENCH_SMOKE=1` runs every benchmark for
//! exactly one iteration of one sample. CI uses it (via
//! `scripts/check.sh`) to catch bench bit-rot without paying measurement
//! time.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Whether smoke mode (`CDB_BENCH_SMOKE=1`) is active.
pub fn smoke_mode() -> bool {
    std::env::var("CDB_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_benchmark_id().label(), self.default_sample_size, f);
    }
}

/// A group of benchmarks sharing a name prefix and sampling config.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn resolved_samples(&self) -> usize {
        self.sample_size.unwrap_or(20)
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label());
        run_bench(&label, self.resolved_samples(), f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_bench(&label, self.resolved_samples(), |b| f(b, input));
        self
    }

    /// Ends the group (printing nothing extra; rows were printed live).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// `name/parameter`, as in criterion.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    /// Identifier carrying only a parameter (criterion's
    /// `from_parameter`).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: Some(param.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.param {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Conversion into a [`BenchmarkId`] (criterion's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Converts to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_owned(),
            param: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            param: None,
        }
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before every call.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    if smoke_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        eprintln!("  {label:<48} smoke ok ({:>10.3?}/iter)", b.elapsed);
        return;
    }
    // Calibrate: how long does one iteration take?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~20 ms per sample, capped so slow benches still finish.
    let iters_per_sample =
        (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut per_iter_times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_times.push(b.elapsed / iters_per_sample as u32);
    }
    per_iter_times.sort();
    let median = per_iter_times[per_iter_times.len() / 2];
    let min = per_iter_times[0];
    let mean = per_iter_times.iter().sum::<Duration>() / per_iter_times.len() as u32;
    eprintln!(
        "  {label:<48} median {median:>10.3?}  mean {mean:>10.3?}  min {min:>10.3?}  \
         ({samples} samples × {iters_per_sample} iters)"
    );
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("join", 10_000).label(), "join/10000");
        assert_eq!(BenchmarkId::from_parameter(3).label(), "3");
        assert_eq!("plain".into_benchmark_id().label(), "plain");
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 5);
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        b.iter_with_setup(
            || {
                setups += 1;
            },
            |()| runs += 1,
        );
        assert_eq!((setups, runs), (3, 3));
    }

    #[test]
    fn groups_and_functions_execute() {
        let mut c = Criterion::default();
        std::env::set_var("CDB_BENCH_SMOKE", "1");
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("f", 1), &1, |b, _| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }
}
