//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates registry, so this workspace ships
//! a small std-only harness covering the subset of the `criterion 0.5`
//! API the benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`BenchmarkId`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs a short calibration pass, then
//! `sample_size` samples of enough iterations to fill ~20 ms each;
//! median, mean, and min per-iteration times are printed as a table row.
//! No plotting, no statistics beyond that — the benches in this repo
//! print their own result tables.
//!
//! **Smoke mode:** setting `CDB_BENCH_SMOKE=1` runs every benchmark for
//! exactly one iteration of one sample. CI uses it (via
//! `scripts/check.sh`) to catch bench bit-rot without paying measurement
//! time.
//!
//! **Machine-readable output:** every measurement is also recorded and,
//! when the [`criterion_main!`]-generated `main` exits, written as
//! `BENCH_<bench-name>.json` at the workspace root — an array of
//! `{op, size, ns_per_iter, samples, iters_per_sample, threads,
//! batch_window_us, segments, shed, shards, pool_pages, hit_rate,
//! plan, index}` rows (everything past `iters_per_sample` is `null`
//! unless a harness sets it via [`push_record`]). Set `CDB_BENCH_JSON=0` to suppress the file, or
//! `CDB_BENCH_JSON_DIR` to redirect it. Smoke runs skip the report
//! (their timings are meaningless and would clobber real
//! measurements) unless `CDB_BENCH_JSON=1` forces it, which CI uses to
//! validate the report shape against a scratch directory.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Whether smoke mode (`CDB_BENCH_SMOKE=1`) is active.
pub fn smoke_mode() -> bool {
    std::env::var("CDB_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// One recorded measurement, as written to the JSON report.
#[derive(Debug, Clone, Default)]
pub struct Record {
    /// Full benchmark label (`group/function/param`).
    pub op: String,
    /// The numeric parameter, when the label's last segment is one.
    pub size: Option<u64>,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: u128,
    /// Samples taken (1 in smoke mode).
    pub samples: usize,
    /// Iterations per sample (1 in smoke mode).
    pub iters_per_sample: u64,
    /// Concurrent threads driving the measured operation (`null` for
    /// single-threaded benches), so perf trajectories stay comparable
    /// across PRs.
    pub threads: Option<u64>,
    /// Group-commit batch window in microseconds, when the measurement
    /// depends on one (`null` otherwise).
    pub batch_window_us: Option<u64>,
    /// Live WAL segments scanned by the measured operation, for
    /// recovery benches over a segmented log (`null` otherwise).
    pub segments: Option<u64>,
    /// Requests shed by admission control during the measurement, for
    /// server overload benches (`null` otherwise).
    pub shed: Option<u64>,
    /// Shard count behind the measured operation, for sharded-database
    /// benches (`null` otherwise).
    pub shards: Option<u64>,
    /// Buffer-pool capacity in frames, for paged-storage benches over
    /// a bounded pool (`null` otherwise).
    pub pool_pages: Option<u64>,
    /// Buffer-pool hit fraction in `[0, 1]` observed during the
    /// measurement, for paged-storage benches (`null` otherwise).
    pub hit_rate: Option<f64>,
    /// One-line rendering of the physical plan behind the measured
    /// query, for planner benches (`null` otherwise).
    pub plan: Option<String>,
    /// Distinct values in the secondary index the measured plan
    /// probes, for indexed-access benches (`null` otherwise).
    pub index: Option<u64>,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn record(r: Record) {
    RECORDS.lock().expect("bench recorder poisoned").push(r);
}

/// Records a measurement produced outside the [`Bencher`] machinery —
/// hand-rolled harnesses (multi-threaded throughput drivers, latency
/// percentile samplers) use this so their rows land in the same
/// `BENCH_<name>.json` report.
pub fn push_record(r: Record) {
    record(r);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The workspace root: the nearest ancestor of `manifest_dir`
/// (inclusive) whose `Cargo.toml` declares a `[workspace]` section.
/// Walking to the *topmost* manifest instead would escape the repo
/// when it is checked out under an unrelated directory that happens to
/// hold a `Cargo.toml` (a parent project, a stray `~/Cargo.toml`) and
/// silently write the report there. With no workspace manifest in
/// sight, the bench's own `manifest_dir` is the fallback.
fn workspace_root(manifest_dir: &str) -> PathBuf {
    let mut cur = Some(Path::new(manifest_dir));
    while let Some(dir) = cur {
        if manifest_declares_workspace(&dir.join("Cargo.toml")) {
            return dir.to_path_buf();
        }
        cur = dir.parent();
    }
    PathBuf::from(manifest_dir)
}

/// Whether the manifest at `path` has a `[workspace]` (or
/// `[workspace.*]`, which implies one) section.
fn manifest_declares_workspace(path: &Path) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    text.lines().any(|line| {
        let line = line.trim();
        line == "[workspace]" || line.starts_with("[workspace.")
    })
}

/// Writes every recorded measurement of this process as
/// `BENCH_<name>.json`. Called automatically by the
/// [`criterion_main!`]-generated `main`; callable directly from a
/// hand-rolled harness too.
pub fn write_json_report(name: &str, manifest_dir: &str) {
    let json_env = std::env::var("CDB_BENCH_JSON").ok();
    if json_env.as_deref() == Some("0") {
        return;
    }
    // Smoke runs exist to catch bit-rot; their one-iteration timings
    // are noise and must not clobber a real report — unless the caller
    // explicitly asks for the file with `CDB_BENCH_JSON=1` (CI uses
    // this, with `CDB_BENCH_JSON_DIR` pointed at a scratch dir, to
    // check the report shape without paying measurement time).
    if smoke_mode() && json_env.as_deref() != Some("1") {
        return;
    }
    let records = RECORDS.lock().expect("bench recorder poisoned");
    if records.is_empty() {
        return;
    }
    let dir = std::env::var("CDB_BENCH_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| workspace_root(manifest_dir));
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut out = String::from("[\n");
    let opt = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |s| s.to_string());
    // Floats need their own formatting (fixed precision, no
    // scientific notation) so downstream `jq`-free parsers stay happy.
    let optf = |v: Option<f64>| v.map_or_else(|| "null".to_owned(), |s| format!("{s:.4}"));
    let opts = |v: &Option<String>| {
        v.as_ref()
            .map_or_else(|| "null".to_owned(), |s| format!("\"{}\"", json_escape(s)))
    };
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"op\": \"{}\", \"size\": {}, \"ns_per_iter\": {}, \
             \"samples\": {}, \"iters_per_sample\": {}, \
             \"threads\": {}, \"batch_window_us\": {}, \"segments\": {}, \
             \"shed\": {}, \"shards\": {}, \"pool_pages\": {}, \
             \"hit_rate\": {}, \"plan\": {}, \"index\": {}}}{}\n",
            json_escape(&r.op),
            opt(r.size),
            r.ns_per_iter,
            r.samples,
            r.iters_per_sample,
            opt(r.threads),
            opt(r.batch_window_us),
            opt(r.segments),
            opt(r.shed),
            opt(r.shards),
            opt(r.pool_pages),
            optf(r.hit_rate),
            opts(&r.plan),
            opt(r.index),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_benchmark_id().label(), self.default_sample_size, f);
    }
}

/// A group of benchmarks sharing a name prefix and sampling config.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn resolved_samples(&self) -> usize {
        self.sample_size.unwrap_or(20)
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label());
        run_bench(&label, self.resolved_samples(), f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_bench(&label, self.resolved_samples(), |b| f(b, input));
        self
    }

    /// Ends the group (printing nothing extra; rows were printed live).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// `name/parameter`, as in criterion.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    /// Identifier carrying only a parameter (criterion's
    /// `from_parameter`).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: Some(param.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.param {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Conversion into a [`BenchmarkId`] (criterion's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Converts to an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_owned(),
            param: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            param: None,
        }
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before every call.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The numeric parameter at the end of a `group/function/param` label.
fn label_size(label: &str) -> Option<u64> {
    label.rsplit('/').next()?.parse().ok()
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    if smoke_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        eprintln!("  {label:<48} smoke ok ({:>10.3?}/iter)", b.elapsed);
        record(Record {
            op: label.to_owned(),
            size: label_size(label),
            ns_per_iter: b.elapsed.as_nanos(),
            samples: 1,
            iters_per_sample: 1,
            ..Record::default()
        });
        return;
    }
    // Calibrate: how long does one iteration take?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~20 ms per sample, capped so slow benches still finish.
    let iters_per_sample =
        (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut per_iter_times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_times.push(b.elapsed / iters_per_sample as u32);
    }
    per_iter_times.sort();
    let median = per_iter_times[per_iter_times.len() / 2];
    let min = per_iter_times[0];
    let mean = per_iter_times.iter().sum::<Duration>() / per_iter_times.len() as u32;
    eprintln!(
        "  {label:<48} median {median:>10.3?}  mean {mean:>10.3?}  min {min:>10.3?}  \
         ({samples} samples × {iters_per_sample} iters)"
    );
    record(Record {
        op: label.to_owned(),
        size: label_size(label),
        ns_per_iter: median.as_nanos(),
        samples,
        iters_per_sample,
        ..Record::default()
    });
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, as in criterion — plus, on exit, the
/// machine-readable `BENCH_<bench-name>.json` report at the workspace
/// root.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report(env!("CARGO_CRATE_NAME"), env!("CARGO_MANIFEST_DIR"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide `CDB_BENCH_*`
    /// environment variables.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn labels_expose_their_numeric_parameter() {
        assert_eq!(
            label_size("e15_natural_join/hash_sequential/10000"),
            Some(10_000)
        );
        assert_eq!(label_size("group/op"), None);
        assert_eq!(label_size("plain"), None);
    }

    #[test]
    fn json_report_is_written_and_well_formed() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("cdb_criterion_shim_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::remove_var("CDB_BENCH_SMOKE");
        std::env::set_var("CDB_BENCH_JSON_DIR", dir.display().to_string());
        record(Record {
            op: "g/f/64".into(),
            size: Some(64),
            ns_per_iter: 1234,
            samples: 3,
            iters_per_sample: 7,
            ..Record::default()
        });
        push_record(Record {
            op: "commit/group/4".into(),
            ns_per_iter: 99,
            samples: 1,
            iters_per_sample: 1,
            threads: Some(4),
            batch_window_us: Some(200),
            segments: Some(3),
            shed: Some(12),
            shards: Some(4),
            pool_pages: Some(8),
            hit_rate: Some(0.875),
            plan: Some("IndexScan R [K = 7]".into()),
            index: Some(300),
            ..Record::default()
        });
        write_json_report("shimtest", env!("CARGO_MANIFEST_DIR"));
        std::env::remove_var("CDB_BENCH_JSON_DIR");
        let text = std::fs::read_to_string(dir.join("BENCH_shimtest.json")).unwrap();
        assert!(text.contains("\"op\": \"g/f/64\""));
        assert!(text.contains("\"size\": 64"));
        assert!(text.contains("\"ns_per_iter\": 1234"));
        assert!(text.contains("\"threads\": null"));
        assert!(text.contains("\"threads\": 4"));
        assert!(text.contains("\"batch_window_us\": 200"));
        assert!(text.contains("\"segments\": null"));
        assert!(text.contains("\"segments\": 3"));
        assert!(text.contains("\"shed\": null"));
        assert!(text.contains("\"shed\": 12"));
        assert!(text.contains("\"shards\": null"));
        assert!(text.contains("\"shards\": 4"));
        assert!(text.contains("\"pool_pages\": null"));
        assert!(text.contains("\"pool_pages\": 8"));
        assert!(text.contains("\"hit_rate\": null"));
        assert!(text.contains("\"hit_rate\": 0.8750"));
        assert!(text.contains("\"plan\": null"));
        assert!(text.contains("\"plan\": \"IndexScan R [K = 7]\""));
        assert!(text.contains("\"index\": null"));
        assert!(text.contains("\"index\": 300"));
        assert!(text.trim_start().starts_with('[') && text.trim_end().ends_with(']'));
    }

    #[test]
    fn smoke_mode_writes_the_report_only_when_forced() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("cdb_criterion_shim_smoke_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("CDB_BENCH_SMOKE", "1");
        std::env::set_var("CDB_BENCH_JSON_DIR", dir.display().to_string());
        record(Record {
            op: "smoke/op".into(),
            ns_per_iter: 1,
            samples: 1,
            iters_per_sample: 1,
            ..Record::default()
        });
        write_json_report("smoketest", env!("CARGO_MANIFEST_DIR"));
        assert!(!dir.join("BENCH_smoketest.json").exists());
        std::env::set_var("CDB_BENCH_JSON", "1");
        write_json_report("smoketest", env!("CARGO_MANIFEST_DIR"));
        std::env::remove_var("CDB_BENCH_JSON");
        std::env::remove_var("CDB_BENCH_JSON_DIR");
        std::env::remove_var("CDB_BENCH_SMOKE");
        let text = std::fs::read_to_string(dir.join("BENCH_smoketest.json")).unwrap();
        assert!(text.contains("\"op\": \"smoke/op\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workspace_root_finds_the_nearest_workspace_manifest() {
        let root = workspace_root(env!("CARGO_MANIFEST_DIR"));
        assert!(manifest_declares_workspace(&root.join("Cargo.toml")));
        // This crate is a workspace member, not the root itself.
        assert_ne!(root, Path::new(env!("CARGO_MANIFEST_DIR")));
    }

    #[test]
    fn workspace_root_ignores_non_workspace_manifests_above() {
        let base = std::env::temp_dir().join(format!("cdb-shim-wsroot-{}", std::process::id()));
        let member = base.join("outer").join("ws").join("member");
        std::fs::create_dir_all(&member).unwrap();
        // An unrelated manifest *above* the workspace must not win.
        std::fs::write(base.join("outer").join("Cargo.toml"), "[package]\n").unwrap();
        std::fs::write(
            base.join("outer").join("ws").join("Cargo.toml"),
            "[workspace]\nmembers = [\"member\"]\n",
        )
        .unwrap();
        std::fs::write(member.join("Cargo.toml"), "[package]\nname = \"m\"\n").unwrap();
        assert_eq!(
            workspace_root(member.to_str().unwrap()),
            base.join("outer").join("ws")
        );
        // No workspace anywhere: fall back to the manifest dir itself.
        let lone = base.join("lone");
        std::fs::create_dir_all(&lone).unwrap();
        std::fs::write(lone.join("Cargo.toml"), "[package]\n").unwrap();
        assert_eq!(workspace_root(lone.to_str().unwrap()), lone);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("join", 10_000).label(), "join/10000");
        assert_eq!(BenchmarkId::from_parameter(3).label(), "3");
        assert_eq!("plain".into_benchmark_id().label(), "plain");
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 5);
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        b.iter_with_setup(
            || {
                setups += 1;
            },
            |()| runs += 1,
        );
        assert_eq!((setups, runs), (3, 3));
    }

    #[test]
    fn groups_and_functions_execute() {
        let _env = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        std::env::set_var("CDB_BENCH_SMOKE", "1");
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("f", 1), &1, |b, _| b.iter(|| ran = true));
            g.finish();
        }
        std::env::remove_var("CDB_BENCH_SMOKE");
        assert!(ran);
    }
}
