//! The fat-node archive.
//!
//! All versions of a keyed hierarchical database live in a single merged
//! tree. Every archive node carries the set of version intervals during
//! which it was present; atomic leaves carry a *timeline* of values.
//! Merging a new version identifies nodes by their hierarchical key
//! paths (update-invariant, per \[15\]), so a node that persists across
//! versions — the common case in curated databases, which "do not grow
//! or change rapidly" — costs nothing beyond its single stored copy.
//!
//! Space accounting honors the fat-node paper's optimization: a child
//! whose interval set equals its parent's stores nothing for it (the
//! hereditary trick; see [`Archive::encoded_size`]).

use std::collections::BTreeMap;

use cdb_model::keys::{KeySpec, KeyStep};
use cdb_model::{Atom, KeyPath, ModelError, Value};

use crate::codec;

/// A version number: dense, starting at 0.
pub type VersionId = u32;

/// Metadata about a published version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// The version number.
    pub id: VersionId,
    /// A human-readable label (a date, a release name).
    pub label: String,
}

/// Archive errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// A key violation in the incoming version.
    Model(ModelError),
    /// The requested version does not exist.
    NoSuchVersion(VersionId),
    /// The requested key path does not exist in any version.
    NoSuchKeyPath(String),
}

impl From<ModelError> for ArchiveError {
    fn from(e: ModelError) -> Self {
        ArchiveError::Model(e)
    }
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Model(e) => write!(f, "{e}"),
            ArchiveError::NoSuchVersion(v) => write!(f, "no such version {v}"),
            ArchiveError::NoSuchKeyPath(p) => write!(f, "no such key path {p}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// A half-open presence interval `[start, end)`; `end = None` means
/// still present.
pub type Interval = (VersionId, Option<VersionId>);

fn contains(iv: &Interval, v: VersionId) -> bool {
    iv.0 <= v && iv.1.is_none_or(|e| v < e)
}

/// The shape of a node during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Atom,
    Record,
    Set,
    List,
}

fn shape_of(v: &Value) -> Shape {
    match v {
        Value::Atom(_) => Shape::Atom,
        Value::Record(_) => Shape::Record,
        Value::Set(_) => Shape::Set,
        Value::List(_) => Shape::List,
    }
}

/// One node of the archive.
#[derive(Debug, Clone, Default)]
struct ANode {
    /// Presence intervals, in order, non-overlapping.
    intervals: Vec<Interval>,
    /// Shape timeline (only transitions are stored).
    shapes: Vec<(Interval, Shape)>,
    /// Atomic-value timeline (when the shape is `Atom`).
    atoms: Vec<(Interval, Atom)>,
    /// Children, identified by key step.
    children: BTreeMap<KeyStep, ANode>,
}

impl ANode {
    fn present_at(&self, v: VersionId) -> bool {
        self.intervals.iter().any(|iv| contains(iv, v))
    }

    fn open(&self) -> bool {
        self.intervals.last().is_some_and(|iv| iv.1.is_none())
    }

    fn ensure_open(&mut self, v: VersionId) {
        if !self.open() {
            self.intervals.push((v, None));
        }
    }

    fn close_all(&mut self, v: VersionId) {
        if let Some(last) = self.intervals.last_mut() {
            if last.1.is_none() {
                last.1 = Some(v);
            }
        }
        if let Some((iv, _)) = self.shapes.last_mut() {
            if iv.1.is_none() {
                iv.1 = Some(v);
            }
        }
        if let Some((iv, _)) = self.atoms.last_mut() {
            if iv.1.is_none() {
                iv.1 = Some(v);
            }
        }
        for c in self.children.values_mut() {
            c.close_all(v);
        }
    }

    fn set_shape(&mut self, v: VersionId, s: Shape) {
        match self.shapes.last_mut() {
            Some((iv, last)) if iv.1.is_none() && *last == s => {}
            Some((iv, _)) if iv.1.is_none() => {
                iv.1 = Some(v);
                self.shapes.push(((v, None), s));
            }
            _ => self.shapes.push(((v, None), s)),
        }
    }

    fn set_atom(&mut self, v: VersionId, a: &Atom) {
        match self.atoms.last_mut() {
            Some((iv, last)) if iv.1.is_none() && last == a => {}
            Some((iv, _)) if iv.1.is_none() => {
                iv.1 = Some(v);
                self.atoms.push(((v, None), a.clone()));
            }
            _ => self.atoms.push(((v, None), a.clone())),
        }
    }

    fn shape_at(&self, v: VersionId) -> Option<Shape> {
        self.shapes
            .iter()
            .find(|(iv, _)| contains(iv, v))
            .map(|(_, s)| *s)
    }

    fn atom_at(&self, v: VersionId) -> Option<&Atom> {
        self.atoms
            .iter()
            .find(|(iv, _)| contains(iv, v))
            .map(|(_, a)| a)
    }

    fn node_count(&self) -> usize {
        1 + self.children.values().map(ANode::node_count).sum::<usize>()
    }
}

/// The fat-node archive of a keyed hierarchical database.
#[derive(Debug, Clone)]
pub struct Archive {
    name: String,
    spec: KeySpec,
    versions: Vec<VersionInfo>,
    root: ANode,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new(name: impl Into<String>, spec: KeySpec) -> Self {
        Archive {
            name: name.into(),
            spec,
            versions: Vec::new(),
            root: ANode::default(),
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The key specification.
    pub fn spec(&self) -> &KeySpec {
        &self.spec
    }

    /// The published versions, in order.
    pub fn versions(&self) -> &[VersionInfo] {
        &self.versions
    }

    /// Number of versions.
    pub fn version_count(&self) -> u32 {
        self.versions.len() as u32
    }

    /// Merges a new version of the database into the archive, returning
    /// its version id. The incoming value must satisfy the key spec.
    pub fn add_version(
        &mut self,
        value: &Value,
        label: impl Into<String>,
    ) -> Result<VersionId, ArchiveError> {
        // Validate keys up front (duplicate keys would corrupt merging).
        self.spec.keyed_nodes(value)?;
        let vid = self.versions.len() as VersionId;
        let spec = self.spec.clone();
        merge(&mut self.root, value, &mut Vec::new(), vid, &spec)?;
        self.versions.push(VersionInfo {
            id: vid,
            label: label.into(),
        });
        Ok(vid)
    }

    /// Reconstructs the database as of version `v`.
    pub fn retrieve(&self, v: VersionId) -> Result<Value, ArchiveError> {
        if v as usize >= self.versions.len() {
            return Err(ArchiveError::NoSuchVersion(v));
        }
        reconstruct(&self.root, v).ok_or(ArchiveError::NoSuchVersion(v))
    }

    /// Looks up the archive node at a key path (any version).
    fn node(&self, path: &KeyPath) -> Option<&ANode> {
        let mut cur = &self.root;
        for step in path.steps() {
            cur = cur.children.get(step)?;
        }
        Some(cur)
    }

    /// The presence intervals of the node at `path`.
    pub fn lifespan(&self, path: &KeyPath) -> Result<Vec<Interval>, ArchiveError> {
        self.node(path)
            .map(|n| n.intervals.clone())
            .ok_or_else(|| ArchiveError::NoSuchKeyPath(path.to_string()))
    }

    /// The atomic-value timeline of the node at `path`.
    pub fn value_history(&self, path: &KeyPath) -> Result<Vec<(Interval, Atom)>, ArchiveError> {
        self.node(path)
            .map(|n| n.atoms.clone())
            .ok_or_else(|| ArchiveError::NoSuchKeyPath(path.to_string()))
    }

    /// Whether the node at `path` was present at version `v`.
    pub fn present_at(&self, path: &KeyPath, v: VersionId) -> bool {
        self.node(path).is_some_and(|n| n.present_at(v))
    }

    /// The value of an atomic node at `path` as of version `v`.
    pub fn value_at(&self, path: &KeyPath, v: VersionId) -> Option<Atom> {
        self.node(path).and_then(|n| n.atom_at(v)).cloned()
    }

    /// All key paths that ever existed under the root (depth-first).
    pub fn all_key_paths(&self) -> Vec<KeyPath> {
        let mut out = Vec::new();
        collect_paths(&self.root, KeyPath::root(), &mut out);
        out
    }

    /// Total number of archive nodes (the E7 "merged tree" size).
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// The encoded size of the archive in bytes, using the hereditary
    /// optimization: a child whose interval set equals its parent's
    /// writes a one-byte marker instead of its intervals.
    pub fn encoded_size(&self) -> usize {
        let mut out = Vec::new();
        encode_node(&self.root, None, true, &mut out);
        // Version metadata.
        for v in &self.versions {
            out.extend_from_slice(v.label.as_bytes());
            out.extend_from_slice(&v.id.to_le_bytes());
        }
        out.len()
    }

    /// The encoded size *without* the hereditary-interval optimization
    /// (every node writes its full interval set) — the ablation of the
    /// paper's "if it is different from the time interval of its parent
    /// node" rule, measured in the E7 bench.
    pub fn encoded_size_flat(&self) -> usize {
        let mut out = Vec::new();
        encode_node(&self.root, None, false, &mut out);
        for v in &self.versions {
            out.extend_from_slice(v.label.as_bytes());
            out.extend_from_slice(&v.id.to_le_bytes());
        }
        out.len()
    }
}

fn merge(
    node: &mut ANode,
    value: &Value,
    context: &mut Vec<String>,
    vid: VersionId,
    spec: &KeySpec,
) -> Result<(), ArchiveError> {
    node.ensure_open(vid);
    node.set_shape(vid, shape_of(value));
    match value {
        Value::Atom(a) => {
            node.set_atom(vid, a);
            // A node that was previously structured and is now atomic:
            // close its children.
            for c in node.children.values_mut() {
                if c.open() {
                    c.close_all(vid);
                }
            }
        }
        Value::Record(m) => {
            // Close the atom timeline if previously atomic.
            if let Some((iv, _)) = node.atoms.last_mut() {
                if iv.1.is_none() {
                    iv.1 = Some(vid);
                }
            }
            let mut seen: Vec<KeyStep> = Vec::new();
            for (label, child) in m {
                let step = KeyStep::Field(label.clone());
                seen.push(step.clone());
                context.push(label.clone());
                merge(
                    node.children.entry(step).or_default(),
                    child,
                    context,
                    vid,
                    spec,
                )?;
                context.pop();
            }
            close_absent(node, &seen, vid, |s| matches!(s, KeyStep::Field(_)));
        }
        Value::Set(s) => {
            if let Some((iv, _)) = node.atoms.last_mut() {
                if iv.1.is_none() {
                    iv.1 = Some(vid);
                }
            }
            let mut seen: Vec<KeyStep> = Vec::new();
            for child in s {
                let step = spec
                    .entry_step(context, child, &cdb_model::Path::root())
                    .map_err(ArchiveError::Model)?;
                seen.push(step.clone());
                merge(
                    node.children.entry(step).or_default(),
                    child,
                    context,
                    vid,
                    spec,
                )?;
            }
            close_absent(node, &seen, vid, |s| matches!(s, KeyStep::Entry(_)));
        }
        Value::List(xs) => {
            if let Some((iv, _)) = node.atoms.last_mut() {
                if iv.1.is_none() {
                    iv.1 = Some(vid);
                }
            }
            let mut seen: Vec<KeyStep> = Vec::new();
            for (i, child) in xs.iter().enumerate() {
                let step = KeyStep::Index(i);
                seen.push(step.clone());
                merge(
                    node.children.entry(step).or_default(),
                    child,
                    context,
                    vid,
                    spec,
                )?;
            }
            close_absent(node, &seen, vid, |s| matches!(s, KeyStep::Index(_)));
        }
    }
    Ok(())
}

fn close_absent(
    node: &mut ANode,
    seen: &[KeyStep],
    vid: VersionId,
    kind: impl Fn(&KeyStep) -> bool,
) {
    for (step, child) in node.children.iter_mut() {
        if kind(step) && !seen.contains(step) && child.open() {
            child.close_all(vid);
        }
    }
}

fn reconstruct(node: &ANode, v: VersionId) -> Option<Value> {
    if !node.present_at(v) {
        return None;
    }
    match node.shape_at(v)? {
        Shape::Atom => node.atom_at(v).cloned().map(Value::Atom),
        Shape::Record => {
            let mut m = std::collections::BTreeMap::new();
            for (step, child) in &node.children {
                if let KeyStep::Field(l) = step {
                    if let Some(cv) = reconstruct(child, v) {
                        m.insert(l.clone(), cv);
                    }
                }
            }
            Some(Value::Record(m))
        }
        Shape::Set => {
            let mut s = std::collections::BTreeSet::new();
            for (step, child) in &node.children {
                if matches!(step, KeyStep::Entry(_)) {
                    if let Some(cv) = reconstruct(child, v) {
                        s.insert(cv);
                    }
                }
            }
            Some(Value::Set(s))
        }
        Shape::List => {
            let mut xs: Vec<(usize, Value)> = Vec::new();
            for (step, child) in &node.children {
                if let KeyStep::Index(i) = step {
                    if let Some(cv) = reconstruct(child, v) {
                        xs.push((*i, cv));
                    }
                }
            }
            xs.sort_by_key(|(i, _)| *i);
            Some(Value::List(xs.into_iter().map(|(_, v)| v).collect()))
        }
    }
}

fn collect_paths(node: &ANode, here: KeyPath, out: &mut Vec<KeyPath>) {
    out.push(here.clone());
    for (step, child) in &node.children {
        collect_paths(child, here.child(step.clone()), out);
    }
}

fn encode_node(
    node: &ANode,
    parent_intervals: Option<&[Interval]>,
    hereditary: bool,
    out: &mut Vec<u8>,
) {
    // Hereditary intervals: write a marker when equal to the parent's.
    if hereditary && parent_intervals == Some(node.intervals.as_slice()) {
        out.push(0xfe);
    } else {
        codec::put_uvarint(out, node.intervals.len() as u64);
        for (s, e) in &node.intervals {
            codec::put_uvarint(out, u64::from(*s));
            codec::put_uvarint(out, e.map(|x| u64::from(x) + 1).unwrap_or(0));
        }
    }
    codec::put_uvarint(out, node.shapes.len() as u64);
    for ((s, e), shape) in &node.shapes {
        codec::put_uvarint(out, u64::from(*s));
        codec::put_uvarint(out, e.map(|x| u64::from(x) + 1).unwrap_or(0));
        out.push(*shape as u8);
    }
    codec::put_uvarint(out, node.atoms.len() as u64);
    for ((s, e), a) in &node.atoms {
        codec::put_uvarint(out, u64::from(*s));
        codec::put_uvarint(out, e.map(|x| u64::from(x) + 1).unwrap_or(0));
        codec::put_atom(out, a);
    }
    codec::put_uvarint(out, node.children.len() as u64);
    for (step, child) in &node.children {
        match step {
            KeyStep::Field(l) => {
                out.push(1);
                codec::put_str(out, l);
            }
            KeyStep::Entry(atoms) => {
                out.push(2);
                codec::put_uvarint(out, atoms.len() as u64);
                for a in atoms {
                    codec::put_atom(out, a);
                }
            }
            KeyStep::Index(i) => {
                out.push(3);
                codec::put_uvarint(out, *i as u64);
            }
        }
        encode_node(child, Some(&node.intervals), hereditary, out);
    }
}

/// A difference between two archived versions at one key path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Change {
    /// Present in `v2` but not `v1`.
    Added,
    /// Present in `v1` but not `v2`.
    Removed,
    /// Atomic value changed.
    Changed {
        /// The value at `v1`.
        from: Atom,
        /// The value at `v2`.
        to: Atom,
    },
}

impl Archive {
    /// The differences between two versions, by key path. Reported at
    /// the highest path where the change is visible (an added subtree
    /// reports only its root), directly off the archive structure —
    /// "it is difficult to compare between versions of the database
    /// using the transaction log"; it is easy here.
    pub fn diff(
        &self,
        v1: VersionId,
        v2: VersionId,
    ) -> Result<Vec<(KeyPath, Change)>, ArchiveError> {
        for v in [v1, v2] {
            if v as usize >= self.versions.len() {
                return Err(ArchiveError::NoSuchVersion(v));
            }
        }
        let mut out = Vec::new();
        diff_node(&self.root, KeyPath::root(), v1, v2, &mut out);
        Ok(out)
    }
}

fn diff_node(
    node: &ANode,
    here: KeyPath,
    v1: VersionId,
    v2: VersionId,
    out: &mut Vec<(KeyPath, Change)>,
) {
    let p1 = node.present_at(v1);
    let p2 = node.present_at(v2);
    match (p1, p2) {
        (false, false) => {}
        (false, true) => out.push((here, Change::Added)),
        (true, false) => out.push((here, Change::Removed)),
        (true, true) => {
            if let (Some(a1), Some(a2)) = (node.atom_at(v1), node.atom_at(v2)) {
                if a1 != a2 {
                    out.push((
                        here.clone(),
                        Change::Changed {
                            from: a1.clone(),
                            to: a2.clone(),
                        },
                    ));
                }
            }
            for (step, child) in &node.children {
                diff_node(child, here.child(step.clone()), v1, v2, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_model::keys::KeySpec;

    fn factbook_spec() -> KeySpec {
        KeySpec::new().rule(Vec::<String>::new(), ["name"])
    }

    fn country(name: &str, pop: i64) -> Value {
        Value::record([("name", Value::str(name)), ("population", Value::int(pop))])
    }

    #[test]
    fn versions_round_trip() {
        let mut arch = Archive::new("factbook", factbook_spec());
        let v0 = Value::set([country("Iceland", 300_000)]);
        let v1 = Value::set([country("Iceland", 310_000), country("Latvia", 2_000_000)]);
        let v2 = Value::set([country("Latvia", 1_900_000)]);
        arch.add_version(&v0, "2000").unwrap();
        arch.add_version(&v1, "2001").unwrap();
        arch.add_version(&v2, "2002").unwrap();
        assert_eq!(arch.retrieve(0).unwrap(), v0);
        assert_eq!(arch.retrieve(1).unwrap(), v1);
        assert_eq!(arch.retrieve(2).unwrap(), v2);
        assert!(arch.retrieve(3).is_err());
        assert_eq!(arch.version_count(), 3);
    }

    #[test]
    fn persistent_nodes_are_stored_once() {
        let mut arch = Archive::new("factbook", factbook_spec());
        let v = Value::set([country("Iceland", 300_000)]);
        for i in 0..10 {
            arch.add_version(&v, format!("y{i}")).unwrap();
        }
        // set + record + 2 fields = 4 nodes, regardless of 10 versions.
        assert_eq!(arch.node_count(), 4);
        let kp = KeyPath::root().child(KeyStep::Entry(vec![Atom::Str("Iceland".into())]));
        assert_eq!(arch.lifespan(&kp).unwrap(), vec![(0, None)]);
    }

    #[test]
    fn value_history_tracks_changes() {
        let mut arch = Archive::new("factbook", factbook_spec());
        for (i, pop) in [300_000i64, 300_000, 310_000, 320_000].iter().enumerate() {
            arch.add_version(&Value::set([country("Iceland", *pop)]), format!("y{i}"))
                .unwrap();
        }
        let kp = KeyPath::root()
            .child(KeyStep::Entry(vec![Atom::Str("Iceland".into())]))
            .child(KeyStep::Field("population".into()));
        let hist = arch.value_history(&kp).unwrap();
        assert_eq!(
            hist,
            vec![
                ((0, Some(2)), Atom::Int(300_000)),
                ((2, Some(3)), Atom::Int(310_000)),
                ((3, None), Atom::Int(320_000)),
            ]
        );
        assert_eq!(arch.value_at(&kp, 1), Some(Atom::Int(300_000)));
        assert_eq!(arch.value_at(&kp, 3), Some(Atom::Int(320_000)));
    }

    #[test]
    fn deletion_and_reappearance_create_two_intervals() {
        let mut arch = Archive::new("factbook", factbook_spec());
        let with = Value::set([country("Iceland", 1), country("USSR", 2)]);
        let without = Value::set([country("Iceland", 1)]);
        arch.add_version(&with, "a").unwrap();
        arch.add_version(&without, "b").unwrap();
        arch.add_version(&with, "c").unwrap();
        let kp = KeyPath::root().child(KeyStep::Entry(vec![Atom::Str("USSR".into())]));
        assert_eq!(arch.lifespan(&kp).unwrap(), vec![(0, Some(1)), (2, None)]);
        assert!(!arch.present_at(&kp, 1));
        assert!(arch.present_at(&kp, 2));
    }

    #[test]
    fn diff_reports_minimal_changes() {
        let mut arch = Archive::new("factbook", factbook_spec());
        arch.add_version(&Value::set([country("Iceland", 1)]), "a")
            .unwrap();
        arch.add_version(
            &Value::set([country("Iceland", 2), country("Latvia", 3)]),
            "b",
        )
        .unwrap();
        let diff = arch.diff(0, 1).unwrap();
        assert_eq!(diff.len(), 2);
        assert!(diff.iter().any(|(p, c)| {
            matches!(
                c,
                Change::Changed {
                    from: Atom::Int(1),
                    to: Atom::Int(2)
                }
            ) && p.to_string().contains("population")
        }));
        assert!(diff
            .iter()
            .any(|(p, c)| *c == Change::Added && p.to_string().contains("Latvia")));
        assert!(arch.diff(0, 9).is_err());
    }

    #[test]
    fn shape_changes_are_versioned() {
        // A leaf that later becomes structured (Factbook-style schema
        // evolution within the data).
        let spec = KeySpec::new();
        let mut arch = Archive::new("db", spec);
        let v0 = Value::record([("gov", Value::str("monarchy"))]);
        let v1 = Value::record([("gov", Value::record([("type", Value::str("republic"))]))]);
        arch.add_version(&v0, "a").unwrap();
        arch.add_version(&v1, "b").unwrap();
        assert_eq!(arch.retrieve(0).unwrap(), v0);
        assert_eq!(arch.retrieve(1).unwrap(), v1);
    }

    #[test]
    fn key_violations_are_rejected_before_merging() {
        let mut arch = Archive::new("factbook", factbook_spec());
        let bad = Value::set([Value::record([("nokey", Value::int(1))])]);
        assert!(arch.add_version(&bad, "x").is_err());
        assert_eq!(arch.version_count(), 0);
    }

    #[test]
    fn encoded_size_grows_sublinearly_for_stable_data() {
        let mut arch = Archive::new("factbook", factbook_spec());
        let v = Value::set((0..50).map(|i| country(&format!("c{i}"), i)));
        arch.add_version(&v, "0").unwrap();
        let after_one = arch.encoded_size();
        for i in 1..20 {
            arch.add_version(&v, format!("{i}")).unwrap();
        }
        let after_twenty = arch.encoded_size();
        // 20 identical versions cost barely more than one (just labels).
        assert!(
            after_twenty < after_one + 500,
            "archive should not replicate unchanged data: {after_one} → {after_twenty}"
        );
    }

    #[test]
    fn all_key_paths_enumerates_history() {
        let mut arch = Archive::new("factbook", factbook_spec());
        arch.add_version(&Value::set([country("A", 1)]), "a")
            .unwrap();
        arch.add_version(&Value::set([country("B", 2)]), "b")
            .unwrap();
        let paths = arch.all_key_paths();
        // root, A, A.name, A.population, B, B.name, B.population
        assert_eq!(paths.len(), 7);
    }
}
