//! A compact binary codec for values and archive structures.
//!
//! Hand-rolled (no serde) so the storage measurements of experiment E7
//! are fully accounted for: every byte written is visible below.
//! Varint-encoded lengths, one-byte tags, UTF-8 strings.

use cdb_model::{Atom, Value};

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input bytes.
    UnexpectedEof,
    /// An unknown tag byte.
    BadTag(u8),
    /// Invalid UTF-8 in a string.
    BadUtf8,
    /// A varint longer than 10 bytes.
    BadVarint,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8"),
            CodecError::BadVarint => write!(f, "overlong varint"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends an unsigned LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint.
pub fn get_uvarint(input: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *input.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::BadVarint);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends a signed varint (zigzag).
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Reads a signed varint (zigzag).
pub fn get_ivarint(input: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    let u = get_uvarint(input, pos)?;
    Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
}

/// Appends a length-prefixed string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed string.
pub fn get_str(input: &[u8], pos: &mut usize) -> Result<String, CodecError> {
    let len = get_uvarint(input, pos)? as usize;
    let end = pos.checked_add(len).ok_or(CodecError::UnexpectedEof)?;
    let bytes = input.get(*pos..end).ok_or(CodecError::UnexpectedEof)?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
}

const TAG_UNIT: u8 = 0;
const TAG_BOOL_F: u8 = 1;
const TAG_BOOL_T: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_DEC: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_RECORD: u8 = 6;
const TAG_SET: u8 = 7;
const TAG_LIST: u8 = 8;

/// Appends an atom.
pub fn put_atom(out: &mut Vec<u8>, a: &Atom) {
    match a {
        Atom::Unit => out.push(TAG_UNIT),
        Atom::Bool(false) => out.push(TAG_BOOL_F),
        Atom::Bool(true) => out.push(TAG_BOOL_T),
        Atom::Int(i) => {
            out.push(TAG_INT);
            put_ivarint(out, *i);
        }
        Atom::Decimal(d) => {
            out.push(TAG_DEC);
            put_ivarint(out, d.digits());
            out.push(d.scale());
        }
        Atom::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
    }
}

/// Reads an atom.
pub fn get_atom(input: &[u8], pos: &mut usize) -> Result<Atom, CodecError> {
    let tag = *input.get(*pos).ok_or(CodecError::UnexpectedEof)?;
    *pos += 1;
    match tag {
        TAG_UNIT => Ok(Atom::Unit),
        TAG_BOOL_F => Ok(Atom::Bool(false)),
        TAG_BOOL_T => Ok(Atom::Bool(true)),
        TAG_INT => Ok(Atom::Int(get_ivarint(input, pos)?)),
        TAG_DEC => {
            let digits = get_ivarint(input, pos)?;
            let scale = *input.get(*pos).ok_or(CodecError::UnexpectedEof)?;
            *pos += 1;
            Ok(Atom::Decimal(cdb_model::atom::Decimal::new(digits, scale)))
        }
        TAG_STR => Ok(Atom::Str(get_str(input, pos)?)),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encodes a value.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    put_value(&mut out, v);
    out
}

/// Appends a value.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Atom(a) => put_atom(out, a),
        Value::Record(m) => {
            out.push(TAG_RECORD);
            put_uvarint(out, m.len() as u64);
            for (l, x) in m {
                put_str(out, l);
                put_value(out, x);
            }
        }
        Value::Set(s) => {
            out.push(TAG_SET);
            put_uvarint(out, s.len() as u64);
            for x in s {
                put_value(out, x);
            }
        }
        Value::List(xs) => {
            out.push(TAG_LIST);
            put_uvarint(out, xs.len() as u64);
            for x in xs {
                put_value(out, x);
            }
        }
    }
}

/// Decodes a value (must consume the full input).
pub fn decode_value(input: &[u8]) -> Result<Value, CodecError> {
    let mut pos = 0;
    let v = get_value(input, &mut pos)?;
    if pos != input.len() {
        return Err(CodecError::BadTag(input[pos]));
    }
    Ok(v)
}

/// Reads a value.
pub fn get_value(input: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    let tag = *input.get(*pos).ok_or(CodecError::UnexpectedEof)?;
    match tag {
        TAG_RECORD => {
            *pos += 1;
            let n = get_uvarint(input, pos)? as usize;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let l = get_str(input, pos)?;
                let v = get_value(input, pos)?;
                m.insert(l, v);
            }
            Ok(Value::Record(m))
        }
        TAG_SET => {
            *pos += 1;
            let n = get_uvarint(input, pos)? as usize;
            let mut s = std::collections::BTreeSet::new();
            for _ in 0..n {
                s.insert(get_value(input, pos)?);
            }
            Ok(Value::Set(s))
        }
        TAG_LIST => {
            *pos += 1;
            let n = get_uvarint(input, pos)? as usize;
            let mut xs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                xs.push(get_value(input, pos)?);
            }
            Ok(Value::List(xs))
        }
        _ => Ok(Value::Atom(get_atom(input, pos)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_model::atom::Decimal;

    fn roundtrip(v: &Value) {
        let bytes = encode_value(v);
        assert_eq!(&decode_value(&bytes).unwrap(), v);
    }

    #[test]
    fn atoms_round_trip() {
        roundtrip(&Value::unit());
        roundtrip(&Value::atom(true));
        roundtrip(&Value::atom(false));
        roundtrip(&Value::int(0));
        roundtrip(&Value::int(-1));
        roundtrip(&Value::int(i64::MAX));
        roundtrip(&Value::int(i64::MIN));
        roundtrip(&Value::str(""));
        roundtrip(&Value::str("curated databases ♭"));
        roundtrip(&Value::atom(Decimal::new(-12345, 3)));
    }

    #[test]
    fn structures_round_trip() {
        roundtrip(&Value::record([
            ("name", Value::str("Iceland")),
            ("pop", Value::int(300_000)),
            ("cities", Value::set([Value::str("Reykjavik")])),
            ("tags", Value::list([Value::int(1), Value::int(2)])),
        ]));
        roundtrip(&Value::set([]));
        roundtrip(&Value::list([]));
        roundtrip(&Value::record::<String>([]));
    }

    #[test]
    fn varints_are_compact() {
        let mut out = Vec::new();
        put_uvarint(&mut out, 127);
        assert_eq!(out.len(), 1);
        out.clear();
        put_uvarint(&mut out, 128);
        assert_eq!(out.len(), 2);
        let mut pos = 0;
        assert_eq!(get_uvarint(&out, &mut pos).unwrap(), 128);
    }

    #[test]
    fn signed_varints_round_trip() {
        for v in [0i64, 1, -1, 63, -64, 64, i64::MAX, i64::MIN] {
            let mut out = Vec::new();
            put_ivarint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_ivarint(&out, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn errors_on_truncation_and_bad_tags() {
        let bytes = encode_value(&Value::str("hello"));
        assert_eq!(
            decode_value(&bytes[..bytes.len() - 1]),
            Err(CodecError::UnexpectedEof)
        );
        assert_eq!(decode_value(&[0xff]), Err(CodecError::BadTag(0xff)));
        // Trailing garbage rejected.
        let mut bytes = encode_value(&Value::int(1));
        bytes.push(0);
        assert!(decode_value(&bytes).is_err());
    }

    #[test]
    fn encoding_is_deterministic_and_small() {
        let v = Value::record([("a", Value::int(1)), ("b", Value::int(2))]);
        assert_eq!(encode_value(&v), encode_value(&v.clone()));
        // tag + count + ("a" strlen+1 + int tag+1)*2 = well under 20.
        assert!(encode_value(&v).len() < 20);
    }
}
