//! The delta-log baseline: "logging all updates made to a database or
//! keeping differences between versions" (§5).
//!
//! Stores the first version in full and, for each later version, the
//! keyed differences from its predecessor. Space-efficient like the
//! archive, but version retrieval replays O(v) deltas and temporal
//! queries must reconstruct or scan — the weakness the archive fixes:
//! "It would be difficult to answer such queries over the archives
//! constructed with these methods without at least an attempt to
//! evaluate the query on each version."

use std::collections::BTreeMap;

use cdb_model::keys::{KeySpec, KeyStep};
use cdb_model::{KeyPath, Value};

use crate::archive::{ArchiveError, VersionId, VersionInfo};
use crate::codec;

/// One difference entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delta {
    /// A subtree appeared (or was wholly replaced) at this key path.
    Put(KeyPath, Value),
    /// The subtree at this key path disappeared.
    Remove(KeyPath),
}

/// A store of version 0 plus per-version delta lists.
#[derive(Debug, Clone)]
pub struct DeltaStore {
    spec: KeySpec,
    base: Option<Vec<u8>>,
    versions: Vec<VersionInfo>,
    deltas: Vec<Vec<Delta>>, // deltas[i] transforms version i-1 into i
    last: Option<Value>,     // cached latest version (not counted as storage)
}

impl DeltaStore {
    /// An empty store.
    pub fn new(spec: KeySpec) -> Self {
        DeltaStore {
            spec,
            base: None,
            versions: Vec::new(),
            deltas: Vec::new(),
            last: None,
        }
    }

    /// Stores a version, returning its id.
    pub fn add_version(
        &mut self,
        value: &Value,
        label: impl Into<String>,
    ) -> Result<VersionId, ArchiveError> {
        self.spec.keyed_nodes(value)?;
        let id = self.versions.len() as VersionId;
        match &self.last {
            None => {
                self.base = Some(codec::encode_value(value));
                self.deltas.push(Vec::new());
            }
            Some(prev) => {
                let d = diff_values(&self.spec, prev, value)?;
                self.deltas.push(d);
            }
        }
        self.versions.push(VersionInfo {
            id,
            label: label.into(),
        });
        self.last = Some(value.clone());
        Ok(id)
    }

    /// Retrieves a version by replaying deltas from the base.
    pub fn retrieve(&self, v: VersionId) -> Result<Value, ArchiveError> {
        if v as usize >= self.versions.len() {
            return Err(ArchiveError::NoSuchVersion(v));
        }
        let base = self.base.as_ref().ok_or(ArchiveError::NoSuchVersion(v))?;
        let mut cur = codec::decode_value(base).map_err(|_| ArchiveError::NoSuchVersion(v))?;
        for i in 1..=v as usize {
            for d in &self.deltas[i] {
                cur = apply_delta(&self.spec, &cur, d)?;
            }
        }
        Ok(cur)
    }

    /// Number of versions.
    pub fn version_count(&self) -> u32 {
        self.versions.len() as u32
    }

    /// Total stored bytes: base + encoded deltas + labels.
    pub fn encoded_size(&self) -> usize {
        let mut total = self.base.as_ref().map(Vec::len).unwrap_or(0);
        for (info, ds) in self.versions.iter().zip(&self.deltas) {
            total += info.label.len() + 4;
            for d in ds {
                let mut buf = Vec::new();
                match d {
                    Delta::Put(p, v) => {
                        buf.push(1);
                        codec::put_str(&mut buf, &p.to_string());
                        codec::put_value(&mut buf, v);
                    }
                    Delta::Remove(p) => {
                        buf.push(2);
                        codec::put_str(&mut buf, &p.to_string());
                    }
                }
                total += buf.len();
            }
        }
        total
    }
}

/// Computes keyed differences between two versions: for each key path
/// present in either, emit `Put` for added/changed subtrees (at the
/// highest changed path) and `Remove` for dropped ones.
pub fn diff_values(spec: &KeySpec, old: &Value, new: &Value) -> Result<Vec<Delta>, ArchiveError> {
    let old_nodes: BTreeMap<KeyPath, &Value> = spec.keyed_nodes(old)?.into_iter().collect();
    let new_nodes: BTreeMap<KeyPath, &Value> = spec.keyed_nodes(new)?.into_iter().collect();
    let mut out = Vec::new();
    // Added or changed: walk new paths shallow-first; skip paths under an
    // already-emitted Put.
    let mut covered: Vec<KeyPath> = Vec::new();
    for (path, nv) in &new_nodes {
        if covered.iter().any(|c| c.is_prefix_of(path) && c != path) {
            continue;
        }
        match old_nodes.get(path) {
            Some(ov) if ov == nv => {}
            Some(ov) => {
                // Changed below? If the node is atomic or the whole
                // subtree differs structurally, put the subtree; to keep
                // deltas small, only descend when both are non-atomic.
                let both_structured =
                    !matches!(ov, Value::Atom(_)) && !matches!(nv, Value::Atom(_));
                if !both_structured {
                    out.push(Delta::Put(path.clone(), (*nv).clone()));
                    covered.push(path.clone());
                }
                // Otherwise children will be visited individually.
            }
            None => {
                out.push(Delta::Put(path.clone(), (*nv).clone()));
                covered.push(path.clone());
            }
        }
    }
    // Removed paths (only the highest, and not under an emitted Put —
    // a Put already replaced that whole subtree).
    let mut removed: Vec<KeyPath> = Vec::new();
    for path in old_nodes.keys() {
        if !new_nodes.contains_key(path)
            && !removed.iter().any(|r| r.is_prefix_of(path) && r != path)
            && !covered.iter().any(|c| c.is_prefix_of(path))
        {
            removed.push(path.clone());
            out.push(Delta::Remove(path.clone()));
        }
    }
    Ok(out)
}

fn apply_delta(spec: &KeySpec, value: &Value, delta: &Delta) -> Result<Value, ArchiveError> {
    match delta {
        Delta::Put(path, new) => Ok(put_at(spec, value, path.steps(), new)?),
        Delta::Remove(path) => Ok(remove_at(spec, value, path.steps())?),
    }
}

fn put_at(
    spec: &KeySpec,
    value: &Value,
    steps: &[KeyStep],
    new: &Value,
) -> Result<Value, ArchiveError> {
    put_at_ctx(spec, value, steps, new, &mut Vec::new())
}

fn put_at_ctx(
    spec: &KeySpec,
    value: &Value,
    steps: &[KeyStep],
    new: &Value,
    context: &mut Vec<String>,
) -> Result<Value, ArchiveError> {
    let Some((step, rest)) = steps.split_first() else {
        return Ok(new.clone());
    };
    match (step, value) {
        (KeyStep::Field(l), Value::Record(m)) => {
            let mut m2 = m.clone();
            let child = m.get(l).cloned().unwrap_or(Value::unit());
            context.push(l.clone());
            let updated = put_at_ctx(spec, &child, rest, new, context)?;
            context.pop();
            m2.insert(l.clone(), updated);
            Ok(Value::Record(m2))
        }
        (KeyStep::Entry(_), Value::Set(s)) => {
            let mut out = std::collections::BTreeSet::new();
            let mut found = false;
            for el in s {
                let es = spec.entry_step(context, el, &cdb_model::Path::root())?;
                if es == *step {
                    found = true;
                    out.insert(put_at_ctx(spec, el, rest, new, context)?);
                } else {
                    out.insert(el.clone());
                }
            }
            if !found {
                if rest.is_empty() {
                    out.insert(new.clone());
                } else {
                    return Err(ArchiveError::NoSuchKeyPath(format!("{step:?}")));
                }
            }
            Ok(Value::Set(out))
        }
        (KeyStep::Index(i), Value::List(xs)) => {
            let mut xs2 = xs.clone();
            if *i < xs2.len() {
                xs2[*i] = put_at_ctx(spec, &xs2[*i], rest, new, context)?;
            } else if rest.is_empty() && *i == xs2.len() {
                xs2.push(new.clone());
            } else {
                return Err(ArchiveError::NoSuchKeyPath(format!("#{i}")));
            }
            Ok(Value::List(xs2))
        }
        _ => Err(ArchiveError::NoSuchKeyPath(format!("{step:?}"))),
    }
}

fn remove_at(spec: &KeySpec, value: &Value, steps: &[KeyStep]) -> Result<Value, ArchiveError> {
    remove_at_ctx(spec, value, steps, &mut Vec::new())
}

fn remove_at_ctx(
    spec: &KeySpec,
    value: &Value,
    steps: &[KeyStep],
    context: &mut Vec<String>,
) -> Result<Value, ArchiveError> {
    let Some((step, rest)) = steps.split_first() else {
        return Ok(Value::unit());
    };
    match (step, value) {
        (KeyStep::Field(l), Value::Record(m)) => {
            let mut m2 = m.clone();
            if rest.is_empty() {
                m2.remove(l);
            } else if let Some(child) = m.get(l) {
                context.push(l.clone());
                let updated = remove_at_ctx(spec, child, rest, context)?;
                context.pop();
                m2.insert(l.clone(), updated);
            }
            Ok(Value::Record(m2))
        }
        (KeyStep::Entry(_), Value::Set(s)) => {
            let mut out = std::collections::BTreeSet::new();
            for el in s {
                let es = spec.entry_step(context, el, &cdb_model::Path::root())?;
                if es == *step {
                    if !rest.is_empty() {
                        out.insert(remove_at_ctx(spec, el, rest, context)?);
                    }
                    // else: drop the element
                } else {
                    out.insert(el.clone());
                }
            }
            Ok(Value::Set(out))
        }
        (KeyStep::Index(i), Value::List(xs)) => {
            let mut xs2 = xs.clone();
            if rest.is_empty() {
                if *i < xs2.len() {
                    xs2.remove(*i);
                }
            } else if *i < xs2.len() {
                xs2[*i] = remove_at_ctx(spec, &xs2[*i], rest, context)?;
            }
            Ok(Value::List(xs2))
        }
        _ => Err(ArchiveError::NoSuchKeyPath(format!("{step:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> KeySpec {
        KeySpec::new().rule(Vec::<String>::new(), ["name"])
    }

    fn country(name: &str, pop: i64) -> Value {
        Value::record([("name", Value::str(name)), ("population", Value::int(pop))])
    }

    #[test]
    fn versions_round_trip_through_replay() {
        let mut s = DeltaStore::new(spec());
        let v0 = Value::set([country("Iceland", 1)]);
        let v1 = Value::set([country("Iceland", 2), country("Latvia", 3)]);
        let v2 = Value::set([country("Latvia", 3)]);
        s.add_version(&v0, "a").unwrap();
        s.add_version(&v1, "b").unwrap();
        s.add_version(&v2, "c").unwrap();
        assert_eq!(s.retrieve(0).unwrap(), v0);
        assert_eq!(s.retrieve(1).unwrap(), v1);
        assert_eq!(s.retrieve(2).unwrap(), v2);
        assert!(s.retrieve(3).is_err());
    }

    #[test]
    fn unchanged_versions_cost_almost_nothing() {
        let mut s = DeltaStore::new(spec());
        let v = Value::set((0..50).map(|i| country(&format!("c{i}"), i)));
        s.add_version(&v, "0").unwrap();
        let one = s.encoded_size();
        for i in 1..10 {
            s.add_version(&v, i.to_string()).unwrap();
        }
        assert!(s.encoded_size() < one + 200);
    }

    #[test]
    fn deltas_are_minimal_for_leaf_changes() {
        let old = Value::set([country("Iceland", 1), country("Latvia", 2)]);
        let new = Value::set([country("Iceland", 9), country("Latvia", 2)]);
        let d = diff_values(&spec(), &old, &new).unwrap();
        assert_eq!(d.len(), 1);
        match &d[0] {
            Delta::Put(p, v) => {
                assert!(p.to_string().contains("population"));
                assert_eq!(v, &Value::int(9));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn removals_report_highest_path_only() {
        let old = Value::set([country("Iceland", 1), country("USSR", 2)]);
        let new = Value::set([country("Iceland", 1)]);
        let d = diff_values(&spec(), &old, &new).unwrap();
        assert_eq!(d.len(), 1);
        assert!(matches!(&d[0], Delta::Remove(p) if p.to_string().contains("USSR")));
    }

    #[test]
    fn nested_structure_changes_apply() {
        let s2 = KeySpec::new()
            .rule(Vec::<String>::new(), ["name"])
            .rule(["cities"], ["city"]);
        let old = Value::set([Value::record([
            ("name", Value::str("Iceland")),
            (
                "cities",
                Value::set([Value::record([
                    ("city", Value::str("Reykjavik")),
                    ("pop", Value::int(1)),
                ])]),
            ),
        ])]);
        let new = Value::set([Value::record([
            ("name", Value::str("Iceland")),
            (
                "cities",
                Value::set([
                    Value::record([("city", Value::str("Reykjavik")), ("pop", Value::int(2))]),
                    Value::record([("city", Value::str("Akureyri")), ("pop", Value::int(3))]),
                ]),
            ),
        ])]);
        let mut store = DeltaStore::new(s2);
        store.add_version(&old, "a").unwrap();
        store.add_version(&new, "b").unwrap();
        assert_eq!(store.retrieve(0).unwrap(), old);
        assert_eq!(store.retrieve(1).unwrap(), new);
    }
}
