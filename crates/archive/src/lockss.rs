//! LOCKSS-style replicated preservation (§1.1).
//!
//! > "A move towards massive systematic distribution of electronic
//! > publications is the LOCKSS project in which a large number of
//! > university libraries each keep a repository of a set of
//! > publications, and a peer-to-peer synchronization process ensures
//! > that the repositories are consistent and cannot be corrupted either
//! > by bit-rot or deliberate interference. … could one build a LOCKSS
//! > system for databases? In addition to the requirements for files,
//! > such a system would have to work on incremental updates and would
//! > also have to work well with archiving."
//!
//! This module is that system, at simulation scale: a [`Replica`] holds
//! the encoded versions of a database; a [`PreservationNetwork`] runs
//! opinion polls over content digests (per version — the *incremental*
//! requirement: a new version is one new poll unit, not a re-shipment of
//! the whole database) and repairs minority replicas from the majority.
//! Bit-rot and deliberate tampering are first-class events in the tests.

use std::collections::BTreeMap;

use cdb_model::Value;

use crate::archive::{ArchiveError, VersionId};
use crate::codec;

/// A simple 64-bit FNV-1a digest of a byte string — the poll currency.
/// (Not cryptographic; the threat model of the simulation is bit-rot and
/// crude tampering, as in the paper's framing.)
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One library's repository: the encoded bytes of every version it
/// holds.
#[derive(Debug, Clone, Default)]
pub struct Replica {
    /// Library name.
    pub name: String,
    versions: BTreeMap<VersionId, Vec<u8>>,
}

impl Replica {
    /// An empty replica.
    pub fn new(name: impl Into<String>) -> Self {
        Replica {
            name: name.into(),
            versions: BTreeMap::new(),
        }
    }

    /// Stores a published version (incremental: only the new version
    /// ships).
    pub fn store(&mut self, v: VersionId, value: &Value) {
        self.versions.insert(v, codec::encode_value(value));
    }

    /// Retrieves a version, if held and decodable.
    pub fn retrieve(&self, v: VersionId) -> Result<Value, ArchiveError> {
        let bytes = self
            .versions
            .get(&v)
            .ok_or(ArchiveError::NoSuchVersion(v))?;
        codec::decode_value(bytes).map_err(|_| ArchiveError::NoSuchVersion(v))
    }

    /// The digest of a held version.
    pub fn digest_of(&self, v: VersionId) -> Option<u64> {
        self.versions.get(&v).map(|b| digest(b))
    }

    /// The versions held.
    pub fn held_versions(&self) -> Vec<VersionId> {
        self.versions.keys().copied().collect()
    }

    /// Simulated bit-rot: flips a byte of the stored encoding of `v`.
    pub fn rot(&mut self, v: VersionId, at: usize) {
        if let Some(bytes) = self.versions.get_mut(&v) {
            if !bytes.is_empty() {
                let i = at % bytes.len();
                bytes[i] ^= 0x55;
            }
        }
    }

    /// Simulated deliberate interference: replaces a version's content.
    pub fn tamper(&mut self, v: VersionId, forged: &Value) {
        if self.versions.contains_key(&v) {
            self.versions.insert(v, codec::encode_value(forged));
        }
    }

    /// Total stored bytes.
    pub fn size(&self) -> usize {
        self.versions.values().map(Vec::len).sum()
    }
}

/// The outcome of one poll over one version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollResult {
    /// The version polled.
    pub version: VersionId,
    /// The winning digest, if any majority existed.
    pub winner: Option<u64>,
    /// Replicas that disagreed with the majority (repaired if repair was
    /// requested).
    pub dissenters: Vec<String>,
}

/// A network of replicas preserving the published versions of one
/// curated database.
#[derive(Debug, Default)]
pub struct PreservationNetwork {
    replicas: Vec<Replica>,
}

impl PreservationNetwork {
    /// A network of `n` named replicas.
    pub fn new(n: usize) -> Self {
        PreservationNetwork {
            replicas: (0..n)
                .map(|i| Replica::new(format!("library{i}")))
                .collect(),
        }
    }

    /// The replicas.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Mutable access to one replica (for injecting faults in tests).
    pub fn replica_mut(&mut self, i: usize) -> &mut Replica {
        &mut self.replicas[i]
    }

    /// Publishes a version to every replica (the incremental update).
    pub fn publish(&mut self, v: VersionId, value: &Value) {
        for r in &mut self.replicas {
            r.store(v, value);
        }
    }

    /// Runs an opinion poll over one version: replicas vote with their
    /// digests; the majority digest wins; with `repair`, dissenting
    /// replicas re-fetch the winning bytes from a majority member.
    /// Returns `None` winner when no strict majority exists (the network
    /// is lost — which the tests show requires ⌈n/2⌉ simultaneous
    /// corruptions).
    pub fn poll(&mut self, v: VersionId, repair: bool) -> PollResult {
        let mut votes: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, r) in self.replicas.iter().enumerate() {
            if let Some(d) = r.digest_of(v) {
                votes.entry(d).or_default().push(i);
            }
        }
        let winner = votes
            .iter()
            .max_by_key(|(_, voters)| voters.len())
            .filter(|(_, voters)| voters.len() * 2 > self.replicas.len())
            .map(|(d, _)| *d);
        let mut dissenters = Vec::new();
        if let Some(wd) = winner {
            let source = votes[&wd][0];
            let good_bytes = self.replicas[source]
                .versions
                .get(&v)
                .cloned()
                .expect("winner holds the version");
            for (i, r) in self.replicas.iter_mut().enumerate() {
                if r.digest_of(v) != Some(wd) {
                    dissenters.push(r.name.clone());
                    if repair {
                        r.versions.insert(v, good_bytes.clone());
                    }
                }
                let _ = i;
            }
        }
        PollResult {
            version: v,
            winner,
            dissenters,
        }
    }

    /// Audits and repairs every version held anywhere.
    pub fn audit_all(&mut self) -> Vec<PollResult> {
        let mut versions: Vec<VersionId> = self
            .replicas
            .iter()
            .flat_map(Replica::held_versions)
            .collect();
        versions.sort_unstable();
        versions.dedup();
        versions.into_iter().map(|v| self.poll(v, true)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edition(i: i64) -> Value {
        Value::set([Value::record([
            ("name", Value::str("Iceland")),
            ("population", Value::int(300_000 + i)),
        ])])
    }

    fn network_with_versions(n: usize, versions: usize) -> PreservationNetwork {
        let mut net = PreservationNetwork::new(n);
        for v in 0..versions {
            net.publish(v as VersionId, &edition(v as i64));
        }
        net
    }

    #[test]
    fn healthy_network_polls_unanimously() {
        let mut net = network_with_versions(7, 3);
        for r in net.audit_all() {
            assert!(r.winner.is_some());
            assert!(r.dissenters.is_empty());
        }
    }

    #[test]
    fn bit_rot_is_detected_and_repaired() {
        let mut net = network_with_versions(5, 2);
        net.replica_mut(2).rot(1, 7);
        assert!(
            net.replicas()[2].retrieve(1).is_err()
                || net.replicas()[2].retrieve(1).unwrap() != edition(1),
            "rot corrupted the copy"
        );
        let r = net.poll(1, true);
        assert_eq!(r.dissenters, vec!["library2".to_string()]);
        // Repaired: the replica now agrees and decodes correctly.
        assert_eq!(net.replicas()[2].retrieve(1).unwrap(), edition(1));
        let r2 = net.poll(1, false);
        assert!(r2.dissenters.is_empty());
    }

    #[test]
    fn deliberate_tampering_is_outvoted() {
        let mut net = network_with_versions(5, 1);
        let forged = Value::set([Value::record([
            ("name", Value::str("Iceland")),
            ("population", Value::int(1)),
        ])]);
        // Two colluding libraries forge the same bytes.
        net.replica_mut(0).tamper(0, &forged);
        net.replica_mut(1).tamper(0, &forged);
        let r = net.poll(0, true);
        assert!(r.winner.is_some(), "honest majority wins");
        assert_eq!(r.dissenters.len(), 2);
        for rep in net.replicas() {
            assert_eq!(rep.retrieve(0).unwrap(), edition(0));
        }
    }

    #[test]
    fn majority_corruption_loses_the_version() {
        let mut net = network_with_versions(4, 1);
        let forged = edition(-999);
        // Tampering reaches half the network with identical forgeries:
        // no strict majority either way (2 vs 2).
        net.replica_mut(0).tamper(0, &forged);
        net.replica_mut(1).tamper(0, &forged);
        let r = net.poll(0, true);
        assert_eq!(r.winner, None, "2-of-4 is not a strict majority");
    }

    #[test]
    fn incremental_updates_only_ship_new_versions() {
        let mut net = network_with_versions(3, 1);
        let before = net.replicas()[0].size();
        net.publish(1, &edition(1));
        let after = net.replicas()[0].size();
        assert!(after > before);
        // Version 0's bytes are untouched (same digest).
        let d0_before = net.replicas()[0].digest_of(0);
        net.publish(2, &edition(2));
        assert_eq!(net.replicas()[0].digest_of(0), d0_before);
        assert_eq!(net.replicas()[0].held_versions(), vec![0, 1, 2]);
    }

    #[test]
    fn digest_detects_single_byte_changes() {
        let a = codec::encode_value(&edition(0));
        let mut b = a.clone();
        b[3] ^= 1;
        assert_ne!(digest(&a), digest(&b));
        assert_eq!(digest(&a), digest(&a.clone()));
    }

    #[test]
    fn missing_versions_do_not_vote() {
        let mut net = PreservationNetwork::new(3);
        net.publish(0, &edition(0));
        // One replica loses the version entirely.
        net.replica_mut(1).versions.remove(&0);
        let r = net.poll(0, true);
        assert!(r.winner.is_some());
        assert_eq!(r.dissenters, vec!["library1".to_string()]);
        assert_eq!(
            net.replicas()[1].retrieve(0).unwrap(),
            edition(0),
            "restored"
        );
    }
}
