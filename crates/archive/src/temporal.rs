//! Temporal (longitudinal) queries, answered directly on the archive.
//!
//! §5.1: "this archiving technique is also a promising solution for
//! answering a range of temporal queries over hierarchical data by,
//! essentially, executing them directly on the archive." The example the
//! paper keeps returning to: "query previous versions to retrieve useful
//! information such as the internet penetration of Liechtenstein over
//! the past five years, and perhaps correlate it with economic data".
//!
//! Each query here comes in two forms for the E7 benchmark: the
//! archive-direct form (one walk over the fat-node tree) and the
//! scan-all-versions baseline (retrieve every version, evaluate, merge).

use cdb_model::keys::KeyStep;
use cdb_model::{Atom, KeyPath, Value};

use crate::archive::{Archive, ArchiveError, Interval, VersionId};
use crate::snapshots::SnapshotStore;

/// The series of values of an atomic key path across versions:
/// `(version, value)` for every version where it was present. The
/// archive-direct form.
pub fn series(archive: &Archive, path: &KeyPath) -> Result<Vec<(VersionId, Atom)>, ArchiveError> {
    let hist = archive.value_history(path)?;
    let n = archive.version_count();
    let mut out = Vec::new();
    for ((start, end), atom) in hist {
        let end = end.unwrap_or(n);
        for v in start..end {
            out.push((v, atom.clone()));
        }
    }
    Ok(out)
}

/// The scan-all-versions baseline for [`series`]: reconstruct every
/// snapshot and navigate it.
pub fn series_by_scan(
    store: &SnapshotStore,
    spec: &cdb_model::KeySpec,
    path: &KeyPath,
) -> Result<Vec<(VersionId, Atom)>, ArchiveError> {
    let mut out = Vec::new();
    for v in 0..store.version_count() {
        let snapshot = store.retrieve(v)?;
        if let Ok(Value::Atom(a)) = spec.resolve(&snapshot, path) {
            out.push((v, a.clone()));
        }
    }
    Ok(out)
}

/// Versions at which `pred` holds of the atomic value at `path`.
pub fn versions_where(
    archive: &Archive,
    path: &KeyPath,
    pred: impl Fn(&Atom) -> bool,
) -> Result<Vec<VersionId>, ArchiveError> {
    Ok(series(archive, path)?
        .into_iter()
        .filter(|(_, a)| pred(a))
        .map(|(v, _)| v)
        .collect())
}

/// The lifespans of every child entry of the set at `path` — e.g. each
/// country's period of existence in the Factbook (fission/fusion shows
/// up as interval boundaries).
pub fn entry_lifespans(
    archive: &Archive,
    path: &KeyPath,
) -> Result<Vec<(KeyPath, Vec<Interval>)>, ArchiveError> {
    let mut out = Vec::new();
    for kp in archive.all_key_paths() {
        if kp.len() == path.len() + 1
            && path.is_prefix_of(&kp)
            && matches!(kp.steps().last(), Some(KeyStep::Entry(_)))
        {
            let spans = archive.lifespan(&kp)?;
            out.push((kp, spans));
        }
    }
    Ok(out)
}

/// Pearson correlation between two atomic series over the versions where
/// both are present (the paper's "correlate it with economic data").
/// Returns `None` when fewer than two shared versions exist or a series
/// is constant.
pub fn correlate(archive: &Archive, a: &KeyPath, b: &KeyPath) -> Result<Option<f64>, ArchiveError> {
    let sa = series(archive, a)?;
    let sb = series(archive, b)?;
    let to_f = |x: &Atom| -> Option<f64> {
        match x {
            Atom::Int(i) => Some(*i as f64),
            Atom::Decimal(d) => Some(d.to_f64()),
            _ => None,
        }
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (v, av) in &sa {
        if let Some((_, bv)) = sb.iter().find(|(w, _)| w == v) {
            if let (Some(x), Some(y)) = (to_f(av), to_f(bv)) {
                xs.push(x);
                ys.push(y);
            }
        }
    }
    if xs.len() < 2 {
        return Ok(None);
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if vx == 0.0 || vy == 0.0 {
        return Ok(None);
    }
    Ok(Some(cov / (vx.sqrt() * vy.sqrt())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_model::KeySpec;

    fn spec() -> KeySpec {
        KeySpec::new().rule(Vec::<String>::new(), ["name"])
    }

    fn country(name: &str, net: i64, gdp: i64) -> Value {
        Value::record([
            ("name", Value::str(name)),
            ("internet_users", Value::int(net)),
            ("gdp", Value::int(gdp)),
        ])
    }

    fn liecht_path(field: &str) -> KeyPath {
        KeyPath::root()
            .child(KeyStep::Entry(vec![Atom::Str("Liechtenstein".into())]))
            .child(KeyStep::Field(field.into()))
    }

    /// Five "years" of Factbook data for Liechtenstein.
    fn build() -> (Archive, SnapshotStore) {
        let mut arch = Archive::new("factbook", spec());
        let mut snaps = SnapshotStore::new();
        for (i, (net, gdp)) in [(10, 100), (12, 110), (15, 130), (20, 160), (26, 200)]
            .iter()
            .enumerate()
        {
            let v = Value::set([country("Liechtenstein", *net, *gdp)]);
            arch.add_version(&v, format!("200{i}")).unwrap();
            snaps.add_version(&v, format!("200{i}"));
        }
        (arch, snaps)
    }

    #[test]
    fn series_matches_scan_baseline() {
        let (arch, snaps) = build();
        let p = liecht_path("internet_users");
        let direct = series(&arch, &p).unwrap();
        let scanned = series_by_scan(&snaps, &spec(), &p).unwrap();
        assert_eq!(direct, scanned);
        assert_eq!(direct.len(), 5);
        assert_eq!(direct[0], (0, Atom::Int(10)));
        assert_eq!(direct[4], (4, Atom::Int(26)));
    }

    #[test]
    fn versions_where_filters() {
        let (arch, _) = build();
        let p = liecht_path("internet_users");
        let vs = versions_where(&arch, &p, |a| matches!(a, Atom::Int(i) if *i >= 15)).unwrap();
        assert_eq!(vs, vec![2, 3, 4]);
    }

    #[test]
    fn correlation_of_growing_series_is_high() {
        let (arch, _) = build();
        let c = correlate(&arch, &liecht_path("internet_users"), &liecht_path("gdp"))
            .unwrap()
            .unwrap();
        assert!(c > 0.98, "both grow monotonically: r = {c}");
    }

    #[test]
    fn correlation_none_for_constant_series() {
        let mut arch = Archive::new("f", spec());
        for i in 0..3 {
            arch.add_version(&Value::set([country("X", 5, 100 + i)]), i.to_string())
                .unwrap();
        }
        let c = correlate(
            &arch,
            &KeyPath::root()
                .child(KeyStep::Entry(vec![Atom::Str("X".into())]))
                .child(KeyStep::Field("internet_users".into())),
            &KeyPath::root()
                .child(KeyStep::Entry(vec![Atom::Str("X".into())]))
                .child(KeyStep::Field("gdp".into())),
        )
        .unwrap();
        assert_eq!(c, None);
    }

    #[test]
    fn entry_lifespans_report_each_country() {
        let mut arch = Archive::new("f", spec());
        arch.add_version(&Value::set([country("A", 1, 1), country("B", 2, 2)]), "0")
            .unwrap();
        arch.add_version(&Value::set([country("A", 1, 1)]), "1")
            .unwrap();
        let spans = entry_lifespans(&arch, &KeyPath::root()).unwrap();
        assert_eq!(spans.len(), 2);
        let b = spans
            .iter()
            .find(|(p, _)| p.to_string().contains('B'))
            .unwrap();
        assert_eq!(b.1, vec![(0, Some(1))]);
    }

    #[test]
    fn missing_path_errors() {
        let (arch, _) = build();
        let p = KeyPath::root().child(KeyStep::Field("nope".into()));
        assert!(series(&arch, &p).is_err());
    }
}
