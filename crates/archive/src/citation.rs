//! Versioned citations (§5.2, after \[12\]).
//!
//! "Since the database may be expected to change, the usual principles
//! of citation dictate that one should cite, or link to, the appropriate
//! version of the database. This requires that all old versions are
//! recoverable even when the database gets constantly updated." — which
//! is exactly what the archive provides. A [`Citation`] pins database
//! name, version (with its label), and the key path of the cited entry;
//! it resolves against the archive forever, no matter how the working
//! database moves on, and carries the "small amount of extra information"
//! (title-ish label, optional authors) that lets a reader recognize the
//! cited entry without dereferencing.

use std::fmt;

use cdb_model::{KeyPath, Value};

use crate::archive::{Archive, ArchiveError, VersionId};

/// A citation of one entry of one version of a curated database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Citation {
    /// The database name.
    pub database: String,
    /// The cited version.
    pub version: VersionId,
    /// The version label (release date or name) at citation time.
    pub version_label: String,
    /// The key path of the cited entry.
    pub path: KeyPath,
    /// Authors/curators to credit, when the database records them.
    pub authors: Vec<String>,
    /// A short human-readable description of the cited entry.
    pub title: String,
}

impl Citation {
    /// Creates a citation for the entry at `path` in version `version`,
    /// verifying that the entry exists there. The `title` is derived
    /// from the entry's `name`/`id`/`ac` field when present, else from
    /// the key path.
    pub fn cite(
        archive: &Archive,
        version: VersionId,
        path: &KeyPath,
        authors: Vec<String>,
    ) -> Result<Citation, ArchiveError> {
        let info = archive
            .versions()
            .get(version as usize)
            .ok_or(ArchiveError::NoSuchVersion(version))?
            .clone();
        let snapshot = archive.retrieve(version)?;
        let entry = archive
            .spec()
            .resolve(&snapshot, path)
            .map_err(|_| ArchiveError::NoSuchKeyPath(path.to_string()))?;
        let title = derive_title(entry, path);
        Ok(Citation {
            database: archive.name().to_owned(),
            version,
            version_label: info.label,
            path: path.clone(),
            authors,
            title,
        })
    }

    /// Resolves the citation against the archive, returning the cited
    /// entry exactly as it was in the cited version.
    pub fn resolve(&self, archive: &Archive) -> Result<Value, ArchiveError> {
        if archive.name() != self.database {
            return Err(ArchiveError::NoSuchKeyPath(format!(
                "citation is into database {:?}, not {:?}",
                self.database,
                archive.name()
            )));
        }
        let snapshot = archive.retrieve(self.version)?;
        archive
            .spec()
            .resolve(&snapshot, &self.path)
            .cloned()
            .map_err(|_| ArchiveError::NoSuchKeyPath(self.path.to_string()))
    }
}

fn derive_title(entry: &Value, path: &KeyPath) -> String {
    if let Some(rec) = entry.as_record() {
        for key in ["name", "id", "ac", "title"] {
            if let Some(Value::Atom(a)) = rec.get(key) {
                return a.to_string().trim_matches('"').to_owned();
            }
        }
    }
    path.to_string()
}

impl fmt::Display for Citation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.authors.is_empty() {
            write!(f, "{}. ", self.authors.join(", "))?;
        }
        write!(
            f,
            "\"{}\". In: {} (release {}, version {}), entry {}.",
            self.title, self.database, self.version_label, self.version, self.path
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_model::keys::KeyStep;
    use cdb_model::{Atom, KeySpec};

    fn build() -> Archive {
        let spec = KeySpec::new().rule(Vec::<String>::new(), ["name"]);
        let mut arch = Archive::new("iuphar", spec);
        arch.add_version(
            &Value::set([Value::record([
                ("name", Value::str("GABA-A")),
                ("kind", Value::str("receptor")),
            ])]),
            "2007-12",
        )
        .unwrap();
        arch.add_version(
            &Value::set([Value::record([
                ("name", Value::str("GABA-A")),
                ("kind", Value::str("ion channel")),
            ])]),
            "2008-06",
        )
        .unwrap();
        arch
    }

    fn entry_path() -> KeyPath {
        KeyPath::root().child(KeyStep::Entry(vec![Atom::Str("GABA-A".into())]))
    }

    #[test]
    fn citations_pin_versions() {
        let arch = build();
        let c0 = Citation::cite(&arch, 0, &entry_path(), vec!["A. Curator".into()]).unwrap();
        // The working database has moved on, but the citation resolves
        // to the cited version's content.
        let resolved = c0.resolve(&arch).unwrap();
        assert_eq!(resolved.field("kind").unwrap(), &Value::str("receptor"));
        let c1 = Citation::cite(&arch, 1, &entry_path(), vec![]).unwrap();
        assert_eq!(
            c1.resolve(&arch).unwrap().field("kind").unwrap(),
            &Value::str("ion channel")
        );
    }

    #[test]
    fn citation_display_is_readable() {
        let arch = build();
        let c = Citation::cite(&arch, 0, &entry_path(), vec!["A. Curator".into()]).unwrap();
        let s = c.to_string();
        assert!(s.contains("A. Curator"));
        assert!(s.contains("GABA-A"));
        assert!(s.contains("iuphar"));
        assert!(s.contains("2007-12"));
    }

    #[test]
    fn citing_a_missing_entry_fails() {
        let arch = build();
        let bad = KeyPath::root().child(KeyStep::Entry(vec![Atom::Str("nope".into())]));
        assert!(Citation::cite(&arch, 0, &bad, vec![]).is_err());
        assert!(Citation::cite(&arch, 7, &entry_path(), vec![]).is_err());
    }

    #[test]
    fn resolving_against_the_wrong_database_fails() {
        let arch = build();
        let c = Citation::cite(&arch, 0, &entry_path(), vec![]).unwrap();
        let other = Archive::new("uniprot", KeySpec::new());
        assert!(c.resolve(&other).is_err());
    }

    #[test]
    fn title_derivation_prefers_name_field() {
        let arch = build();
        let c = Citation::cite(&arch, 0, &entry_path(), vec![]).unwrap();
        assert_eq!(c.title, "GABA-A");
        // A non-record entry falls back to the path.
        let leaf = entry_path().child(KeyStep::Field("kind".into()));
        let c2 = Citation::cite(&arch, 0, &leaf, vec![]).unwrap();
        assert_eq!(c2.title, leaf.to_string());
    }
}
