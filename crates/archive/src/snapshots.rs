//! The full-snapshot baseline: "simply keeping all older versions of the
//! database" (§5), each encoded with the compact codec.

use cdb_model::Value;

use crate::archive::{ArchiveError, VersionId, VersionInfo};
use crate::codec;

/// A store that keeps every published version in full.
#[derive(Debug, Clone, Default)]
pub struct SnapshotStore {
    snapshots: Vec<(VersionInfo, Vec<u8>)>,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// Stores a version, returning its id.
    pub fn add_version(&mut self, value: &Value, label: impl Into<String>) -> VersionId {
        let id = self.snapshots.len() as VersionId;
        self.snapshots.push((
            VersionInfo {
                id,
                label: label.into(),
            },
            codec::encode_value(value),
        ));
        id
    }

    /// Retrieves a version.
    pub fn retrieve(&self, v: VersionId) -> Result<Value, ArchiveError> {
        let (_, bytes) = self
            .snapshots
            .get(v as usize)
            .ok_or(ArchiveError::NoSuchVersion(v))?;
        codec::decode_value(bytes).map_err(|_| ArchiveError::NoSuchVersion(v))
    }

    /// Number of versions stored.
    pub fn version_count(&self) -> u32 {
        self.snapshots.len() as u32
    }

    /// Total stored bytes (the E7 space metric).
    pub fn encoded_size(&self) -> usize {
        self.snapshots
            .iter()
            .map(|(info, bytes)| info.label.len() + 4 + bytes.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_round_trip() {
        let mut s = SnapshotStore::new();
        let v0 = Value::record([("a", Value::int(1))]);
        let v1 = Value::record([("a", Value::int(2))]);
        s.add_version(&v0, "r0");
        s.add_version(&v1, "r1");
        assert_eq!(s.retrieve(0).unwrap(), v0);
        assert_eq!(s.retrieve(1).unwrap(), v1);
        assert!(s.retrieve(2).is_err());
    }

    #[test]
    fn size_grows_linearly_even_without_changes() {
        let mut s = SnapshotStore::new();
        let v = Value::set((0..50).map(Value::int));
        s.add_version(&v, "0");
        let one = s.encoded_size();
        for i in 1..10 {
            s.add_version(&v, i.to_string());
        }
        assert!(s.encoded_size() >= 9 * one, "full copies every time");
    }
}
