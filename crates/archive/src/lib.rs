//! # cdb-archive
//!
//! Archiving and citation for curated databases (§5 of *Curated
//! Databases*, after Buneman–Khanna–Tajima–Tan, *Archiving scientific
//! data* \[16\]):
//!
//! * [`archive`] — the **fat-node archive**: all versions of a keyed
//!   hierarchical database merged into one compact tree, where "each
//!   node is associated with a time interval that captures the time
//!   during which the node exists in the database … if it is different
//!   from the time interval of its parent node" — a generalization of
//!   the fat-node method for persistent data structures \[32\]. Merging
//!   relies on hierarchical keys (`cdb-model::keys`) to identify nodes
//!   invariantly under updates.
//! * [`snapshots`] / [`deltas`] — the two baseline strategies §5 lists
//!   ("keeping all older versions … optionally compressing them" and
//!   "keeping differences between versions"), against which the archive
//!   is measured in the E7 benchmarks.
//! * [`temporal`] — temporal (longitudinal) queries answered *directly
//!   on the archive*: value histories, lifespans, cross-version
//!   comparisons — the World Factbook's "internet penetration of
//!   Liechtenstein over the past five years".
//! * [`citation`] — versioned citations (§5.2, \[12\]): a citation pins
//!   a database name, version and key path, resolves against the
//!   archive, and stays stable as the database moves on.
//! * [`codec`] — a compact hand-rolled binary codec used to measure
//!   storage footprints honestly (and as the serialization for
//!   publishing versions).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod archive;
pub mod citation;
pub mod codec;
pub mod deltas;
pub mod lockss;
pub mod snapshots;
pub mod temporal;

pub use archive::{Archive, ArchiveError, VersionId, VersionInfo};
pub use citation::Citation;
pub use deltas::DeltaStore;
pub use snapshots::SnapshotStore;
