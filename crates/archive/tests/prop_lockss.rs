//! Property-based tests for the LOCKSS-style preservation network:
//! any minority of corrupted replicas is always detected and repaired by
//! one audit round, and honest content always wins the poll.

use cdb_archive::lockss::PreservationNetwork;
use cdb_model::Value;
use proptest::prelude::*;

fn edition(i: i64) -> Value {
    Value::set([
        Value::record([("name", Value::str("A")), ("x", Value::int(i))]),
        Value::record([("name", Value::str("B")), ("x", Value::int(-i))]),
    ])
}

proptest! {
    /// Up to ⌈n/2⌉−1 replicas corrupted arbitrarily (bit-rot at random
    /// offsets or tampering) are all repaired by a single audit.
    #[test]
    fn minority_corruption_always_heals(
        n in 3usize..9,
        versions in 1usize..4,
        faults in proptest::collection::vec((0usize..8, 0usize..3, 0usize..64, any::<bool>()), 0..6),
    ) {
        let mut net = PreservationNetwork::new(n);
        for v in 0..versions {
            net.publish(v as u32, &edition(v as i64));
        }
        // Inject faults into strictly fewer than half the replicas.
        let minority = (n - 1) / 2;
        let mut touched: Vec<usize> = Vec::new();
        for (ri, v, off, tamper) in faults {
            let ri = ri % n;
            let v = (v % versions) as u32;
            if !touched.contains(&ri) {
                if touched.len() >= minority {
                    continue;
                }
                touched.push(ri);
            }
            if tamper {
                net.replica_mut(ri).tamper(v, &edition(-12345));
            } else {
                net.replica_mut(ri).rot(v, off);
            }
        }
        // One audit round heals everything.
        for r in net.audit_all() {
            prop_assert!(r.winner.is_some(), "majority must exist");
        }
        for v in 0..versions as u32 {
            for rep in net.replicas() {
                prop_assert_eq!(
                    rep.retrieve(v).unwrap(),
                    edition(v as i64),
                    "replica {} version {} not healed", rep.name, v
                );
            }
        }
        // A second audit is quiet.
        for r in net.audit_all() {
            prop_assert!(r.dissenters.is_empty());
        }
    }

    /// Publishing is incremental: old versions' digests never change.
    #[test]
    fn publishing_never_rewrites_history(versions in 2usize..6) {
        let mut net = PreservationNetwork::new(3);
        net.publish(0, &edition(0));
        let d0 = net.replicas()[0].digest_of(0);
        for v in 1..versions {
            net.publish(v as u32, &edition(v as i64));
            prop_assert_eq!(net.replicas()[0].digest_of(0), d0);
        }
    }
}
