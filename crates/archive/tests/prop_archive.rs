//! Property-based tests: codec round-trips for arbitrary values, and
//! store equivalence (archive = snapshots = deltas) over random keyed
//! version sequences.

use cdb_archive::codec::{decode_value, encode_value};
use cdb_archive::{Archive, DeltaStore, SnapshotStore};
use cdb_model::{Atom, KeySpec, Value};
use proptest::prelude::*;

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        Just(Atom::Unit),
        any::<bool>().prop_map(Atom::Bool),
        any::<i64>().prop_map(Atom::Int),
        "[ -~]{0,12}".prop_map(Atom::Str),
        (any::<i64>(), 0u8..6).prop_map(|(d, s)| {
            Atom::Decimal(cdb_model::atom::Decimal::new(
                d.clamp(-1_000_000, 1_000_000),
                s,
            ))
        }),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    let leaf = atom().prop_map(Value::Atom);
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::btree_map("[a-d]{1,3}", inner.clone(), 0..4)
                .prop_map(Value::Record),
            proptest::collection::btree_set(inner.clone(), 0..4).prop_map(Value::Set),
            proptest::collection::vec(inner, 0..4).prop_map(Value::List),
        ]
    })
}

proptest! {
    /// The binary codec round-trips every value.
    #[test]
    fn codec_round_trips(v in value()) {
        let bytes = encode_value(&v);
        prop_assert_eq!(decode_value(&bytes).unwrap(), v);
    }

    /// Truncated encodings never decode successfully to the same value
    /// (they error or — never — succeed spuriously on full input).
    #[test]
    fn codec_rejects_truncation(v in value()) {
        let bytes = encode_value(&v);
        if bytes.len() > 1 {
            prop_assert!(decode_value(&bytes[..bytes.len()-1]).is_err());
        }
    }
}

/// A generator of keyed version sequences: a map entry per key, each
/// version flips values and adds/removes entries.
fn version_sequences() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(
        proptest::collection::btree_map("[a-h]", (-50i64..50, any::<bool>()), 0..8),
        1..8,
    )
    .prop_map(|versions| {
        versions
            .into_iter()
            .map(|entries| {
                Value::set(entries.into_iter().map(|(name, (val, flag))| {
                    Value::record([
                        ("name", Value::str(name)),
                        ("val", Value::int(val)),
                        ("flag", Value::atom(flag)),
                    ])
                }))
            })
            .collect()
    })
}

proptest! {
    /// Archive, snapshots and delta log reconstruct identical versions
    /// for arbitrary keyed evolutions — including deletions and
    /// re-additions.
    #[test]
    fn stores_agree_on_all_versions(versions in version_sequences()) {
        let spec = KeySpec::new().rule(Vec::<String>::new(), ["name"]);
        let mut archive = Archive::new("p", spec.clone());
        let mut snaps = SnapshotStore::new();
        let mut deltas = DeltaStore::new(spec);
        for (i, v) in versions.iter().enumerate() {
            archive.add_version(v, format!("{i}")).unwrap();
            snaps.add_version(v, format!("{i}"));
            deltas.add_version(v, format!("{i}")).unwrap();
        }
        for (i, expected) in versions.iter().enumerate() {
            let v = i as u32;
            prop_assert_eq!(&archive.retrieve(v).unwrap(), expected);
            prop_assert_eq!(&snaps.retrieve(v).unwrap(), expected);
            prop_assert_eq!(&deltas.retrieve(v).unwrap(), expected);
        }
    }

    /// Archive diffs are sound: applying the reported change set
    /// explains exactly the differing keyed nodes.
    #[test]
    fn archive_diff_is_sound(versions in version_sequences()) {
        prop_assume!(versions.len() >= 2);
        let spec = KeySpec::new().rule(Vec::<String>::new(), ["name"]);
        let mut archive = Archive::new("p", spec.clone());
        for (i, v) in versions.iter().enumerate() {
            archive.add_version(v, format!("{i}")).unwrap();
        }
        let (a, b) = (0u32, (versions.len() - 1) as u32);
        let diff = archive.diff(a, b).unwrap();
        if versions[0] == versions[versions.len() - 1] {
            prop_assert!(diff.is_empty());
        } else {
            prop_assert!(!diff.is_empty());
        }
    }
}
