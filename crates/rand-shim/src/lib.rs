//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace ships a small std-only implementation of the subset of the
//! `rand 0.8` API it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic from a `u64` seed, which is
//! all the synthetic-workload generators and benches require. Streams do
//! **not** match upstream `rand`; every consumer in this repo only relies
//! on determinism per seed, not on specific values.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high)` from the generator.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// The raw entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // Width fits in u128 for every integer type we support;
                // modulo bias is ~2^-64 per draw, irrelevant for synthetic
                // workloads and tests.
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as Self
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Ranges a value can be uniformly drawn from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample(rng, self.start, self.end)
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform value in the half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 bits of mantissa, same construction as rand's `gen::<f64>()`.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A random value of a primitive type (subset of `rand::Rng::gen`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types generable by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (as the xoshiro authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..8);
            assert!((-3..8).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
