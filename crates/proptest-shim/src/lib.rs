//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates registry, so this workspace ships
//! a small std-only implementation of the `proptest 1.x` API subset its
//! tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, and `boxed`;
//! * integer-range strategies (`0i64..6`), tuple strategies, [`Just`],
//!   `any::<T>()`, [`prop_oneof!`], and `&str` character-class patterns
//!   (`"[a-z]{0,6}"`);
//! * [`collection::vec`], [`collection::btree_map`],
//!   [`collection::btree_set`];
//! * the [`proptest!`] macro plus [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], and [`prop_assume!`].
//!
//! Differences from upstream, by design: inputs are generated from a
//! deterministic per-test-per-case seed (so failures reproduce exactly
//! on rerun, with no persistence file), and there is **no shrinking** —
//! a failing case prints its full inputs instead. Case count defaults to
//! 256 and can be overridden with the `PROPTEST_CASES` environment
//! variable.
//!
//! [`Just`]: strategy::Just
//! [`prop_oneof!`]: crate::prop_oneof

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod pattern;
pub mod rng;
pub mod runner;
pub mod strategy;

/// A failed or rejected test case, produced by the `prop_assert*` and
/// `prop_assume!` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reject: bool,
    msg: String,
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError {
            reject: false,
            msg: msg.into(),
        }
    }

    /// A rejected (assumption-violating) case; the runner retries with
    /// fresh inputs.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError {
            reject: true,
            msg: msg.into(),
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        self.reject
    }

    /// The failure/rejection message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

/// Everything a property test typically imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with inputs printed) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Rejects the current case (the runner retries with fresh inputs) when
/// the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Chooses uniformly among the given strategies (all producing the same
/// value type). Weighted arms are not supported by this shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body on 256 (or `PROPTEST_CASES`)
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                |__pt_rng| {
                    let mut __pt_inputs = ::std::string::String::new();
                    $(
                        let __pt_v = $crate::strategy::Strategy::gen(&($strat), __pt_rng);
                        {
                            use ::std::fmt::Write as _;
                            let _ = ::std::write!(
                                __pt_inputs, "{} = {:?}; ", stringify!($arg), &__pt_v
                            );
                        }
                        let $arg = __pt_v;
                    )+
                    let __pt_result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match __pt_result {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {
                            $crate::runner::CaseOutcome::Pass
                        }
                        ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                            if e.is_reject() {
                                $crate::runner::CaseOutcome::Reject
                            } else {
                                $crate::runner::CaseOutcome::Fail {
                                    inputs: __pt_inputs,
                                    msg: e.message().to_owned(),
                                }
                            }
                        }
                        ::std::result::Result::Err(p) => {
                            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                                (*s).to_owned()
                            } else if let Some(s) =
                                p.downcast_ref::<::std::string::String>()
                            {
                                s.clone()
                            } else {
                                "test body panicked".to_owned()
                            };
                            $crate::runner::CaseOutcome::Fail { inputs: __pt_inputs, msg }
                        }
                    }
                },
            );
        }
        $crate::proptest! { $($rest)* }
    };
}
