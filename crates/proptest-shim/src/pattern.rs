//! Character-class string patterns: the `"[a-z]{0,6}"` subset of
//! proptest's regex string strategies.
//!
//! Grammar: a pattern is a sequence of units; each unit is a character
//! class `[...]` (literal characters and `x-y` ranges) or a literal
//! character, optionally followed by `{n}` or `{m,n}` repetition. That
//! covers every string strategy in this workspace's tests; anything
//! fancier panics loudly so the gap is obvious.

use crate::rng::TestRng;

struct Unit {
    choices: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

fn parse(pattern: &str) -> Vec<Unit> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let mut choices = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                        for c in lo..=hi {
                            choices.push(c);
                        }
                        i += 3;
                    } else {
                        choices.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
            }
            '{' | '}' | ']' => panic!("unsupported pattern syntax at {i} in {pattern:?}"),
            c => {
                choices.push(c);
                i += 1;
            }
        }
        let (mut min, mut max) = (1, 1);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            match spec.split_once(',') {
                Some((lo, hi)) => {
                    min = lo.trim().parse().expect("repetition lower bound");
                    max = hi.trim().parse().expect("repetition upper bound");
                }
                None => {
                    min = spec.trim().parse().expect("repetition count");
                    max = min;
                }
            }
            assert!(min <= max, "bad repetition {{{spec}}} in {pattern:?}");
            i = close + 1;
        }
        assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
        units.push(Unit { choices, min, max });
    }
    units
}

/// Generates a string matching the pattern.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for unit in parse(pattern) {
        let n = rng.usize_in(unit.min, unit.max + 1);
        for _ in 0..n {
            out.push(unit.choices[rng.index(unit.choices.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(5)
    }

    #[test]
    fn single_class_defaults_to_one_char() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("[a-c]", &mut r);
            assert_eq!(s.len(), 1);
            assert!(("a"..="c").contains(&s.as_str()));
        }
    }

    #[test]
    fn bounded_repetition() {
        let mut r = rng();
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let s = generate("[a-z]{0,6}", &mut r);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            lens.insert(s.len());
        }
        assert!(lens.len() > 3, "lengths should vary: {lens:?}");
    }

    #[test]
    fn printable_ascii_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ -~]{0,12}", &mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_count_and_literals() {
        let mut r = rng();
        let s = generate("x[0-9]{3}", &mut r);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x'));
        assert!(s[1..].chars().all(|c| c.is_ascii_digit()));
    }
}
