//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A `Vec` of values from an element strategy, with length drawn from a
/// half-open range.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.usize_in(self.size.start, self.size.end);
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}

/// A `BTreeMap` built from key and value strategies, with size drawn
/// from a half-open range. If the key space is too small to reach the
/// drawn size, a smaller map is produced (as many distinct keys as can
/// be found in a bounded number of attempts).
pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { keys, values, size }
}

/// The strategy returned by [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.usize_in(self.size.start, self.size.end);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 50 {
            attempts += 1;
            out.insert(self.keys.gen(rng), self.values.gen(rng));
        }
        out
    }
}

/// A `BTreeSet` built from an element strategy, with size drawn from a
/// half-open range (smaller if the element space is exhausted first).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.usize_in(self.size.start, self.size.end);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 20 + 50 {
            attempts += 1;
            out.insert(self.element.gen(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_follow_the_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(0i64..5, 0..10);
        for _ in 0..100 {
            let v = s.gen(&mut rng);
            assert!(v.len() < 10);
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn map_respects_reachable_sizes() {
        let mut rng = TestRng::from_seed(11);
        // Key space has only 3 elements; target sizes up to 3 are
        // reachable and the map never exceeds the requested bound.
        let s = btree_map("[a-c]", 0i64..100, 0..4);
        for _ in 0..100 {
            let m = s.gen(&mut rng);
            assert!(m.len() < 4);
            assert!(m.keys().all(|k| ["a", "b", "c"].contains(&k.as_str())));
        }
    }

    #[test]
    fn set_deduplicates() {
        let mut rng = TestRng::from_seed(11);
        let s = btree_set(0i64..3, 2..3);
        for _ in 0..50 {
            let set = s.gen(&mut rng);
            assert_eq!(set.len(), 2);
        }
    }
}
