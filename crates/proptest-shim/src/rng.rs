//! The deterministic generator behind every strategy.

/// A self-contained xoshiro256** generator. Each test case gets its own
//  instance seeded from the test's name and the case index, so every
/// case is reproducible in isolation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl TestRng {
    /// A generator seeded from a raw `u64`.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The generator for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        TestRng::from_seed(fnv1a(test_name.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform integer in `[low, high)` (as `i128`, covering every
    /// primitive integer type).
    pub fn int_in(&mut self, low: i128, high: i128) -> i128 {
        assert!(low < high, "empty range {low}..{high}");
        let span = (high - low) as u128;
        low + ((self.next_u64() as u128) % span) as i128
    }

    /// A uniform `usize` in `[low, high)`.
    pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
        self.int_in(low as i128, high as i128) as usize
    }

    /// A uniform index below `n`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index into empty choice set");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_case("t::x", 3);
        let mut b = TestRng::for_case("t::x", 3);
        let mut c = TestRng::for_case("t::x", 4);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn int_in_covers_negative_ranges() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = rng.int_in(-1000, 1000);
            assert!((-1000..1000).contains(&v));
        }
    }
}
