//! The per-test case loop driving [`proptest!`](crate::proptest) bodies.

use crate::rng::TestRng;

/// What one generated case did.
pub enum CaseOutcome {
    /// The body ran to completion with all assertions holding.
    Pass,
    /// A `prop_assume!` rejected the inputs; retry with fresh ones.
    Reject,
    /// An assertion failed or the body panicked.
    Fail {
        /// Debug rendering of the generated inputs.
        inputs: String,
        /// The failure message.
        msg: String,
    },
}

/// The number of passing cases each property must accumulate
/// (`PROPTEST_CASES` env var, default 256).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Runs `case` until [`case_count`] cases pass, panicking on the first
/// failure with the generated inputs (deterministically reproducible:
/// the seed is a pure function of `name` and the case index).
pub fn run(name: &str, mut case: impl FnMut(&mut TestRng) -> CaseOutcome) {
    let want = case_count();
    let reject_budget = want.saturating_mul(16) + 256;
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut idx = 0u64;
    while passed < want {
        let mut rng = TestRng::for_case(name, idx);
        match case(&mut rng) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "{name}: too many rejected cases ({rejected}) — \
                     weaken the prop_assume! or widen the generators"
                );
            }
            CaseOutcome::Fail { inputs, msg } => panic!(
                "property {name} failed at case #{idx} after {passed} passing cases\n\
                 inputs: {inputs}\n{msg}\n\
                 (offline proptest shim: no shrinking; seeds are deterministic, \
                 rerun reproduces this failure)"
            ),
        }
        idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_until_enough_cases_pass() {
        let mut calls = 0;
        run("runner::t1", |_| {
            calls += 1;
            CaseOutcome::Pass
        });
        assert_eq!(calls, case_count());
    }

    #[test]
    fn rejections_retry() {
        let mut calls = 0u32;
        run("runner::t2", |_| {
            calls += 1;
            if calls.is_multiple_of(2) {
                CaseOutcome::Reject
            } else {
                CaseOutcome::Pass
            }
        });
        assert!(calls > case_count());
    }

    #[test]
    #[should_panic(expected = "property runner::t3 failed")]
    fn failures_panic_with_inputs() {
        run("runner::t3", |_| CaseOutcome::Fail {
            inputs: "x = 3".to_owned(),
            msg: "boom".to_owned(),
        });
    }

    // The full macro surface, exercised end to end.
    crate::proptest! {
        #[test]
        fn macro_end_to_end(v in crate::collection::vec(0i64..10, 0..5), b in crate::strategy::any::<bool>()) {
            crate::prop_assert!(v.len() < 5);
            crate::prop_assert_eq!(b, b);
            crate::prop_assume!(v.len() != 4); // never true here, but exercises the path
        }
    }
}
