//! The [`Strategy`] trait and its combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::pattern;
use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the per-case generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        R: Strategy,
        F: Fn(Self::Value) -> R,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive structures: `self` is the leaf case, and
    /// `recurse` wraps a strategy for subtrees into a strategy for
    /// branches. `depth` bounds the nesting; the size hints are accepted
    /// for API compatibility but unused (collection strategies already
    /// carry their own size ranges).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        strat
    }

    /// Erases the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.gen(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, R, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;

    fn gen(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

/// Always generates clones of one value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn gen(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Chooses uniformly among type-erased alternatives (built by the
/// [`prop_oneof!`](crate::prop_oneof) macro).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; at least one arm is required.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn gen(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.arms.len());
        self.arms[i].gen(rng)
    }
}

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        char::from_u32(rng.int_in(0x20, 0x7f) as u32).unwrap_or('?')
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`, as in `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.int_in(self.start as i128, self.end as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.int_in(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// String generation from a character-class pattern such as
/// `"[a-z]{0,6}"` (the subset of proptest's regex strategies this
/// workspace uses).
impl Strategy for &'static str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0i64..6).gen(&mut r);
            assert!((0..6).contains(&v));
            let w = (-50i64..50).gen(&mut r);
            assert!((-50..50).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(s.gen(&mut r) % 2, 0);
        }
        let f = (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..5, n..n + 1));
        for _ in 0..50 {
            let v = f.gen(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(u.gen(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // the payload only exercises generation
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&strat.gen(&mut r)) <= 3);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c, d) = (0usize..8, 0usize..3, 0usize..64, any::<bool>()).gen(&mut r);
        assert!(a < 8 && b < 3 && c < 64);
        let _: bool = d;
    }
}
