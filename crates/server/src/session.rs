//! A per-connection session: the server-side request loop.
//!
//! # Epoch pinning
//!
//! Each session pins one [`Snapshot`] and serves every read from it —
//! lock-free, and **stable**: a client sees one consistent epoch
//! until something moves it forward. The pin advances only on the
//! session's *own* committed writes (read-your-writes) and on an
//! explicit `Refresh`; other sessions' commits never shift the view
//! mid-conversation. Read responses carry the pinned epoch so clients
//! (and the over-the-wire linearizability harness) can check epoch
//! coherence end to end.
//!
//! # Error discipline
//!
//! Database errors are typed and recoverable: the session answers
//! `Err{code}` and keeps serving. Protocol errors — a frame that does
//! not decode, a request before `Hello`, a version mismatch — answer
//! `Err` once and then close the connection: after a framing error
//! the byte stream can no longer be trusted.

use cdb_core::db::DbError;

use crate::handle::{PinnedView, ServeHandle};

use crate::admission::{Admission, Decision};
use crate::proto::{
    read_frame, write_frame, ErrCode, FrameError, Request, Response, PROTOCOL_VERSION,
};
use crate::transport::Transport;

/// Pre-resolved session instruments: one registry lookup per
/// connection, atomics per request.
#[derive(Debug)]
struct Instruments {
    total: cdb_obs::Counter,
    errors: cdb_obs::Counter,
    latency: cdb_obs::HistogramHandle,
    torn: cdb_obs::Counter,
    /// Time from arrival at the admission gate to a permit (or a shed
    /// answer) — `server.admission.wait_ns`.
    admission_wait: cdb_obs::HistogramHandle,
}

impl Instruments {
    fn resolve(m: &cdb_obs::Metrics) -> Instruments {
        Instruments {
            total: m.counter("server.req.total"),
            errors: m.counter("server.req.errors"),
            latency: m.histogram("server.req.latency_ns"),
            torn: m.counter("server.conn.torn"),
            admission_wait: m.histogram("server.admission.wait_ns"),
        }
    }
}

/// What a completed [`Session::serve_one`] means for the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Turn {
    /// The request was answered; keep serving.
    Continue,
    /// The connection is done (clean goodbye, EOF, torn stream, or a
    /// protocol error); stop serving.
    Closed,
}

/// One connection's server half. Generic over [`Transport`], so the
/// deterministic test harness and the TCP accept loop run the exact
/// same code.
pub struct Session<T: Transport> {
    transport: T,
    db: ServeHandle,
    admission: Admission,
    pinned: PinnedView,
    instr: Instruments,
    greeted: bool,
}

impl<T: Transport> Session<T> {
    /// Builds a session over a connected transport, pinned to the
    /// latest committed snapshot.
    pub fn new(transport: T, db: impl Into<ServeHandle>, admission: Admission) -> Session<T> {
        let db = db.into();
        let pinned = db.snapshot();
        let instr = Instruments::resolve(db.metrics());
        Session {
            transport,
            db,
            admission,
            pinned,
            instr,
            greeted: false,
        }
    }

    /// The snapshot this session currently serves reads from. The
    /// linearizability harness uses this to run the committed-prefix
    /// and epoch-coherence checkers against exactly what the client
    /// saw.
    pub fn pinned(&self) -> &PinnedView {
        &self.pinned
    }

    /// Serves requests until the connection closes.
    pub fn run(&mut self) {
        while self.serve_one() == Turn::Continue {}
    }

    /// Reads one frame, executes it, writes the response. Every
    /// protocol failure mode lands here: clean EOF and torn streams
    /// end the session; undecodable requests answer a typed protocol
    /// error and then end it.
    pub fn serve_one(&mut self) -> Turn {
        let payload = match read_frame(&mut self.transport) {
            Ok(Some(p)) => p,
            Ok(None) => return Turn::Closed,
            Err(FrameError::Torn) => {
                self.instr.torn.inc();
                return Turn::Closed;
            }
            Err(FrameError::Empty) | Err(FrameError::TooLarge(_)) => {
                self.refuse(ErrCode::Protocol, "bad frame length");
                return Turn::Closed;
            }
            Err(FrameError::Transport(_)) => return Turn::Closed,
        };
        let (req, trace) = match Request::decode_traced(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                self.refuse(ErrCode::Protocol, &e.to_string());
                return Turn::Closed;
            }
        };
        // Adopt the client's trace context (or root a fresh local
        // trace) for everything this request does: the "server.req"
        // span and every span below it down to the device sync carry
        // the wire id, so client- and server-side ring dumps merge
        // into one tree.
        let _trace = cdb_obs::adopt_trace(trace);
        let span = cdb_obs::SpanGuard::enter("server.req");
        self.instr.total.inc();
        let (resp, turn) = self.dispatch(req);
        self.instr.latency.observe(span.elapsed());
        if matches!(resp, Response::Err { .. }) {
            self.instr.errors.inc();
        }
        if write_frame(&mut self.transport, &resp.encode()).is_err() {
            return Turn::Closed;
        }
        turn
    }

    /// Executes one decoded request. Returns the response and whether
    /// the connection survives it.
    fn dispatch(&mut self, req: Request) -> (Response, Turn) {
        // The handshake gate: nothing before Hello, and Hello only
        // with a version we speak.
        if let Request::Hello { version, client: _ } = &req {
            if *version != PROTOCOL_VERSION {
                return (
                    Response::Err {
                        code: ErrCode::VersionMismatch,
                        msg: format!("server speaks v{PROTOCOL_VERSION}, client sent v{version}"),
                    },
                    Turn::Closed,
                );
            }
            self.greeted = true;
            return (
                Response::Hello {
                    version: PROTOCOL_VERSION,
                    server: self.pinned.name().to_string(),
                },
                Turn::Continue,
            );
        }
        if !self.greeted {
            return (
                Response::Err {
                    code: ErrCode::Protocol,
                    msg: "first request must be hello".to_string(),
                },
                Turn::Closed,
            );
        }
        match req {
            Request::Hello { .. } => unreachable!("handled above"),
            Request::Ping => (Response::Pong, Turn::Continue),
            Request::Close => (Response::Ok, Turn::Closed),
            Request::Epoch => (
                Response::Epoch {
                    epoch: self.pinned.epoch(),
                },
                Turn::Continue,
            ),
            Request::Stats => (
                Response::Stats {
                    json: cdb_obs::export::line_json(&self.db.metrics_snapshot()),
                },
                Turn::Continue,
            ),
            Request::TraceDump => (
                Response::Stats {
                    json: trace_dump_json(),
                },
                Turn::Continue,
            ),
            req => self.admitted(req),
        }
    }

    /// The admission-gated endpoints: everything that touches the
    /// database. The slot is taken *before* any database call and
    /// held (via the permit) until the work finishes, so a `Retry`
    /// answer proves the request never reached the WAL.
    fn admitted(&mut self, req: Request) -> (Response, Turn) {
        if req.is_write() && self.admission.is_draining() {
            return (
                Response::Err {
                    code: ErrCode::Shutdown,
                    msg: "server is draining; write refused".to_string(),
                },
                Turn::Continue,
            );
        }
        let wait = cdb_obs::SpanGuard::enter("server.admission");
        let decision = self.admission.try_begin();
        self.instr.admission_wait.observe(wait.elapsed());
        drop(wait);
        let _permit = match decision {
            Decision::Go(p) => p,
            Decision::Shed { after_hint_ms } => {
                return (Response::Retry { after_hint_ms }, Turn::Continue);
            }
        };
        let span = cdb_obs::SpanGuard::enter("server.req.endpoint");
        let endpoint = req.endpoint();
        let resp = self.execute(req);
        self.db
            .metrics()
            .histogram(&format!("server.req.{endpoint}.latency_ns"))
            .observe(span.elapsed());
        (resp, Turn::Continue)
    }

    fn execute(&mut self, req: Request) -> Response {
        match req {
            Request::Add {
                curator,
                time,
                key,
                fields,
            } => {
                let borrowed: Vec<(&str, cdb_model::Atom)> = fields
                    .iter()
                    .map(|(name, value)| (name.as_str(), value.clone()))
                    .collect();
                match self.db.add_entry(&curator, time, &key, &borrowed) {
                    Ok(id) => {
                        self.repin();
                        Response::Node {
                            id: id.index() as u64,
                        }
                    }
                    Err(e) => db_err(e),
                }
            }
            Request::Edit {
                curator,
                time,
                key,
                field,
                value,
            } => match self.db.edit_field(&curator, time, &key, &field, value) {
                Ok(()) => {
                    self.repin();
                    Response::Ok
                }
                Err(e) => db_err(e),
            },
            Request::Delete { curator, time, key } => {
                match self.db.delete_entry(&curator, time, &key) {
                    Ok(()) => {
                        self.repin();
                        Response::Ok
                    }
                    Err(e) => db_err(e),
                }
            }
            Request::Merge {
                curator,
                time,
                kept,
                absorbed,
            } => match self.db.merge_entries(&curator, time, &kept, &absorbed) {
                Ok(()) => {
                    self.repin();
                    Response::Ok
                }
                Err(e) => db_err(e),
            },
            Request::Annotate {
                key,
                field,
                author,
                text,
                time,
            } => match self
                .db
                .annotate(&key, field.as_deref(), &author, &text, time)
            {
                Ok(()) => {
                    self.repin();
                    Response::Ok
                }
                Err(e) => db_err(e),
            },
            Request::Publish { label } => match self.db.publish(label) {
                Ok(id) => {
                    self.repin();
                    Response::Version { id }
                }
                Err(e) => db_err(e),
            },
            Request::GetField { key, field } => match self.pinned.field(&key, &field) {
                Ok(value) => Response::Value {
                    epoch: self.pinned.epoch(),
                    value,
                },
                Err(e) => db_err(e),
            },
            Request::Entries => match self.pinned.entry_keys() {
                Ok(keys) => Response::Keys {
                    epoch: self.pinned.epoch(),
                    keys,
                },
                Err(e) => db_err(e),
            },
            Request::Refresh => {
                self.repin();
                Response::Epoch {
                    epoch: self.pinned.epoch(),
                }
            }
            Request::Hello { .. }
            | Request::Ping
            | Request::Close
            | Request::Epoch
            | Request::Stats
            | Request::TraceDump => unreachable!("routed before admission"),
        }
    }

    /// Advances the pin to the latest committed snapshot. Called after
    /// this session's own successful writes — the epoch can only move
    /// forward, so read-your-writes holds.
    fn repin(&mut self) {
        self.pinned = self.db.snapshot();
    }

    /// Sends a typed error; failures are moot because the connection
    /// is closing anyway.
    fn refuse(&mut self, code: ErrCode, msg: &str) {
        self.instr.errors.inc();
        let resp = Response::Err {
            code,
            msg: msg.to_string(),
        };
        let _ = write_frame(&mut self.transport, &resp.encode());
    }
}

/// The server's recent span events as line-JSON, sized to fit one
/// response frame: when the full ring dump would overflow [`MAX_FRAME`]
/// (many threads × deep rings), the *oldest* events are dropped first
/// — the client is reconstructing a trace it just ran, so recency
/// wins. Drops are visible in the `obs.ring.dropped` counter and in
/// the dump simply missing spans the merge reports as absent.
fn trace_dump_json() -> String {
    // Head-room for the response tag and the string length prefix.
    const BUDGET: usize = crate::proto::MAX_FRAME - 64;
    let mut events = cdb_obs::recent_events();
    loop {
        let json = cdb_obs::export::span_line_json(&events);
        if json.len() <= BUDGET || events.is_empty() {
            return json;
        }
        let drop = (events.len() / 4).max(1);
        events.drain(..drop);
    }
}

/// Maps a database error to its wire error class.
fn db_err(e: DbError) -> Response {
    let code = match &e {
        DbError::NoSuchEntry(_) => ErrCode::NoSuchEntry,
        DbError::NoSuchField(_, _) => ErrCode::NoSuchField,
        DbError::DuplicateEntry(_) => ErrCode::Duplicate,
        DbError::Lifecycle(_) => ErrCode::Lifecycle,
        DbError::Storage(_) => ErrCode::Storage,
        DbError::Tree(_) | DbError::Archive(_) => ErrCode::BadRequest,
    };
    Response::Err {
        code,
        msg: e.to_string(),
    }
}
