//! # cdb-server — the network serving layer
//!
//! The paper's curated-database setting (§1: a handful of curators,
//! "millions of users" reading the published versions) needs the
//! database on the other end of a wire. This crate serves a
//! [`SharedDb`](cdb_core::shared::SharedDb) over a length-prefixed
//! binary protocol:
//!
//! * [`proto`] — typed request/response frames on the same
//!   `cdb-curation::wire` codec the WAL uses, with a protocol version
//!   and typed error codes;
//! * [`transport`] — the connection byte stream behind a trait, with
//!   a real TCP implementation and a deterministic in-memory one
//!   whose fault plan reproduces torn frames, mid-request
//!   disconnects, and slow readers on demand;
//! * [`session`] — the per-connection request loop: reads pinned to a
//!   snapshot epoch, writes funneled through group commit;
//! * [`admission`] — a bounded slot pool that sheds excess load with
//!   a typed `Retry{after_hint}` instead of queueing without bound;
//! * [`server`] — the TCP accept loop, worker cap, and graceful
//!   drain;
//! * [`client`] — the typed client used by `cdbsh connect` and the
//!   test harnesses.
//!
//! Everything above the transport is transport-agnostic, so the
//! protocol-conformance, fault-injection, and linearizability suites
//! drive the *production* session code over in-memory pipes — no
//! sockets, no timing, no flakes — while `cdbsh connect` exercises
//! the same code over real TCP.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod client;
pub mod handle;
pub mod proto;
pub mod server;
pub mod session;
pub mod transport;

pub use admission::{Admission, Decision, Permit};
pub use client::{Client, ClientError};
pub use handle::{PinnedView, ServeHandle};
pub use proto::{ErrCode, FrameError, Request, Response, MAX_FRAME, PROTOCOL_VERSION};
pub use server::{DrainReport, Server, ServerConfig};
pub use session::{Session, Turn};
pub use transport::{
    mem_pair, mem_pair_with, Closer, MemFaultPlan, MemTransport, TcpTransport, Transport,
    TransportError,
};
