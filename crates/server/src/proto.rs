//! The request/response protocol: typed frames over a length-prefixed
//! binary encoding, built on the same `cdb-curation::wire` codec the
//! WAL uses (little-endian, length-prefixed strings, tagged enums).
//!
//! # Frame format
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 (LE)  | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts the payload only, must be nonzero, and is capped at
//! [`MAX_FRAME`] — a corrupt or hostile length field is rejected
//! before any allocation. The payload's first byte is the request (or
//! response) tag; the rest is that variant's fields in order. A frame
//! must decode to exactly one value: trailing bytes are a protocol
//! error, same as the WAL codec.
//!
//! # Trace context
//!
//! A request frame may carry one trailing u64 — a [`cdb_obs::TraceId`]
//! — after the request body ([`Request::encode_traced`] /
//! [`Request::decode_traced`]): the client's ambient trace id rides
//! the wire and the server adopts it for every span the request
//! produces, so one trace spans both processes and their ring dumps
//! merge by id (`cdb_obs::export::merge_span_dumps`). Absent trailing
//! bytes mean an untraced request; the encoding is therefore fully
//! backward compatible in both directions.
//!
//! # Versioning
//!
//! The first request on a connection must be [`Request::Hello`]
//! carrying [`PROTOCOL_VERSION`]; anything else — or a version the
//! server does not speak — is answered with a typed error and the
//! connection closes. Version negotiation is deliberately all-or-
//! nothing: the protocol is an internal surface, not a public API.

use cdb_curation::wire::{put_atom, put_str, put_u32, put_u64, Reader, WireError};
use cdb_model::Atom;

use crate::transport::{Transport, TransportError};

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// Maximum payload bytes in a single frame (1 MiB). Large enough for
/// any real request or stats dump; small enough that a corrupt length
/// field cannot drive allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// A failure while reading a frame off a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended in the middle of a frame (header or payload):
    /// the peer died or the bytes were cut. Distinct from a clean EOF
    /// at a frame boundary, which is a normal disconnect.
    Torn,
    /// The length field was zero — no valid frame is empty.
    Empty,
    /// The length field exceeded [`MAX_FRAME`].
    TooLarge(u32),
    /// The transport itself failed.
    Transport(TransportError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn => write!(f, "stream ended mid-frame"),
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            FrameError::Transport(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: length prefix and payload in a single
/// `write_all` so a concurrent closer can tear the frame but never
/// interleave it.
pub fn write_frame(t: &mut dyn Transport, payload: &[u8]) -> Result<(), TransportError> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME);
    let mut framed = Vec::with_capacity(4 + payload.len());
    put_u32(&mut framed, payload.len() as u32);
    framed.extend_from_slice(payload);
    t.write_all(&framed)
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (EOF exactly
/// at a frame boundary); [`FrameError::Torn`] is EOF anywhere else.
/// Handles transports that return one byte per read.
pub fn read_frame(t: &mut dyn Transport) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    match read_exact(t, &mut header)? {
        ReadOutcome::Full => {}
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::TornEof => return Err(FrameError::Torn),
    }
    let len = u32::from_le_bytes(header);
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len as usize > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact(t, &mut payload)? {
        ReadOutcome::Full => Ok(Some(payload)),
        ReadOutcome::CleanEof | ReadOutcome::TornEof => Err(FrameError::Torn),
    }
}

enum ReadOutcome {
    Full,
    /// EOF before the first byte of this read.
    CleanEof,
    /// EOF after at least one byte of this read.
    TornEof,
}

fn read_exact(t: &mut dyn Transport, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match t.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::TornEof
                });
            }
            Ok(n) => filled += n,
            // A force-closed connection reads as a torn stream if we
            // were mid-frame, clean EOF otherwise.
            Err(TransportError::Closed) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::TornEof
                });
            }
            Err(e) => return Err(FrameError::Transport(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

// -------------------------------------------------------- requests

/// A client request. Tags are the wire encoding's first payload byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Mandatory first request: protocol version and a client name
    /// (for logs and metrics; not trusted for anything).
    Hello {
        /// The protocol version the client speaks.
        version: u32,
        /// Free-form client identification.
        client: String,
    },
    /// Liveness probe; answered with [`Response::Pong`] even while
    /// draining.
    Ping,
    /// Add a freshly-authored entry (`SharedDb::add_entry`).
    Add {
        /// Acting curator.
        curator: String,
        /// Curation timestamp.
        time: u64,
        /// Entry key.
        key: String,
        /// Initial fields.
        fields: Vec<(String, Atom)>,
    },
    /// Edit (or add) one field (`SharedDb::edit_field`).
    Edit {
        /// Acting curator.
        curator: String,
        /// Curation timestamp.
        time: u64,
        /// Entry key.
        key: String,
        /// Field name.
        field: String,
        /// New value.
        value: Atom,
    },
    /// Delete an entry (`SharedDb::delete_entry`).
    Delete {
        /// Acting curator.
        curator: String,
        /// Curation timestamp.
        time: u64,
        /// Entry key.
        key: String,
    },
    /// Fuse two entries (`SharedDb::merge_entries`).
    Merge {
        /// Acting curator.
        curator: String,
        /// Curation timestamp.
        time: u64,
        /// Key of the surviving entry.
        kept: String,
        /// Key of the entry absorbed into it.
        absorbed: String,
    },
    /// Attach a superimposed annotation (`SharedDb::annotate`).
    Annotate {
        /// Entry key.
        key: String,
        /// Field to annotate, or the whole entry when absent.
        field: Option<String>,
        /// Annotation author.
        author: String,
        /// Annotation text.
        text: String,
        /// Annotation timestamp.
        time: u64,
    },
    /// Publish the current state as an archived version
    /// (`SharedDb::publish`).
    Publish {
        /// Version label.
        label: String,
    },
    /// Read one field from the session's pinned snapshot.
    GetField {
        /// Entry key.
        key: String,
        /// Field name.
        field: String,
    },
    /// List entry keys from the session's pinned snapshot.
    Entries,
    /// Re-pin the session to the latest committed snapshot; answers
    /// with the new epoch.
    Refresh,
    /// The session's currently pinned epoch.
    Epoch,
    /// A line-JSON metrics dump (server and database instruments).
    Stats,
    /// Orderly goodbye; the server acknowledges and closes.
    Close,
    /// A line-JSON dump of the server's recent span events (the
    /// per-thread trace rings), for client-side span-tree merging.
    TraceDump,
}

impl Request {
    /// Stable endpoint name, used for per-endpoint metrics.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Ping => "ping",
            Request::Add { .. } => "add",
            Request::Edit { .. } => "edit",
            Request::Delete { .. } => "delete",
            Request::Merge { .. } => "merge",
            Request::Annotate { .. } => "annotate",
            Request::Publish { .. } => "publish",
            Request::GetField { .. } => "get_field",
            Request::Entries => "entries",
            Request::Refresh => "refresh",
            Request::Epoch => "epoch",
            Request::Stats => "stats",
            Request::Close => "close",
            Request::TraceDump => "trace_dump",
        }
    }

    /// True for requests that mutate the database (and therefore must
    /// be refused while draining and must pass admission).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Add { .. }
                | Request::Edit { .. }
                | Request::Delete { .. }
                | Request::Merge { .. }
                | Request::Annotate { .. }
                | Request::Publish { .. }
        )
    }

    /// Encodes to a frame payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Request::Hello { version, client } => {
                b.push(0);
                put_u32(&mut b, *version);
                put_str(&mut b, client);
            }
            Request::Ping => b.push(1),
            Request::Add {
                curator,
                time,
                key,
                fields,
            } => {
                b.push(2);
                put_str(&mut b, curator);
                put_u64(&mut b, *time);
                put_str(&mut b, key);
                put_u32(&mut b, fields.len() as u32);
                for (name, value) in fields {
                    put_str(&mut b, name);
                    put_atom(&mut b, value);
                }
            }
            Request::Edit {
                curator,
                time,
                key,
                field,
                value,
            } => {
                b.push(3);
                put_str(&mut b, curator);
                put_u64(&mut b, *time);
                put_str(&mut b, key);
                put_str(&mut b, field);
                put_atom(&mut b, value);
            }
            Request::Delete { curator, time, key } => {
                b.push(4);
                put_str(&mut b, curator);
                put_u64(&mut b, *time);
                put_str(&mut b, key);
            }
            Request::Merge {
                curator,
                time,
                kept,
                absorbed,
            } => {
                b.push(5);
                put_str(&mut b, curator);
                put_u64(&mut b, *time);
                put_str(&mut b, kept);
                put_str(&mut b, absorbed);
            }
            Request::Annotate {
                key,
                field,
                author,
                text,
                time,
            } => {
                b.push(6);
                put_str(&mut b, key);
                match field {
                    None => b.push(0),
                    Some(f) => {
                        b.push(1);
                        put_str(&mut b, f);
                    }
                }
                put_str(&mut b, author);
                put_str(&mut b, text);
                put_u64(&mut b, *time);
            }
            Request::Publish { label } => {
                b.push(7);
                put_str(&mut b, label);
            }
            Request::GetField { key, field } => {
                b.push(8);
                put_str(&mut b, key);
                put_str(&mut b, field);
            }
            Request::Entries => b.push(9),
            Request::Refresh => b.push(10),
            Request::Epoch => b.push(11),
            Request::Stats => b.push(12),
            Request::Close => b.push(13),
            Request::TraceDump => b.push(14),
        }
        b
    }

    /// [`Request::encode`] plus a trailing trace-context word: when
    /// `trace` is nonzero its 8 bytes (u64 LE) follow the request
    /// body, and the server adopts that id for every span the request
    /// produces — one trace across both processes. A zero trace
    /// encodes identically to the untraced form, so untraced clients
    /// and traced servers (and vice versa) interoperate unchanged.
    pub fn encode_traced(&self, trace: cdb_obs::TraceId) -> Vec<u8> {
        let mut b = self.encode();
        if trace.0 != 0 {
            put_u64(&mut b, trace.0);
        }
        b
    }

    /// Decodes a frame payload. The whole payload must be consumed.
    pub fn decode(bytes: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(bytes);
        let req = Self::decode_body(&mut r)?;
        r.finish()?;
        Ok(req)
    }

    /// Decodes a frame payload that may carry a trailing trace-context
    /// word (see [`Request::encode_traced`]): exactly 8 bytes left
    /// after the request body are the trace id; zero bytes left means
    /// an untraced request (`TraceId(0)`); anything else is a protocol
    /// error, as in [`Request::decode`].
    pub fn decode_traced(bytes: &[u8]) -> Result<(Request, cdb_obs::TraceId), WireError> {
        let mut r = Reader::new(bytes);
        let req = Self::decode_body(&mut r)?;
        let trace = if r.remaining() == 8 {
            cdb_obs::TraceId(r.u64()?)
        } else {
            cdb_obs::TraceId(0)
        };
        r.finish()?;
        Ok((req, trace))
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Request, WireError> {
        let req = match r.u8()? {
            0 => Request::Hello {
                version: r.u32()?,
                client: r.str()?,
            },
            1 => Request::Ping,
            2 => {
                let curator = r.str()?;
                let time = r.u64()?;
                let key = r.str()?;
                // Each field is at least 5 bytes: empty name (4) plus
                // an atom tag (1).
                let n = r.seq_len(5)?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?;
                    let value = r.atom()?;
                    fields.push((name, value));
                }
                Request::Add {
                    curator,
                    time,
                    key,
                    fields,
                }
            }
            3 => Request::Edit {
                curator: r.str()?,
                time: r.u64()?,
                key: r.str()?,
                field: r.str()?,
                value: r.atom()?,
            },
            4 => Request::Delete {
                curator: r.str()?,
                time: r.u64()?,
                key: r.str()?,
            },
            5 => Request::Merge {
                curator: r.str()?,
                time: r.u64()?,
                kept: r.str()?,
                absorbed: r.str()?,
            },
            6 => Request::Annotate {
                key: r.str()?,
                field: match r.u8()? {
                    0 => None,
                    1 => Some(r.str()?),
                    t => return Err(WireError::BadTag("optional field", t)),
                },
                author: r.str()?,
                text: r.str()?,
                time: r.u64()?,
            },
            7 => Request::Publish { label: r.str()? },
            8 => Request::GetField {
                key: r.str()?,
                field: r.str()?,
            },
            9 => Request::Entries,
            10 => Request::Refresh,
            11 => Request::Epoch,
            12 => Request::Stats,
            13 => Request::Close,
            14 => Request::TraceDump,
            t => return Err(WireError::BadTag("request", t)),
        };
        Ok(req)
    }
}

// ------------------------------------------------------- responses

/// A typed error class, carried by [`Response::Err`]. Maps one-to-one
/// from `DbError` plus the server-side failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// The bytes on the wire were not a valid frame or request.
    Protocol = 0,
    /// The request was well-formed but invalid in context (e.g. a
    /// request before `Hello`).
    BadRequest = 1,
    /// No entry with the given key.
    NoSuchEntry = 2,
    /// No such field on the entry.
    NoSuchField = 3,
    /// An entry with this key already exists.
    Duplicate = 4,
    /// An entry-lifecycle rule was violated.
    Lifecycle = 5,
    /// The durability layer failed; the write may not be durable.
    Storage = 6,
    /// The server is draining; writes are refused.
    Shutdown = 7,
    /// The client's protocol version is not spoken here.
    VersionMismatch = 8,
    /// A server-side invariant failure.
    Internal = 9,
}

impl ErrCode {
    fn from_tag(t: u8) -> Result<ErrCode, WireError> {
        Ok(match t {
            0 => ErrCode::Protocol,
            1 => ErrCode::BadRequest,
            2 => ErrCode::NoSuchEntry,
            3 => ErrCode::NoSuchField,
            4 => ErrCode::Duplicate,
            5 => ErrCode::Lifecycle,
            6 => ErrCode::Storage,
            7 => ErrCode::Shutdown,
            8 => ErrCode::VersionMismatch,
            9 => ErrCode::Internal,
            t => return Err(WireError::BadTag("error code", t)),
        })
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrCode::Protocol => "protocol",
            ErrCode::BadRequest => "bad-request",
            ErrCode::NoSuchEntry => "no-such-entry",
            ErrCode::NoSuchField => "no-such-field",
            ErrCode::Duplicate => "duplicate",
            ErrCode::Lifecycle => "lifecycle",
            ErrCode::Storage => "storage",
            ErrCode::Shutdown => "shutdown",
            ErrCode::VersionMismatch => "version-mismatch",
            ErrCode::Internal => "internal",
        };
        write!(f, "{name}")
    }
}

/// A server response. Read responses carry the epoch they were served
/// from, so clients can check epoch coherence end to end.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake acknowledgement.
    Hello {
        /// The protocol version the server speaks.
        version: u32,
        /// The database name being served.
        server: String,
    },
    /// Liveness answer.
    Pong,
    /// The write (or close) succeeded; for writes this means the
    /// commit is durable per the `SharedDb` ack rule.
    Ok,
    /// An `add` succeeded; carries the new entry's node id.
    Node {
        /// The entry's tree node id.
        id: u64,
    },
    /// A field value, as of `epoch`.
    Value {
        /// Snapshot epoch the read was served from.
        epoch: u64,
        /// The field's value.
        value: Atom,
    },
    /// The entry-key listing, as of `epoch`.
    Keys {
        /// Snapshot epoch the read was served from.
        epoch: u64,
        /// Entry keys in tree order.
        keys: Vec<String>,
    },
    /// An epoch answer (`Refresh`, `Epoch`).
    Epoch {
        /// The session's pinned epoch.
        epoch: u64,
    },
    /// A publish succeeded; carries the archived version id.
    Version {
        /// The archive version number.
        id: u32,
    },
    /// A line-JSON metrics dump.
    Stats {
        /// One JSON object per line, as `cdb_obs::export::line_json`.
        json: String,
    },
    /// The request failed with a typed error.
    Err {
        /// The error class.
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
    /// The server is at capacity: try again after the hint. The
    /// request was not executed and left no trace in the WAL.
    Retry {
        /// Suggested client backoff in milliseconds.
        after_hint_ms: u32,
    },
}

impl Response {
    /// Encodes to a frame payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Response::Hello { version, server } => {
                b.push(0);
                put_u32(&mut b, *version);
                put_str(&mut b, server);
            }
            Response::Pong => b.push(1),
            Response::Ok => b.push(2),
            Response::Node { id } => {
                b.push(3);
                put_u64(&mut b, *id);
            }
            Response::Value { epoch, value } => {
                b.push(4);
                put_u64(&mut b, *epoch);
                put_atom(&mut b, value);
            }
            Response::Keys { epoch, keys } => {
                b.push(5);
                put_u64(&mut b, *epoch);
                put_u32(&mut b, keys.len() as u32);
                for k in keys {
                    put_str(&mut b, k);
                }
            }
            Response::Epoch { epoch } => {
                b.push(6);
                put_u64(&mut b, *epoch);
            }
            Response::Version { id } => {
                b.push(7);
                put_u32(&mut b, *id);
            }
            Response::Stats { json } => {
                b.push(8);
                put_str(&mut b, json);
            }
            Response::Err { code, msg } => {
                b.push(9);
                b.push(*code as u8);
                put_str(&mut b, msg);
            }
            Response::Retry { after_hint_ms } => {
                b.push(10);
                put_u32(&mut b, *after_hint_ms);
            }
        }
        b
    }

    /// Decodes a frame payload. The whole payload must be consumed.
    pub fn decode(bytes: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(bytes);
        let resp = match r.u8()? {
            0 => Response::Hello {
                version: r.u32()?,
                server: r.str()?,
            },
            1 => Response::Pong,
            2 => Response::Ok,
            3 => Response::Node { id: r.u64()? },
            4 => Response::Value {
                epoch: r.u64()?,
                value: r.atom()?,
            },
            5 => {
                let epoch = r.u64()?;
                // Each key is at least 4 bytes (an empty string's
                // length prefix).
                let n = r.seq_len(4)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(r.str()?);
                }
                Response::Keys { epoch, keys }
            }
            6 => Response::Epoch { epoch: r.u64()? },
            7 => Response::Version { id: r.u32()? },
            8 => Response::Stats { json: r.str()? },
            9 => Response::Err {
                code: ErrCode::from_tag(r.u8()?)?,
                msg: r.str()?,
            },
            10 => Response::Retry {
                after_hint_ms: r.u32()?,
            },
            t => return Err(WireError::BadTag("response", t)),
        };
        r.finish()?;
        Ok(resp)
    }
}
