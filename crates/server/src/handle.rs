//! The serving handle: one session/server code path over either a
//! single [`SharedDb`] or a range-sharded [`ShardedDb`].
//!
//! The session loop is deliberately ignorant of sharding: it calls the
//! same op surface either way, and [`ServeHandle`] routes. The pinned
//! read view is likewise an enum — for a sharded database the pin is a
//! [`ShardedSnapshot`] (cross-shard coherent, see
//! [`cdb_core::sharded`]), and its epoch is the *sum* of per-shard
//! epochs, which is monotone under the same commit-order guarantees the
//! single-shard epoch has, so the wire protocol's epoch-coherence
//! contract carries over unchanged.

use cdb_core::archive::VersionId;
use cdb_core::db::DbError;
use cdb_core::sharded::{ShardedDb, ShardedSnapshot};
use cdb_core::shared::{SharedDb, Snapshot};
use cdb_model::Atom;

/// A database the server can serve: single or sharded.
#[derive(Debug, Clone)]
pub enum ServeHandle {
    /// One `SharedDb` behind one WAL.
    Single(SharedDb),
    /// A range-sharded database; writes route by key, cross-shard
    /// merges run 2PC.
    Sharded(ShardedDb),
}

impl From<SharedDb> for ServeHandle {
    fn from(db: SharedDb) -> Self {
        ServeHandle::Single(db)
    }
}

impl From<ShardedDb> for ServeHandle {
    fn from(db: ShardedDb) -> Self {
        ServeHandle::Sharded(db)
    }
}

impl ServeHandle {
    /// The metric registry server instruments live in.
    pub fn metrics(&self) -> &cdb_obs::Metrics {
        match self {
            ServeHandle::Single(db) => db.metrics(),
            ServeHandle::Sharded(db) => db.metrics(),
        }
    }

    /// Every metric the handle can see, merged (for `Stats`).
    pub fn metrics_snapshot(&self) -> cdb_obs::MetricsSnapshot {
        match self {
            ServeHandle::Single(db) => db.metrics_snapshot(),
            ServeHandle::Sharded(db) => db.metrics_snapshot(),
        }
    }

    /// A coherent read view of the latest committed state.
    pub fn snapshot(&self) -> PinnedView {
        match self {
            ServeHandle::Single(db) => PinnedView::Single(db.snapshot()),
            ServeHandle::Sharded(db) => PinnedView::Sharded(db.snapshot()),
        }
    }

    /// Adds an entry (routed by key when sharded).
    pub fn add_entry(
        &self,
        curator: &str,
        time: u64,
        key: &str,
        fields: &[(&str, Atom)],
    ) -> Result<cdb_curation::NodeId, DbError> {
        match self {
            ServeHandle::Single(db) => db.add_entry(curator, time, key, fields),
            ServeHandle::Sharded(db) => db.add_entry(curator, time, key, fields),
        }
    }

    /// Edits (or adds) a field.
    pub fn edit_field(
        &self,
        curator: &str,
        time: u64,
        key: &str,
        field: &str,
        value: Atom,
    ) -> Result<(), DbError> {
        match self {
            ServeHandle::Single(db) => db.edit_field(curator, time, key, field, value),
            ServeHandle::Sharded(db) => db.edit_field(curator, time, key, field, value),
        }
    }

    /// Deletes an entry.
    pub fn delete_entry(&self, curator: &str, time: u64, key: &str) -> Result<(), DbError> {
        match self {
            ServeHandle::Single(db) => db.delete_entry(curator, time, key),
            ServeHandle::Sharded(db) => db.delete_entry(curator, time, key),
        }
    }

    /// Fuses two entries — a cross-shard 2PC transaction when the keys
    /// route to different shards.
    pub fn merge_entries(
        &self,
        curator: &str,
        time: u64,
        kept: &str,
        absorbed: &str,
    ) -> Result<(), DbError> {
        match self {
            ServeHandle::Single(db) => db.merge_entries(curator, time, kept, absorbed),
            ServeHandle::Sharded(db) => db.merge_entries(curator, time, kept, absorbed),
        }
    }

    /// Attaches a superimposed annotation.
    pub fn annotate(
        &self,
        key: &str,
        field: Option<&str>,
        author: &str,
        text: &str,
        time: u64,
    ) -> Result<(), DbError> {
        match self {
            ServeHandle::Single(db) => db.annotate(key, field, author, text, time),
            ServeHandle::Sharded(db) => db.annotate(key, field, author, text, time),
        }
    }

    /// Publishes a new archived version. A sharded database publishes
    /// per shard (non-atomic fan-out) and reports shard 0's version id
    /// over the wire.
    pub fn publish(&self, label: String) -> Result<VersionId, DbError> {
        match self {
            ServeHandle::Single(db) => db.publish(label),
            ServeHandle::Sharded(db) => {
                let ids = db.publish(label)?;
                Ok(ids[0])
            }
        }
    }
}

/// A session's pinned read view: one epoch of one database, single or
/// sharded.
#[derive(Debug, Clone)]
pub enum PinnedView {
    /// A single-database snapshot.
    Single(Snapshot),
    /// A cross-shard-coherent sharded snapshot.
    Sharded(ShardedSnapshot),
}

impl PinnedView {
    /// The pinned commit epoch (sharded: sum of per-shard epochs —
    /// monotone across pins).
    pub fn epoch(&self) -> u64 {
        match self {
            PinnedView::Single(s) => s.epoch(),
            PinnedView::Sharded(s) => s.epoch(),
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        match self {
            PinnedView::Single(s) => s.name(),
            PinnedView::Sharded(s) => s.shard(0).name(),
        }
    }

    /// Reads a field of an entry.
    pub fn field(&self, key: &str, field: &str) -> Result<Atom, DbError> {
        match self {
            PinnedView::Single(s) => s.field(key, field),
            PinnedView::Sharded(s) => s.field(key, field),
        }
    }

    /// The keys of all current entries.
    pub fn entry_keys(&self) -> Result<Vec<String>, DbError> {
        match self {
            PinnedView::Single(s) => s.entry_keys(),
            PinnedView::Sharded(s) => s.entry_keys(),
        }
    }

    /// The single-database snapshot, when this view is one (test
    /// harnesses that inspect the pin directly).
    pub fn as_single(&self) -> Option<&Snapshot> {
        match self {
            PinnedView::Single(s) => Some(s),
            PinnedView::Sharded(_) => None,
        }
    }

    /// The sharded snapshot, when this view is one.
    pub fn as_sharded(&self) -> Option<&ShardedSnapshot> {
        match self {
            PinnedView::Single(_) => None,
            PinnedView::Sharded(s) => Some(s),
        }
    }
}
