//! Connection transport, factored behind a trait so the entire server
//! stack — framing, sessions, admission control — runs identically
//! over a real TCP socket and over a deterministic in-memory pipe.
//!
//! The in-memory pipe carries a [`MemFaultPlan`] that reproduces the
//! network's awkward cases on demand and byte-exactly: a peer that
//! disconnects after delivering `n` bytes (torn frame, mid-request
//! disconnect), and a slow reader whose `read` calls return one byte
//! at a time (exercising every resumption point in the frame reader).
//! Tests drive these without sockets, timeouts, or flakiness.

use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

/// A transport-level failure. Distinct from protocol errors: the
/// connection itself broke, not the bytes on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer (or a [`Closer`]) closed the connection; no more bytes
    /// can be written.
    Closed,
    /// An I/O error from the underlying socket.
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Io(m) => write!(f, "transport i/o: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Force-closes a transport from another thread, unblocking any read
/// parked on it. The server's drain path holds one closer per live
/// session so shutdown never waits on an idle client.
pub trait Closer: Send + Sync {
    /// Closes the connection in both directions. Idempotent.
    fn close(&self);
}

/// A bidirectional, blocking byte stream. `read` returning `Ok(0)`
/// means end-of-stream (the peer closed cleanly or the plan cut it).
pub trait Transport: Send {
    /// Reads up to `buf.len()` bytes, blocking until at least one byte
    /// is available or the stream ends (`Ok(0)`).
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, TransportError>;
    /// Writes the whole buffer or fails.
    fn write_all(&mut self, buf: &[u8]) -> Result<(), TransportError>;
    /// A handle that can force-close this connection from elsewhere.
    fn closer(&self) -> Box<dyn Closer>;
}

// ------------------------------------------------------------ TCP

/// The real-network transport: a connected [`TcpStream`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    /// A second handle to the same socket, cloned up front so
    /// [`Transport::closer`] never has to fail.
    shutdown: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream. Clones the handle once for the
    /// closer; a socket that cannot be cloned cannot be served.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        let shutdown = stream.try_clone()?;
        Ok(TcpTransport { stream, shutdown })
    }

    /// Connects to `addr` (e.g. `"127.0.0.1:7070"`).
    pub fn dial(addr: &str) -> std::io::Result<Self> {
        TcpTransport::new(TcpStream::connect(addr)?)
    }
}

fn io_err(e: std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe
        | std::io::ErrorKind::NotConnected => TransportError::Closed,
        _ => TransportError::Io(e.to_string()),
    }
}

impl Transport for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        self.stream.read(buf).map_err(io_err)
    }

    fn write_all(&mut self, buf: &[u8]) -> Result<(), TransportError> {
        self.stream.write_all(buf).map_err(io_err)
    }

    fn closer(&self) -> Box<dyn Closer> {
        let clone = self
            .shutdown
            .try_clone()
            .expect("cloning an already-cloned TcpStream handle");
        Box::new(TcpCloser(clone))
    }
}

struct TcpCloser(TcpStream);

impl Closer for TcpCloser {
    fn close(&self) {
        // Errors mean the socket is already gone — exactly what a
        // closer wants.
        let _ = self.0.shutdown(Shutdown::Both);
    }
}

// ------------------------------------------------- in-memory pipes

/// Faults injected into one direction of an in-memory connection.
/// All fields default to "behave normally".
#[derive(Debug, Clone, Copy, Default)]
pub struct MemFaultPlan {
    /// Deliver only this many bytes, then close the stream: the
    /// receiver sees exactly `cut_after` bytes followed by EOF. Cutting
    /// inside a frame produces a torn frame; cutting between the
    /// header and body of a request models a mid-request disconnect.
    pub cut_after: Option<usize>,
    /// Deliver at most this many bytes per `read` call (a slow or
    /// adversarial peer). A frame reader that assumes one `read`
    /// returns one frame breaks immediately under `Some(1)`.
    pub read_chunk: Option<usize>,
}

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
    /// Total bytes accepted into the pipe since creation (the
    /// `cut_after` budget counts deliveries, not reads).
    delivered: usize,
    plan: MemFaultPlan,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

impl Pipe {
    fn with_plan(plan: MemFaultPlan) -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                plan,
                ..PipeState::default()
            }),
            cv: Condvar::new(),
        })
    }

    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        let mut st = self.state.lock().expect("pipe lock poisoned");
        if st.closed {
            return Err(TransportError::Closed);
        }
        let budget = match st.plan.cut_after {
            Some(cap) => cap.saturating_sub(st.delivered),
            None => usize::MAX,
        };
        let take = bytes.len().min(budget);
        st.buf.extend(&bytes[..take]);
        st.delivered += take;
        if take < bytes.len() {
            // The cut point: everything past it is lost and the
            // stream ends, exactly like a peer whose connection died
            // mid-write.
            st.closed = true;
        }
        self.cv.notify_all();
        if take < bytes.len() {
            return Err(TransportError::Closed);
        }
        Ok(())
    }

    fn read(&self, buf: &mut [u8]) -> Result<usize, TransportError> {
        let mut st = self.state.lock().expect("pipe lock poisoned");
        while st.buf.is_empty() && !st.closed {
            st = self.cv.wait(st).expect("pipe lock poisoned");
        }
        if st.buf.is_empty() {
            return Ok(0); // closed and drained: EOF
        }
        let cap = match st.plan.read_chunk {
            Some(k) => buf.len().min(k.max(1)),
            None => buf.len(),
        };
        let mut n = 0;
        while n < cap {
            match st.buf.pop_front() {
                Some(b) => {
                    buf[n] = b;
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("pipe lock poisoned");
        st.closed = true;
        self.cv.notify_all();
    }
}

/// One end of a deterministic in-memory connection. Create pairs with
/// [`mem_pair`] or [`mem_pair_with`].
pub struct MemTransport {
    incoming: Arc<Pipe>,
    outgoing: Arc<Pipe>,
}

impl fmt::Debug for MemTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemTransport")
    }
}

impl MemTransport {
    /// Closes the outgoing direction only — the peer reads the bytes
    /// already delivered, then EOF — like TCP `shutdown(Write)`. The
    /// incoming direction stays open, so responses still flow back.
    pub fn shutdown_write(&self) {
        self.outgoing.close();
    }
}

impl Drop for MemTransport {
    /// Dropping an end hangs up the whole connection, like a socket:
    /// the peer's blocked reads return EOF instead of waiting forever.
    fn drop(&mut self) {
        self.incoming.close();
        self.outgoing.close();
    }
}

/// A fault-free in-memory connection pair `(client, server)`.
pub fn mem_pair() -> (MemTransport, MemTransport) {
    mem_pair_with(MemFaultPlan::default())
}

/// An in-memory connection pair with `plan` installed on the
/// client→server direction (the direction tests corrupt). The
/// server→client direction is fault-free.
pub fn mem_pair_with(plan: MemFaultPlan) -> (MemTransport, MemTransport) {
    let c2s = Pipe::with_plan(plan);
    let s2c = Pipe::with_plan(MemFaultPlan::default());
    let client = MemTransport {
        incoming: s2c.clone(),
        outgoing: c2s.clone(),
    };
    let server = MemTransport {
        incoming: c2s,
        outgoing: s2c,
    };
    (client, server)
}

impl Transport for MemTransport {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        self.incoming.read(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> Result<(), TransportError> {
        self.outgoing.write_all(buf)
    }

    fn closer(&self) -> Box<dyn Closer> {
        Box::new(MemCloser {
            incoming: self.incoming.clone(),
            outgoing: self.outgoing.clone(),
        })
    }
}

struct MemCloser {
    incoming: Arc<Pipe>,
    outgoing: Arc<Pipe>,
}

impl Closer for MemCloser {
    fn close(&self) {
        self.incoming.close();
        self.outgoing.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_round_trips() {
        let (mut c, mut s) = mem_pair();
        c.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        s.write_all(b"ok").unwrap();
        assert_eq!(c.read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn cut_after_truncates_and_closes() {
        let (mut c, mut s) = mem_pair_with(MemFaultPlan {
            cut_after: Some(3),
            ..MemFaultPlan::default()
        });
        assert_eq!(c.write_all(b"abcdef"), Err(TransportError::Closed));
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"abc");
        assert_eq!(s.read(&mut buf).unwrap(), 0); // EOF, not a hang
    }

    #[test]
    fn read_chunk_drips_bytes() {
        let (mut c, mut s) = mem_pair_with(MemFaultPlan {
            read_chunk: Some(1),
            ..MemFaultPlan::default()
        });
        c.write_all(b"xyz").unwrap();
        let mut buf = [0u8; 16];
        for expect in b"xyz" {
            assert_eq!(s.read(&mut buf).unwrap(), 1);
            assert_eq!(buf[0], *expect);
        }
    }

    #[test]
    fn closer_unblocks_reader() {
        let (c, mut s) = mem_pair();
        let closer = s.closer();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            s.read(&mut buf)
        });
        // Give the reader a moment to park, then force-close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        closer.close();
        assert_eq!(t.join().unwrap().unwrap(), 0);
        drop(c);
    }
}
