//! Admission control: a fixed pool of request slots shared by every
//! session. A request either takes a slot (a [`Permit`], released on
//! drop) or is shed with a typed retry hint — never queued without
//! bound, never silently dropped.
//!
//! The state machine a request runs through:
//!
//! ```text
//!            try_begin
//!   arrive ───────────┬── slot free ──────────→ Go(Permit) ── drop → slot freed
//!                     ├── all slots busy ─────→ Shed { after_hint_ms }
//!                     └── (writes, draining) → refused upstream by the
//!                                              session with Err{Shutdown}
//! ```
//!
//! Shedding happens *before* the request touches the database, so a
//! shed request leaves no WAL frames, no snapshot, no partial state —
//! the admission tests assert exactly this by watching the WAL length.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default retry hint handed to shed clients, in milliseconds: about
/// one device sync plus scheduling slack at current commodity-SSD
/// latencies.
pub const DEFAULT_RETRY_HINT_MS: u32 = 25;

#[derive(Debug)]
struct AdmissionInner {
    slots: usize,
    active: AtomicUsize,
    draining: AtomicBool,
    after_hint_ms: u32,
    shed: cdb_obs::Counter,
    depth: cdb_obs::Gauge,
}

/// A cloneable admission gate. All clones share the same slot pool.
#[derive(Debug, Clone)]
pub struct Admission {
    inner: Arc<AdmissionInner>,
}

/// The outcome of [`Admission::try_begin`].
#[derive(Debug)]
pub enum Decision {
    /// A slot was taken; hold the permit for the duration of the
    /// request.
    Go(Permit),
    /// All slots are busy; the client should retry after the hint.
    Shed {
        /// Suggested backoff in milliseconds.
        after_hint_ms: u32,
    },
}

/// An occupied admission slot; freed when dropped (even on panic or
/// early return), so a slot can never leak.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<AdmissionInner>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inner.active.fetch_sub(1, Ordering::AcqRel);
        self.inner.depth.dec();
    }
}

impl Admission {
    /// A gate with `slots` concurrent request slots, registering its
    /// `server.req.shed` counter and `server.req.queue_depth` gauge in
    /// `metrics`. `slots` is clamped to at least 1.
    pub fn new(slots: usize, after_hint_ms: u32, metrics: &cdb_obs::Metrics) -> Self {
        Admission {
            inner: Arc::new(AdmissionInner {
                slots: slots.max(1),
                active: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                after_hint_ms,
                shed: metrics.counter("server.req.shed"),
                depth: metrics.gauge("server.req.queue_depth"),
            }),
        }
    }

    /// Tries to take a slot for one request. Lock-free: a CAS loop on
    /// the active count, so shedding under overload costs a few loads,
    /// not a mutex convoy.
    pub fn try_begin(&self) -> Decision {
        let mut cur = self.inner.active.load(Ordering::Acquire);
        loop {
            if cur >= self.inner.slots {
                self.inner.shed.inc();
                return Decision::Shed {
                    after_hint_ms: self.inner.after_hint_ms,
                };
            }
            match self.inner.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.inner.depth.inc();
                    return Decision::Go(Permit {
                        inner: self.inner.clone(),
                    });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Enters drain mode: sessions refuse new writes with a typed
    /// shutdown error while continuing to serve reads.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }

    /// Whether drain mode is on.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Requests shed so far (mirrors the `server.req.shed` counter).
    pub fn shed_count(&self) -> u64 {
        self.inner.shed.get()
    }

    /// Slots currently held.
    pub fn in_flight(&self) -> usize {
        self.inner.active.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_bound_concurrency_and_release_on_drop() {
        let m = cdb_obs::Metrics::new();
        let adm = Admission::new(2, 7, &m);
        let p1 = match adm.try_begin() {
            Decision::Go(p) => p,
            Decision::Shed { .. } => panic!("slot 1 shed"),
        };
        let _p2 = match adm.try_begin() {
            Decision::Go(p) => p,
            Decision::Shed { .. } => panic!("slot 2 shed"),
        };
        match adm.try_begin() {
            Decision::Shed { after_hint_ms } => assert_eq!(after_hint_ms, 7),
            Decision::Go(_) => panic!("third request admitted past 2 slots"),
        }
        assert_eq!(adm.shed_count(), 1);
        assert_eq!(adm.in_flight(), 2);
        drop(p1);
        assert_eq!(adm.in_flight(), 1);
        assert!(matches!(adm.try_begin(), Decision::Go(_)));
    }

    #[test]
    fn gauge_tracks_depth() {
        let m = cdb_obs::Metrics::new();
        let adm = Admission::new(4, 1, &m);
        let depth = m.gauge("server.req.queue_depth");
        let p = match adm.try_begin() {
            Decision::Go(p) => p,
            Decision::Shed { .. } => unreachable!(),
        };
        assert_eq!(depth.get(), 1);
        drop(p);
        assert_eq!(depth.get(), 0);
    }
}
