//! The client half of the protocol: typed request helpers over any
//! [`Transport`]. `cdbsh connect` uses this over TCP; the test
//! harnesses use it over in-memory pipes.

use std::fmt;
use std::time::Duration;

use cdb_model::Atom;

use crate::proto::{
    read_frame, write_frame, ErrCode, FrameError, Request, Response, PROTOCOL_VERSION,
};
use crate::transport::{TcpTransport, Transport, TransportError};

/// A client-side failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The connection broke.
    Transport(TransportError),
    /// The byte stream was not valid frames.
    Frame(FrameError),
    /// A frame decoded to garbage.
    Wire(String),
    /// The server answered with a typed error.
    Server {
        /// The error class.
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
    /// The server shed the request; retry after the hint.
    Shed {
        /// Suggested backoff in milliseconds.
        after_hint_ms: u32,
    },
    /// The server sent a well-formed response of the wrong kind.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "{e}"),
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Wire(m) => write!(f, "bad response payload: {m}"),
            ClientError::Server { code, msg } => write!(f, "server error [{code}]: {msg}"),
            ClientError::Shed { after_hint_ms } => {
                write!(f, "server busy; retry in {after_hint_ms}ms")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response (wanted {what})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A connected protocol client. Construct with [`Client::dial`] (TCP)
/// or [`Client::over`] (any transport), then call [`Client::hello`]
/// before anything else.
pub struct Client<T: Transport> {
    transport: T,
    last_trace: cdb_obs::TraceId,
}

impl Client<TcpTransport> {
    /// Connects over TCP to `addr` (e.g. `"127.0.0.1:7070"`).
    pub fn dial(addr: &str) -> std::io::Result<Client<TcpTransport>> {
        Ok(Client::over(TcpTransport::dial(addr)?))
    }
}

impl<T: Transport> Client<T> {
    /// Wraps an already-connected transport.
    pub fn over(transport: T) -> Client<T> {
        Client {
            transport,
            last_trace: cdb_obs::TraceId(0),
        }
    }

    /// Unwraps the transport — the fault harness uses this to write
    /// partial frames by hand.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// One request/response exchange, untyped.
    ///
    /// When tracing is on, the exchange runs under a trace: the
    /// ambient trace id if the caller rooted one, else a fresh root —
    /// and that id is stamped onto the wire frame
    /// ([`Request::encode_traced`]) so the server's spans join it.
    /// The id is remembered ([`Client::last_trace`]) for post-hoc
    /// span-tree merging. Introspection requests (`Stats`,
    /// `TraceDump`) are never traced: they must not perturb the trace
    /// they are reading back.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let introspection = matches!(req, Request::Stats | Request::TraceDump);
        let traced = cdb_obs::tracing_enabled() && !introspection;
        let mut _root = None;
        let payload = if traced {
            let mut trace = cdb_obs::current_trace().unwrap_or(cdb_obs::TraceId(0));
            if trace.0 == 0 {
                _root = Some(cdb_obs::trace_root());
                trace = cdb_obs::current_trace().unwrap_or(cdb_obs::TraceId(0));
            }
            self.last_trace = trace;
            req.encode_traced(trace)
        } else {
            req.encode()
        };
        let _span = cdb_obs::SpanGuard::enter("client.req");
        write_frame(&mut self.transport, &payload)?;
        let payload = read_frame(&mut self.transport)?
            .ok_or(ClientError::Transport(TransportError::Closed))?;
        Response::decode(&payload).map_err(|e| ClientError::Wire(e.to_string()))
    }

    /// The trace id of the most recent traced exchange (zero when
    /// tracing was never on). `cdbsh trace merged` filters the merged
    /// client+server span dump down to this id.
    pub fn last_trace(&self) -> cdb_obs::TraceId {
        self.last_trace
    }

    /// Like [`Client::request`], but honours `Retry` responses by
    /// sleeping the hinted backoff, up to `attempts` tries total.
    pub fn request_retrying(
        &mut self,
        req: &Request,
        attempts: usize,
    ) -> Result<Response, ClientError> {
        let mut left = attempts.max(1);
        loop {
            match self.request(req)? {
                Response::Retry { after_hint_ms } if left > 1 => {
                    left -= 1;
                    std::thread::sleep(Duration::from_millis(u64::from(after_hint_ms)));
                }
                Response::Retry { after_hint_ms } => {
                    return Err(ClientError::Shed { after_hint_ms })
                }
                resp => return Ok(resp),
            }
        }
    }

    /// The mandatory handshake. Returns the server's database name.
    pub fn hello(&mut self, client_name: &str) -> Result<String, ClientError> {
        match self.checked(&Request::Hello {
            version: PROTOCOL_VERSION,
            client: client_name.to_string(),
        })? {
            Response::Hello { server, .. } => Ok(server),
            _ => Err(ClientError::Unexpected("hello")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("pong")),
        }
    }

    /// Adds an entry; returns its node id.
    pub fn add(
        &mut self,
        curator: &str,
        time: u64,
        key: &str,
        fields: Vec<(String, Atom)>,
    ) -> Result<u64, ClientError> {
        match self.checked(&Request::Add {
            curator: curator.to_string(),
            time,
            key: key.to_string(),
            fields,
        })? {
            Response::Node { id } => Ok(id),
            _ => Err(ClientError::Unexpected("node id")),
        }
    }

    /// Edits (or adds) a field.
    pub fn edit(
        &mut self,
        curator: &str,
        time: u64,
        key: &str,
        field: &str,
        value: Atom,
    ) -> Result<(), ClientError> {
        match self.checked(&Request::Edit {
            curator: curator.to_string(),
            time,
            key: key.to_string(),
            field: field.to_string(),
            value,
        })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("ok")),
        }
    }

    /// Deletes an entry.
    pub fn delete(&mut self, curator: &str, time: u64, key: &str) -> Result<(), ClientError> {
        match self.checked(&Request::Delete {
            curator: curator.to_string(),
            time,
            key: key.to_string(),
        })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("ok")),
        }
    }

    /// Fuses `absorbed` into `kept`.
    pub fn merge(
        &mut self,
        curator: &str,
        time: u64,
        kept: &str,
        absorbed: &str,
    ) -> Result<(), ClientError> {
        match self.checked(&Request::Merge {
            curator: curator.to_string(),
            time,
            kept: kept.to_string(),
            absorbed: absorbed.to_string(),
        })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("ok")),
        }
    }

    /// Attaches an annotation.
    pub fn annotate(
        &mut self,
        key: &str,
        field: Option<&str>,
        author: &str,
        text: &str,
        time: u64,
    ) -> Result<(), ClientError> {
        match self.checked(&Request::Annotate {
            key: key.to_string(),
            field: field.map(str::to_string),
            author: author.to_string(),
            text: text.to_string(),
            time,
        })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("ok")),
        }
    }

    /// Publishes an archived version; returns its id.
    pub fn publish(&mut self, label: &str) -> Result<u32, ClientError> {
        match self.checked(&Request::Publish {
            label: label.to_string(),
        })? {
            Response::Version { id } => Ok(id),
            _ => Err(ClientError::Unexpected("version id")),
        }
    }

    /// Reads one field; returns it with the serving epoch.
    pub fn get(&mut self, key: &str, field: &str) -> Result<(u64, Atom), ClientError> {
        match self.checked(&Request::GetField {
            key: key.to_string(),
            field: field.to_string(),
        })? {
            Response::Value { epoch, value } => Ok((epoch, value)),
            _ => Err(ClientError::Unexpected("value")),
        }
    }

    /// Lists entry keys; returns them with the serving epoch.
    pub fn entries(&mut self) -> Result<(u64, Vec<String>), ClientError> {
        match self.checked(&Request::Entries)? {
            Response::Keys { epoch, keys } => Ok((epoch, keys)),
            _ => Err(ClientError::Unexpected("keys")),
        }
    }

    /// Re-pins the session to the latest snapshot; returns the epoch.
    pub fn refresh(&mut self) -> Result<u64, ClientError> {
        match self.checked(&Request::Refresh)? {
            Response::Epoch { epoch } => Ok(epoch),
            _ => Err(ClientError::Unexpected("epoch")),
        }
    }

    /// The session's pinned epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        match self.checked(&Request::Epoch)? {
            Response::Epoch { epoch } => Ok(epoch),
            _ => Err(ClientError::Unexpected("epoch")),
        }
    }

    /// A line-JSON metrics dump from the server.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.checked(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// A line-JSON dump of the server's recent span events (for
    /// merging with the local rings via
    /// `cdb_obs::export::parse_span_lines` + `merge_span_dumps`).
    pub fn trace_dump(&mut self) -> Result<String, ClientError> {
        match self.checked(&Request::TraceDump)? {
            Response::Stats { json } => Ok(json),
            _ => Err(ClientError::Unexpected("trace dump")),
        }
    }

    /// Orderly goodbye.
    pub fn close(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Close)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("ok")),
        }
    }

    /// Sends a request and lifts `Err`/`Retry` responses into
    /// [`ClientError`], leaving success variants for the caller.
    fn checked(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.request(req)? {
            Response::Err { code, msg } => Err(ClientError::Server { code, msg }),
            Response::Retry { after_hint_ms } => Err(ClientError::Shed { after_hint_ms }),
            resp => Ok(resp),
        }
    }
}
