//! The TCP server: a bounded accept loop feeding per-connection
//! session threads, with load-shed at the door and a graceful drain.
//!
//! # Admission at two levels
//!
//! * **Connections**: at most `workers` session threads exist. A
//!   connection arriving past that is answered with one `Retry` frame
//!   and closed (`server.conn.shed` counts these) — bounded accept,
//!   no hidden backlog beyond the kernel's listen queue.
//! * **Requests**: within a session, database-touching requests pass
//!   the shared [`Admission`] slot pool (`slots` across the whole
//!   server), shedding with `Retry` when full.
//!
//! # Drain semantics
//!
//! [`Server::drain`] runs in phases:
//!
//! 1. stop accepting (the listener thread exits);
//! 2. flip the admission gate to draining — in-flight sessions keep
//!    serving reads but refuse new writes with `Err{Shutdown}`;
//! 3. wait up to the timeout for sessions to say goodbye on their own;
//! 4. force-close the stragglers through their transport
//!    [`Closer`](crate::transport::Closer)s and join every thread.
//!
//! Because writes are refused from step 2 on, and every acknowledged
//! write already waited for its group commit, a drained server leaves
//! a WAL whose synced prefix covers every `Ok` any client ever saw.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::admission::{Admission, DEFAULT_RETRY_HINT_MS};
use crate::handle::ServeHandle;
use crate::proto::{write_frame, Response};
use crate::session::Session;
use crate::transport::{Closer, TcpTransport, Transport};

/// Server sizing and behaviour knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent session threads (connection-level bound).
    pub workers: usize,
    /// Admission slots shared by all sessions (request-level bound).
    pub slots: usize,
    /// Backoff hint handed to shed clients, in milliseconds.
    pub retry_hint_ms: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            slots: 8,
            retry_hint_ms: DEFAULT_RETRY_HINT_MS,
        }
    }
}

/// What [`Server::drain`] accomplished.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Sessions accepted over the server's lifetime.
    pub sessions_served: u64,
    /// Sessions that had to be force-closed at the deadline.
    pub forced: usize,
}

struct Live {
    handle: JoinHandle<()>,
    closer: Box<dyn Closer>,
    done: Arc<AtomicBool>,
}

/// A running TCP server. Dropping it without calling [`Server::drain`]
/// aborts the accept loop but leaves session threads to finish on
/// their own; call `drain` for an orderly shutdown.
pub struct Server {
    addr: SocketAddr,
    admission: Admission,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    live: Arc<Mutex<Vec<Live>>>,
    accepted: Arc<AtomicU64>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back
    /// with [`Server::local_addr`]) and starts accepting.
    pub fn bind(
        db: impl Into<ServeHandle>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let db = db.into();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let admission = Admission::new(config.slots, config.retry_hint_ms, db.metrics());
        let conn_shed = db.metrics().counter("server.conn.shed");
        let stop = Arc::new(AtomicBool::new(false));
        let live: Arc<Mutex<Vec<Live>>> = Arc::new(Mutex::new(Vec::new()));
        let accepted = Arc::new(AtomicU64::new(0));

        let accept = {
            let stop = stop.clone();
            let live = live.clone();
            let admission = admission.clone();
            let accepted = accepted.clone();
            let workers = config.workers.max(1);
            let retry_hint_ms = config.retry_hint_ms;
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            let mut guard = live.lock().expect("session registry poisoned");
                            guard.retain(|l| !l.done.load(Ordering::Acquire));
                            if guard.len() >= workers {
                                drop(guard);
                                conn_shed.inc();
                                shed_connection(stream, retry_hint_ms);
                                continue;
                            }
                            match spawn_session(stream, &db, &admission) {
                                Ok(l) => guard.push(l),
                                Err(_) => continue, // peer died before setup
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => {
                            // Transient accept errors (aborted handshake
                            // etc.); keep listening.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
            })
        };

        Ok(Server {
            addr: local,
            admission,
            stop,
            accept_thread: Some(accept),
            live,
            accepted,
        })
    }

    /// The bound address, ephemeral port resolved.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared admission gate (exposed for tests and stats).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Graceful shutdown; see the module docs for the phases.
    pub fn drain(mut self, timeout: Duration) -> DrainReport {
        self.stop.store(true, Ordering::Release);
        self.admission.begin_drain();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The span API is the house stopwatch (check.sh forbids raw
        // std timing in library code); this also makes the drain
        // visible in traces.
        let stopwatch = cdb_obs::SpanGuard::enter("server.drain");
        loop {
            let all_done = {
                let guard = self.live.lock().expect("session registry poisoned");
                guard.iter().all(|l| l.done.load(Ordering::Acquire))
            };
            if all_done || stopwatch.elapsed() >= timeout {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut forced = 0;
        let mut guard = self.live.lock().expect("session registry poisoned");
        for l in guard.iter() {
            if !l.done.load(Ordering::Acquire) {
                forced += 1;
                l.closer.close();
            }
        }
        for l in guard.drain(..) {
            let _ = l.handle.join();
        }
        drop(guard);
        DrainReport {
            sessions_served: self.accepted.load(Ordering::Relaxed),
            forced,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Answers an over-capacity connection with a single `Retry` frame
/// and closes it. Done on its own short-lived thread so a slow peer
/// cannot stall the accept loop.
fn shed_connection(stream: TcpStream, after_hint_ms: u32) {
    std::thread::spawn(move || {
        if let Ok(mut t) = TcpTransport::new(stream) {
            let resp = Response::Retry { after_hint_ms };
            let _ = write_frame(&mut t, &resp.encode());
        }
    });
}

fn spawn_session(
    stream: TcpStream,
    db: &ServeHandle,
    admission: &Admission,
) -> std::io::Result<Live> {
    stream.set_nodelay(true).ok();
    let transport = TcpTransport::new(stream)?;
    let closer = transport.closer();
    let done = Arc::new(AtomicBool::new(false));
    let flag = done.clone();
    let db = db.clone();
    let admission = admission.clone();
    let handle = std::thread::spawn(move || {
        // A panicking session is a black-box trigger: snapshot the
        // flight recorder (no-op unless installed) before the thread
        // dies, then keep the panic's effect — the session ends, the
        // server keeps serving everyone else.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut session = Session::new(transport, db, admission);
            session.run();
        }));
        if outcome.is_err() {
            let _ = cdb_obs::flight::snap("server.session_panic");
        }
        flag.store(true, Ordering::Release);
    });
    Ok(Live {
        handle,
        closer,
        done,
    })
}
