//! Protocol conformance: every request and response frame round-trips
//! through the codec, and *no* corruption of a valid byte stream —
//! truncation at any offset, a flipped bit at any offset — can make
//! the server panic, hang, or answer with undecodable bytes. Mirrors
//! `storage/tests/fault_classes.rs`: random structure comes from
//! seeded property tests, corruption offsets are enumerated
//! exhaustively.

use cdb_core::shared::SharedDb;
use cdb_model::atom::Decimal;
use cdb_model::Atom;
use cdb_server::admission::Admission;
use cdb_server::proto::{
    read_frame, write_frame, ErrCode, Request, Response, MAX_FRAME, PROTOCOL_VERSION,
};
use cdb_server::session::Session;
use cdb_server::transport::{mem_pair, Transport};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------- generators

fn arb_atom(rng: &mut StdRng) -> Atom {
    match rng.gen_range(0u32..5) {
        0 => Atom::Unit,
        1 => Atom::Bool(rng.gen()),
        2 => Atom::Int(rng.gen()),
        3 => Atom::Decimal(Decimal::new(rng.gen_range(-1_000_000i64..1_000_000), {
            let s: i64 = rng.gen_range(0i64..6);
            s as u8
        })),
        _ => Atom::Str(arb_string(rng)),
    }
}

fn arb_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0i64..12) as usize;
    (0..len)
        .map(|_| {
            // Mix ASCII and multi-byte to exercise UTF-8 handling.
            match rng.gen_range(0u32..8) {
                0 => 'δ',
                1 => '批',
                _ => (b'a' + (rng.gen_range(0i64..26) as u8)) as char,
            }
        })
        .collect()
}

fn arb_fields(rng: &mut StdRng) -> Vec<(String, Atom)> {
    let n = rng.gen_range(0i64..4) as usize;
    (0..n).map(|_| (arb_string(rng), arb_atom(rng))).collect()
}

fn arb_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0u32..15) {
        0 => Request::Hello {
            version: rng.gen_range(0i64..4) as u32,
            client: arb_string(rng),
        },
        1 => Request::Ping,
        2 => Request::Add {
            curator: arb_string(rng),
            time: rng.gen(),
            key: arb_string(rng),
            fields: arb_fields(rng),
        },
        3 => Request::Edit {
            curator: arb_string(rng),
            time: rng.gen(),
            key: arb_string(rng),
            field: arb_string(rng),
            value: arb_atom(rng),
        },
        4 => Request::Delete {
            curator: arb_string(rng),
            time: rng.gen(),
            key: arb_string(rng),
        },
        5 => Request::Merge {
            curator: arb_string(rng),
            time: rng.gen(),
            kept: arb_string(rng),
            absorbed: arb_string(rng),
        },
        6 => Request::Annotate {
            key: arb_string(rng),
            field: rng.gen_bool(0.5).then(|| arb_string(rng)),
            author: arb_string(rng),
            text: arb_string(rng),
            time: rng.gen(),
        },
        7 => Request::Publish {
            label: arb_string(rng),
        },
        8 => Request::GetField {
            key: arb_string(rng),
            field: arb_string(rng),
        },
        9 => Request::Entries,
        10 => Request::Refresh,
        11 => Request::Epoch,
        12 => Request::Stats,
        13 => Request::TraceDump,
        _ => Request::Close,
    }
}

fn arb_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0u32..11) {
        0 => Response::Hello {
            version: rng.gen_range(0i64..4) as u32,
            server: arb_string(rng),
        },
        1 => Response::Pong,
        2 => Response::Ok,
        3 => Response::Node { id: rng.gen() },
        4 => Response::Value {
            epoch: rng.gen(),
            value: arb_atom(rng),
        },
        5 => Response::Keys {
            epoch: rng.gen(),
            keys: (0..rng.gen_range(0i64..5))
                .map(|_| arb_string(rng))
                .collect(),
        },
        6 => Response::Epoch { epoch: rng.gen() },
        7 => Response::Version {
            id: rng.gen_range(0i64..1_000_000) as u32,
        },
        8 => Response::Stats {
            json: arb_string(rng),
        },
        9 => Response::Err {
            code: match rng.gen_range(0u32..10) {
                0 => ErrCode::Protocol,
                1 => ErrCode::BadRequest,
                2 => ErrCode::NoSuchEntry,
                3 => ErrCode::NoSuchField,
                4 => ErrCode::Duplicate,
                5 => ErrCode::Lifecycle,
                6 => ErrCode::Storage,
                7 => ErrCode::Shutdown,
                8 => ErrCode::VersionMismatch,
                _ => ErrCode::Internal,
            },
            msg: arb_string(rng),
        },
        _ => Response::Retry {
            after_hint_ms: rng.gen_range(0i64..10_000) as u32,
        },
    }
}

// --------------------------------------------------- round-trips

proptest! {
    #[test]
    fn requests_round_trip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = arb_request(&mut rng);
        let bytes = req.encode();
        let back = Request::decode(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&req));
    }

    /// The trace-context word survives the wire exactly, and its
    /// absence decodes as "no trace" — the backward-compatibility
    /// contract of `encode_traced`/`decode_traced`.
    #[test]
    fn traced_requests_round_trip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = arb_request(&mut rng);
        let trace = cdb_obs::TraceId(rng.gen());
        let bytes = req.encode_traced(trace);
        let (back, tback) = Request::decode_traced(&bytes).unwrap();
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(tback, trace);
        let (untraced, t0) = Request::decode_traced(&req.encode()).unwrap();
        prop_assert_eq!(untraced, req);
        prop_assert_eq!(t0.0, 0);
    }

    #[test]
    fn responses_round_trip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let resp = arb_response(&mut rng);
        let bytes = resp.encode();
        let back = Response::decode(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&resp));
    }

    #[test]
    fn truncated_payloads_never_panic(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes = arb_request(&mut rng).encode();
        for cut in 0..bytes.len() {
            // Any prefix must yield a typed error (or, for a prefix
            // that happens to be a complete shorter value, trailing
            // handling does not apply — but a strict prefix of a
            // canonical encoding never re-decodes to Ok of the same).
            let _ = Request::decode(&bytes[..cut]);
        }
        // Appending junk makes it trailing bytes, not a silent success.
        let mut padded = bytes.clone();
        padded.push(0);
        prop_assert!(Request::decode(&padded).is_err());
    }
}

// ------------------------------------- corrupt frames, end to end

/// Feeds a raw byte stream to a fresh session over the in-memory
/// transport, lets the session run to completion, and returns every
/// response frame the server produced. The client half-closes after
/// writing, so the session always reaches EOF — a hang is impossible
/// by construction, and a panic propagates out of `run`.
fn serve_raw(stream: &[u8]) -> Vec<Response> {
    let db = SharedDb::new("conformance", "name");
    db.add_entry("seed", 1, "K", &[("f", Atom::Int(7))])
        .unwrap();
    let admission = Admission::new(4, 1, db.metrics());
    let (mut client, server_end) = mem_pair();
    client.write_all(stream).unwrap();
    client.shutdown_write();
    let mut session = Session::new(server_end, db, admission);
    session.run();
    drop(session); // hangs up the server end; reads below terminate
    let mut responses = Vec::new();
    while let Ok(Some(payload)) = read_frame(&mut client) {
        responses.push(
            Response::decode(&payload).expect("server emitted an undecodable response frame"),
        );
    }
    responses
}

/// A canonical two-frame conversation: a valid hello, then a valid
/// write. Corruption tests mutate this stream.
fn canonical_stream() -> Vec<u8> {
    let mut stream = Vec::new();
    let hello = Request::Hello {
        version: PROTOCOL_VERSION,
        client: "conformance".to_string(),
    };
    let add = Request::Add {
        curator: "alice".to_string(),
        time: 2,
        key: "GABA-A".to_string(),
        fields: vec![("tm".to_string(), Atom::Int(4))],
    };
    for req in [&hello, &add] {
        let payload = req.encode();
        stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        stream.extend_from_slice(&payload);
    }
    stream
}

#[test]
fn every_byte_offset_truncation_is_survived() {
    let stream = canonical_stream();
    for cut in 0..stream.len() {
        let responses = serve_raw(&stream[..cut]);
        // Every response the server did send must be well-formed (the
        // expect inside serve_raw) and every error typed.
        for r in &responses {
            if let Response::Err { code, .. } = r {
                assert!(
                    matches!(code, ErrCode::Protocol | ErrCode::VersionMismatch),
                    "cut at {cut}: unexpected error class {code}"
                );
            }
        }
    }
}

#[test]
fn every_byte_offset_bit_flip_is_survived() {
    let stream = canonical_stream();
    for offset in 0..stream.len() {
        for mask in [0x01u8, 0x80u8] {
            let mut corrupt = stream.clone();
            corrupt[offset] ^= mask;
            // Must terminate (serve_raw cannot hang) and every frame
            // the server answers must decode (asserted inside).
            let _ = serve_raw(&corrupt);
        }
    }
}

#[test]
fn oversized_frame_length_is_refused_with_a_typed_error() {
    let mut stream = Vec::new();
    stream.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
    stream.extend_from_slice(&[0u8; 64]);
    let responses = serve_raw(&stream);
    assert_eq!(responses.len(), 1);
    assert!(
        matches!(
            &responses[0],
            Response::Err {
                code: ErrCode::Protocol,
                ..
            }
        ),
        "got {responses:?}"
    );
}

#[test]
fn zero_length_frame_is_refused_with_a_typed_error() {
    let mut stream = Vec::new();
    stream.extend_from_slice(&0u32.to_le_bytes());
    let responses = serve_raw(&stream);
    assert_eq!(responses.len(), 1);
    assert!(matches!(
        &responses[0],
        Response::Err {
            code: ErrCode::Protocol,
            ..
        }
    ));
}

#[test]
fn request_before_hello_is_refused_and_closed() {
    let mut stream = Vec::new();
    let payload = Request::Ping.encode();
    stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    stream.extend_from_slice(&payload);
    // A second request after the offender proves the close: it must
    // never be answered.
    stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    stream.extend_from_slice(&payload);
    let responses = serve_raw(&stream);
    assert_eq!(responses.len(), 1, "connection must close after refusal");
    assert!(matches!(
        &responses[0],
        Response::Err {
            code: ErrCode::Protocol,
            ..
        }
    ));
}

#[test]
fn version_mismatch_is_refused_and_closed() {
    let mut stream = Vec::new();
    let payload = Request::Hello {
        version: PROTOCOL_VERSION + 1,
        client: "future".to_string(),
    }
    .encode();
    stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    stream.extend_from_slice(&payload);
    let responses = serve_raw(&stream);
    assert_eq!(responses.len(), 1);
    assert!(matches!(
        &responses[0],
        Response::Err {
            code: ErrCode::VersionMismatch,
            ..
        }
    ));
}

#[test]
fn clean_conversation_over_the_wire() {
    // The uncorrupted baseline the corruption tests perturb: hello,
    // add, read-back — driven in single-threaded lockstep (write a
    // request, let the session serve it, read the response) over the
    // raw transport.
    let db = SharedDb::new("conformance", "name");
    let admission = Admission::new(4, 1, db.metrics());
    let (mut client, server_end) = mem_pair();
    let mut session = Session::new(server_end, db, admission);

    let exchange = |client: &mut dyn Transport,
                    session: &mut Session<cdb_server::MemTransport>,
                    req: &Request|
     -> Response {
        write_frame(client, &req.encode()).unwrap();
        session.serve_one();
        let payload = read_frame(client).unwrap().expect("response frame");
        Response::decode(&payload).unwrap()
    };

    let resp = exchange(
        &mut client,
        &mut session,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: "t".to_string(),
        },
    );
    let Response::Hello { version, server } = resp else {
        panic!("no hello, got {resp:?}")
    };
    assert_eq!(version, PROTOCOL_VERSION);
    assert_eq!(server, "conformance");

    let resp = exchange(
        &mut client,
        &mut session,
        &Request::Add {
            curator: "alice".to_string(),
            time: 1,
            key: "GABA-A".to_string(),
            fields: vec![("tm".to_string(), Atom::Int(4))],
        },
    );
    assert!(matches!(resp, Response::Node { .. }));

    let resp = exchange(
        &mut client,
        &mut session,
        &Request::GetField {
            key: "GABA-A".to_string(),
            field: "tm".to_string(),
        },
    );
    let Response::Value { epoch, value } = resp else {
        panic!("no value, got {resp:?}")
    };
    assert_eq!(value, Atom::Int(4));
    assert_eq!(epoch, 1);
    assert_eq!(session.pinned().epoch(), 1);
}

#[test]
fn write_frame_helper_matches_manual_framing() {
    // Guard the manual framing used above against the library helper.
    let (mut a, mut b) = mem_pair();
    let payload = Request::Ping.encode();
    write_frame(&mut a, &payload).unwrap();
    let got = read_frame(&mut b).unwrap().unwrap();
    assert_eq!(got, payload);
}
