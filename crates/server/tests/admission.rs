//! Admission-control behaviour under overload and drain, asserted at
//! the protocol level: excess requests get a typed `Retry` (never a
//! silent drop, never an unbounded queue), `server.req.shed` counts
//! them, and — the load-bearing invariant — a shed request leaves
//! **no WAL frames** behind: the database never heard of it.

use std::time::Duration;

use cdb_core::shared::SharedDb;
use cdb_model::Atom;
use cdb_server::admission::{Admission, Decision};
use cdb_server::proto::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use cdb_server::session::Session;
use cdb_server::transport::{mem_pair, MemTransport};
use cdb_storage::{CheckpointStore, MemIo};

/// A durable shared database over in-memory devices, group-commit
/// window zero (sync immediately — deterministic).
fn durable_db() -> SharedDb {
    SharedDb::open(
        "admit",
        "name",
        Box::new(MemIo::new()),
        CheckpointStore::mem(),
        Duration::ZERO,
    )
    .unwrap()
}

/// One lockstep exchange: write the request, serve it, read the reply.
fn exchange(
    client: &mut MemTransport,
    session: &mut Session<MemTransport>,
    req: &Request,
) -> Response {
    write_frame(client, &req.encode()).unwrap();
    session.serve_one();
    let payload = read_frame(client).unwrap().expect("response frame");
    Response::decode(&payload).unwrap()
}

fn hello(client: &mut MemTransport, session: &mut Session<MemTransport>) {
    let resp = exchange(
        client,
        session,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: "admission-test".to_string(),
        },
    );
    assert!(matches!(resp, Response::Hello { .. }));
}

fn add_req(key: &str) -> Request {
    Request::Add {
        curator: "alice".to_string(),
        time: 1,
        key: key.to_string(),
        fields: vec![("tm".to_string(), Atom::Int(4))],
    }
}

#[test]
fn one_slot_and_a_stalled_worker_sheds_with_retry_and_no_wal_frames() {
    let db = durable_db();
    let admission = Admission::new(1, 17, db.metrics());

    // The stalled worker: a permit held for the duration, as if a
    // request were stuck mid-execution.
    let _stall = match admission.try_begin() {
        Decision::Go(p) => p,
        Decision::Shed { .. } => panic!("fresh gate shed its first request"),
    };

    let (mut client, server_end) = mem_pair();
    let mut session = Session::new(server_end, db.clone(), admission.clone());
    hello(&mut client, &mut session);

    let wal_before = db.wal_len().expect("durable db has a WAL");
    let epoch_before = db.epoch();

    // Excess requests: each gets Retry with the configured hint —
    // typed, not a silent drop — and the connection stays usable.
    for i in 0..3 {
        let resp = exchange(&mut client, &mut session, &add_req(&format!("K{i}")));
        assert_eq!(
            resp,
            Response::Retry { after_hint_ms: 17 },
            "request {i} should shed while the slot is held"
        );
    }

    // The shed counter saw all three, through both the handle and the
    // registered metric.
    assert_eq!(admission.shed_count(), 3);
    assert_eq!(db.metrics().counter("server.req.shed").get(), 3);

    // The load-bearing assertion: shedding happened before the
    // database — no WAL frames, no epoch, no entries.
    assert_eq!(
        db.wal_len().unwrap(),
        wal_before,
        "shed request reached the WAL"
    );
    assert_eq!(db.epoch(), epoch_before, "shed request committed an epoch");
    assert!(db.snapshot().entry_keys().unwrap().is_empty());

    // Reads shed too while the pool is exhausted (they hold slots).
    let resp = exchange(&mut client, &mut session, &Request::Entries);
    assert_eq!(resp, Response::Retry { after_hint_ms: 17 });

    // Release the stalled worker: the same connection immediately
    // gets through, and the write lands in the WAL.
    drop(_stall);
    let resp = exchange(&mut client, &mut session, &add_req("K9"));
    assert!(matches!(resp, Response::Node { .. }), "got {resp:?}");
    assert!(db.wal_len().unwrap() > wal_before);
    assert_eq!(db.snapshot().entry_keys().unwrap(), vec!["K9".to_string()]);
}

#[test]
fn queue_depth_gauge_tracks_in_flight_requests() {
    let db = durable_db();
    let admission = Admission::new(2, 5, db.metrics());
    let depth = db.metrics().gauge("server.req.queue_depth");
    assert_eq!(depth.get(), 0);
    let p1 = match admission.try_begin() {
        Decision::Go(p) => p,
        _ => unreachable!(),
    };
    let p2 = match admission.try_begin() {
        Decision::Go(p) => p,
        _ => unreachable!(),
    };
    assert_eq!(depth.get(), 2);
    assert!(matches!(admission.try_begin(), Decision::Shed { .. }));
    assert_eq!(depth.get(), 2, "a shed request must not occupy the queue");
    drop(p1);
    drop(p2);
    assert_eq!(depth.get(), 0);
}

#[test]
fn draining_refuses_writes_but_serves_reads() {
    let db = durable_db();
    let admission = Admission::new(4, 5, db.metrics());
    let (mut client, server_end) = mem_pair();
    let mut session = Session::new(server_end, db.clone(), admission.clone());
    hello(&mut client, &mut session);

    // Seed one entry before the drain begins.
    let resp = exchange(&mut client, &mut session, &add_req("K0"));
    assert!(matches!(resp, Response::Node { .. }));
    let wal_at_drain = db.wal_len().unwrap();

    admission.begin_drain();

    // Writes: refused with the shutdown class, and nothing hits the WAL.
    let resp = exchange(&mut client, &mut session, &add_req("K1"));
    assert!(
        matches!(
            &resp,
            Response::Err {
                code: cdb_server::ErrCode::Shutdown,
                ..
            }
        ),
        "got {resp:?}"
    );
    assert_eq!(db.wal_len().unwrap(), wal_at_drain);

    // Reads: still served, still from the pinned snapshot.
    let resp = exchange(&mut client, &mut session, &Request::Entries);
    let Response::Keys { keys, .. } = resp else {
        panic!("read refused during drain: {resp:?}")
    };
    assert_eq!(keys, vec!["K0".to_string()]);

    // Ping keeps answering so health checks see the drain through.
    let resp = exchange(&mut client, &mut session, &Request::Ping);
    assert_eq!(resp, Response::Pong);
}

#[test]
fn shed_is_not_a_drop_the_client_can_retry_to_success() {
    // The end-to-end retry story: a client using request_retrying
    // succeeds once the stall clears concurrently.
    let db = durable_db();
    let admission = Admission::new(1, 1, db.metrics());
    let stall = match admission.try_begin() {
        Decision::Go(p) => p,
        _ => unreachable!(),
    };

    let (client_end, server_end) = mem_pair();
    let mut session = Session::new(server_end, db.clone(), admission.clone());
    let server_thread = std::thread::spawn(move || session.run());

    let mut client = cdb_server::Client::over(client_end);
    client.hello("retrier").unwrap();

    // Release the stall shortly after the client starts retrying.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        drop(stall);
    });

    let resp = client
        .request_retrying(&add_req("K0"), 50)
        .expect("retrying client must eventually land the write");
    assert!(matches!(resp, Response::Node { .. }));
    release.join().unwrap();

    client.close().unwrap();
    drop(client);
    server_thread.join().unwrap();
    assert_eq!(db.snapshot().entry_keys().unwrap(), vec!["K0".to_string()]);
}
