//! Wire-propagated trace context, end to end: a traced client request
//! against a served **sharded** database must yield — after merging
//! the client-side rings with the server's `TraceDump` answer — one
//! span tree under a single trace id containing the client request,
//! the admission gate, both participants' 2PC PREPAREs, and the
//! coordinator's DECIDE. This is the PR's acceptance criterion for
//! distributed tracing.

use std::time::Duration;

use cdb_core::sharded::{ShardMap, ShardedDb};
use cdb_model::Atom;
use cdb_obs::export::{merge_span_dumps, parse_span_lines, span_line_json, wire_span_tree};
use cdb_server::admission::Admission;
use cdb_server::client::Client;
use cdb_server::session::Session;
use cdb_server::transport::mem_pair;
use cdb_storage::{CheckpointStore, Io, MemIo};

/// The tracing flag is process-global; these tests toggle and assert
/// it, so they must not interleave.
static TRACING_FLAG: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A durable two-shard database over in-memory devices: keys < "M" on
/// shard 0, the rest on shard 1. Window zero = inline group commit,
/// so 2PC spans land on the session thread deterministically.
fn two_shards() -> ShardedDb {
    let devices: Vec<(Box<dyn Io>, CheckpointStore)> = (0..2)
        .map(|_| {
            (
                Box::new(MemIo::new()) as Box<dyn Io>,
                CheckpointStore::mem(),
            )
        })
        .collect();
    ShardedDb::open(
        "traced",
        "name",
        ShardMap::with_bounds(vec!["M".into()]),
        devices,
        Duration::ZERO,
    )
    .unwrap()
}

#[test]
fn cross_shard_write_merges_into_one_span_tree_under_one_trace() {
    let _flag = TRACING_FLAG.lock().unwrap();
    let db = two_shards();
    let admission = Admission::new(4, 5, db.metrics());
    let (client_end, server_end) = mem_pair();
    let server_thread = std::thread::spawn({
        let db = db.clone();
        let admission = admission.clone();
        move || {
            let mut session = Session::new(server_end, db, admission);
            session.run();
        }
    });

    let mut client = Client::over(client_end);
    client.hello("trace-test").unwrap();
    client.add("alice", 1, "GABA-A", vec![]).unwrap();
    client
        .add(
            "bob",
            2,
            "P2X",
            vec![("ligand".to_string(), Atom::Str("ATP".into()))],
        )
        .unwrap();

    // The traced exchange: one cross-shard fusion. Everything before
    // this ran untraced, so the merge below filters it out by id.
    cdb_obs::set_tracing(true);
    client.merge("carol", 3, "GABA-A", "P2X").unwrap();
    let trace = client.last_trace();
    assert_ne!(trace.0, 0, "a traced request must record its trace id");

    // Reassemble the distributed trace: the server's rings over the
    // wire, the client's rings locally, merged by trace id. (In this
    // in-process harness the two dumps overlap; merge_span_dumps
    // dedups exact duplicates, mirroring the two-process case where
    // they are disjoint.) Tracing must stay on until both dumps are
    // collected: spans record to the ring when they *close*, and the
    // server's outermost request span closes after the client already
    // has the response — flipping the flag here would race it. The
    // TraceDump request itself serializes behind the merge on the
    // session thread, so by the time it answers, every merge span has
    // been recorded.
    let server_spans = parse_span_lines(&client.trace_dump().unwrap()).unwrap();
    let client_spans = parse_span_lines(&span_line_json(&cdb_obs::recent_events())).unwrap();
    cdb_obs::set_tracing(false);
    let merged = merge_span_dumps(&[client_spans, server_spans], trace);

    assert!(
        merged.iter().all(|s| s.trace == trace.0),
        "merge must filter to the one trace"
    );
    let count = |name: &str| merged.iter().filter(|s| s.name == name).count();
    assert_eq!(count("client.req"), 1, "client half missing");
    assert_eq!(count("server.req"), 1, "server half missing");
    assert_eq!(count("server.admission"), 1, "admission gate missing");
    assert_eq!(count("core.sharded.cross_commit"), 1, "2PC engine missing");
    assert_eq!(
        count("core.twopc.prepare"),
        2,
        "one PREPARE per participant"
    );
    assert_eq!(count("core.twopc.decide"), 1, "one coordinator DECIDE");

    // The rendered tree is one coherent artifact: every layer present,
    // tagged with the shared trace id.
    let tree = wire_span_tree(&merged);
    for needle in ["client.req", "server.req", "core.twopc.decide"] {
        assert!(tree.contains(needle), "span tree lost {needle}:\n{tree}");
    }
    assert!(
        tree.contains(&format!("(t{})", trace.0)),
        "tree must carry the trace id"
    );

    client.close().unwrap();
    drop(client);
    server_thread.join().unwrap();
}

/// An untraced client against a traced-capable server (and vice
/// versa) interoperates: the frame without a trailing trace word is
/// the exact pre-existing encoding.
#[test]
fn untraced_requests_carry_no_trace_and_still_serve() {
    let _flag = TRACING_FLAG.lock().unwrap();
    let db = two_shards();
    let admission = Admission::new(4, 5, db.metrics());
    let (client_end, server_end) = mem_pair();
    let server_thread = std::thread::spawn({
        let db = db.clone();
        let admission = admission.clone();
        move || {
            let mut session = Session::new(server_end, db, admission);
            session.run();
        }
    });
    let mut client = Client::over(client_end);
    client.hello("untraced").unwrap();
    client.add("alice", 1, "GABA-A", vec![]).unwrap();
    assert_eq!(client.last_trace().0, 0, "tracing off leaves no trace id");
    client.close().unwrap();
    drop(client);
    server_thread.join().unwrap();
}
