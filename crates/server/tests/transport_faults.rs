//! Fault-plan classes for the connection transport, enumerated
//! deterministically: a peer cut off at every byte offset of the
//! stream (torn frames, mid-request disconnects) and a reader that
//! delivers one byte per read (a slow or adversarial peer). The
//! invariant under every cut: the database applies exactly the
//! requests whose frames arrived whole — a torn write is never
//! half-applied — and the session always terminates.

use cdb_core::shared::SharedDb;
use cdb_model::Atom;
use cdb_server::admission::Admission;
use cdb_server::proto::{read_frame, Request, Response, PROTOCOL_VERSION};
use cdb_server::session::{Session, Turn};
use cdb_server::transport::{mem_pair, mem_pair_with, MemFaultPlan, Transport};

fn frame(req: &Request) -> Vec<u8> {
    let payload = req.encode();
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The scripted conversation: hello, then two writes. Returns the
/// stream and the end offset of each frame.
fn scripted_stream() -> (Vec<u8>, Vec<usize>) {
    let reqs = [
        Request::Hello {
            version: PROTOCOL_VERSION,
            client: "faults".to_string(),
        },
        Request::Add {
            curator: "alice".to_string(),
            time: 1,
            key: "GABA-A".to_string(),
            fields: vec![("tm".to_string(), Atom::Int(4))],
        },
        Request::Add {
            curator: "bob".to_string(),
            time: 2,
            key: "5-HT3".to_string(),
            fields: vec![("tm".to_string(), Atom::Int(5))],
        },
    ];
    let mut stream = Vec::new();
    let mut ends = Vec::new();
    for req in &reqs {
        stream.extend_from_slice(&frame(req));
        ends.push(stream.len());
    }
    (stream, ends)
}

#[test]
fn cut_at_every_offset_applies_exactly_the_whole_frames() {
    let (stream, ends) = scripted_stream();
    for cut in 0..=stream.len() {
        let db = SharedDb::new("faults", "name");
        let admission = Admission::new(4, 1, db.metrics());
        let (mut client, server_end) = mem_pair_with(MemFaultPlan {
            cut_after: Some(cut),
            ..MemFaultPlan::default()
        });
        // The cut plan truncates and closes; the write result reflects
        // whether everything fit. When everything fits (cut at the
        // very end), half-close so the session sees EOF, not silence.
        let _ = client.write_all(&stream);
        client.shutdown_write();
        let mut session = Session::new(server_end, db.clone(), admission);
        session.run(); // must terminate for every cut — no hang, no panic

        let keys = db.snapshot().entry_keys().unwrap();
        let expect_first = cut >= ends[1];
        let expect_second = cut >= ends[2];
        assert_eq!(
            keys.contains(&"GABA-A".to_string()),
            expect_first,
            "cut at {cut}: first add half-applied or lost"
        );
        assert_eq!(
            keys.contains(&"5-HT3".to_string()),
            expect_second,
            "cut at {cut}: second add half-applied or lost"
        );
        // Torn-frame cuts (inside a frame, past the hello) are counted.
        let torn = db.metrics().counter("server.conn.torn").get();
        let lands_mid_frame = cut != stream.len() && !ends.contains(&cut) && cut != 0;
        if lands_mid_frame {
            assert_eq!(torn, 1, "cut at {cut} should count one torn connection");
        }
    }
}

#[test]
fn slow_reader_still_parses_every_frame() {
    // One byte per read: a frame reader that assumes `read` returns
    // whole frames fails here on the first multi-byte header.
    let (stream, _) = scripted_stream();
    let db = SharedDb::new("faults", "name");
    let admission = Admission::new(4, 1, db.metrics());
    let (mut client, server_end) = mem_pair_with(MemFaultPlan {
        read_chunk: Some(1),
        ..MemFaultPlan::default()
    });
    client.write_all(&stream).unwrap();
    client.shutdown_write();
    let mut session = Session::new(server_end, db.clone(), admission);
    session.run();
    drop(session);

    let keys = db.snapshot().entry_keys().unwrap();
    assert_eq!(keys.len(), 2, "both adds must apply under a slow reader");
    // And the responses all arrived, well-formed.
    let mut responses = Vec::new();
    while let Ok(Some(p)) = read_frame(&mut client) {
        responses.push(Response::decode(&p).unwrap());
    }
    assert_eq!(responses.len(), 3);
    assert!(matches!(responses[0], Response::Hello { .. }));
    assert!(matches!(responses[1], Response::Node { .. }));
    assert!(matches!(responses[2], Response::Node { .. }));
}

#[test]
fn mid_request_disconnect_after_header_is_torn_not_applied() {
    // Deliver the hello whole, then only the 4-byte length header of
    // the add: the classic mid-request disconnect.
    let (stream, ends) = scripted_stream();
    let cut = ends[0] + 4;
    let db = SharedDb::new("faults", "name");
    let admission = Admission::new(4, 1, db.metrics());
    let (mut client, server_end) = mem_pair_with(MemFaultPlan {
        cut_after: Some(cut),
        ..MemFaultPlan::default()
    });
    let _ = client.write_all(&stream);
    let mut session = Session::new(server_end, db.clone(), admission);
    assert_eq!(session.serve_one(), Turn::Continue); // hello
    assert_eq!(session.serve_one(), Turn::Closed); // torn add
    assert!(db.snapshot().entry_keys().unwrap().is_empty());
    assert_eq!(db.epoch(), 0, "a torn write must not commit an epoch");
}

#[test]
fn force_close_unblocks_a_parked_session() {
    // A session blocked reading an idle connection must come back
    // when its closer fires — this is what drain leans on.
    let db = SharedDb::new("faults", "name");
    let admission = Admission::new(4, 1, db.metrics());
    let (client, server_end) = mem_pair();
    let closer = server_end.closer();
    let t = std::thread::spawn(move || {
        let mut session = Session::new(server_end, db, admission);
        session.run(); // parks in read_frame immediately
        true
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    closer.close();
    assert!(t.join().unwrap(), "session must return after force-close");
    drop(client);
}
