//! End-to-end over real TCP: the accept loop, worker cap, and drain.
//! Kept small and generously timed — the deterministic behaviour is
//! covered by the in-memory suites; this proves the TCP plumbing.

use std::time::Duration;

use cdb_model::Atom;
use cdb_server::{Client, ClientError, Response, Server, ServerConfig};

fn shared_db() -> cdb_core::shared::SharedDb {
    cdb_core::shared::SharedDb::new("tcp", "name")
}

#[test]
fn serve_and_drain_over_tcp() {
    let db = shared_db();
    let server = Server::bind(db.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::dial(&addr).unwrap();
    assert_eq!(client.hello("tcp-test").unwrap(), "tcp");
    client.ping().unwrap();
    client
        .add("alice", 1, "GABA-A", vec![("tm".to_string(), Atom::Int(4))])
        .unwrap();
    let (epoch, value) = client.get("GABA-A", "tm").unwrap();
    assert_eq!(value, Atom::Int(4));
    assert_eq!(epoch, 1);
    let stats = client.stats().unwrap();
    assert!(
        stats.contains("server.req.latency_ns"),
        "stats must include the request-latency histogram: {stats}"
    );
    client.close().unwrap();
    drop(client);

    // A second client mid-drain: reads fine, writes refused.
    let mut late = Client::dial(&addr).unwrap();
    late.hello("late").unwrap();
    server.admission().begin_drain();
    let (_, keys) = late.entries().unwrap();
    assert_eq!(keys, vec!["GABA-A".to_string()]);
    let err = late
        .add("bob", 2, "5-HT3", vec![])
        .expect_err("writes must be refused during drain");
    assert!(
        matches!(
            &err,
            ClientError::Server {
                code: cdb_server::ErrCode::Shutdown,
                ..
            }
        ),
        "got {err:?}"
    );
    drop(late);

    let report = server.drain(Duration::from_secs(2));
    assert!(report.sessions_served >= 2);
    // State after drain: exactly the acknowledged write.
    assert_eq!(
        db.snapshot().entry_keys().unwrap(),
        vec!["GABA-A".to_string()]
    );
}

#[test]
fn worker_cap_sheds_connections_with_retry() {
    let db = shared_db();
    let server = Server::bind(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            slots: 4,
            retry_hint_ms: 9,
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // First connection occupies the only worker.
    let mut first = Client::dial(&addr).unwrap();
    first.hello("occupant").unwrap();

    // The next connection is answered with one Retry frame and closed.
    // The accept loop is asynchronous, so poll until it reacts.
    let mut saw_retry = false;
    for _ in 0..100 {
        let mut second = Client::dial(&addr).unwrap();
        match second.request(&cdb_server::Request::Ping) {
            Ok(Response::Retry { after_hint_ms }) => {
                assert_eq!(after_hint_ms, 9);
                saw_retry = true;
                break;
            }
            // Raced the registry sweep (the first session not yet
            // counted, or the shed frame lost to the close): retry.
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert!(saw_retry, "over-capacity connection never saw Retry");
    assert!(db.metrics().counter("server.conn.shed").get() >= 1);

    // The occupant is unaffected.
    first.ping().unwrap();
    drop(first);
    server.drain(Duration::from_secs(2));
}

#[test]
fn drain_force_closes_an_idle_session() {
    let db = shared_db();
    let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut idle = Client::dial(&addr).unwrap();
    idle.hello("idler").unwrap();
    // Give the accept loop time to register the session, then drain
    // with a short deadline: the idle connection must be force-closed
    // rather than stalling shutdown forever.
    std::thread::sleep(Duration::from_millis(30));
    let report = server.drain(Duration::from_millis(100));
    assert_eq!(report.forced, 1, "idle session should be force-closed");
    // The client now sees a dead connection.
    assert!(idle.ping().is_err());
}
