//! A log-structured page heap over the [`Io`](crate::io::Io) trait.
//!
//! The paged backing store keeps the curated tree, provenance store,
//! and archive fat-nodes as fixed-capacity *pages* so working sets can
//! exceed RAM (ROADMAP item 2; see `crate::buffer` for the pool that
//! serves reads and `crate::paged` for the object encoding on top).
//!
//! The heap is **append-only**: writing a page appends a new
//! checksummed record; the in-memory page table maps each page id to
//! its newest record, and older versions simply stay behind it. That
//! shape is what makes crash safety compositional with the rest of the
//! storage layer:
//!
//! * torn tails are handled exactly like the WAL — the opening scan
//!   stops at the first record that fails its CRC or length check and
//!   truncates the device there, falling back to the previous durable
//!   version of any page whose newest record was torn;
//! * a checkpoint anchor (see `cdb_curation::wire::PagedRef`) names a
//!   byte watermark, and because earlier bytes are never rewritten, a
//!   durable anchor always references a durable heap prefix (the heap
//!   is flushed *before* the anchor installs);
//! * [`FaultyIo`](crate::io::FaultyIo) injection — torn writes, flush
//!   caps, bit rot, short reads — applies to the heap unchanged, which
//!   is what `crates/storage/tests/buffer_faults.rs` exercises at
//!   every byte offset.
//!
//! Record layout after the 8-byte magic header:
//!
//! ```text
//! page_id: u64le | version: u64le | len: u32le | crc: u32le | payload
//! ```
//!
//! with the CRC-32 computed over `page_id | version | len | payload`,
//! mirroring the WAL frame discipline in [`crate::frame`].

use std::collections::BTreeMap;

use crate::crc;
use crate::io::{read_exact_at, Io};
use crate::StorageError;

/// Maximum payload bytes per page record. Objects larger than a page
/// are chunked by the layer above (`crate::paged`).
pub const PAGE_SIZE: usize = 4096;

/// Magic bytes opening a page-heap device.
pub const PAGE_MAGIC: &[u8; 8] = b"CDBPGH01";

/// Bytes of a page record header: page id (8) + version (8) + len (4)
/// + crc (4).
pub const PAGE_RECORD_HEADER: u64 = 24;

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Byte offset of the record's payload.
    payload_at: u64,
    len: u32,
    version: u64,
    crc: u32,
}

/// A page heap: the latest durable-or-pending version of every page,
/// served from an append-only record log.
#[derive(Debug)]
pub struct PageStore<I: Io> {
    io: I,
    table: BTreeMap<u64, Slot>,
    /// Logical end of valid records (next append offset).
    end: u64,
}

fn record_crc(page: u64, version: u64, payload: &[u8]) -> u32 {
    let mut h = crc::Hasher::new();
    h.update(&page.to_le_bytes());
    h.update(&version.to_le_bytes());
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    h.finish()
}

impl<I: Io> PageStore<I> {
    /// Opens a heap, creating it when the device is empty. The opening
    /// scan validates every record and truncates the device at the
    /// first torn or corrupt one — the page table then maps each page
    /// to its newest *surviving* record.
    ///
    /// `limit`, when given, is a checkpoint-anchor watermark: records
    /// that end past it are discarded (and truncated away) even if
    /// they are intact, so the materialized table is exactly the state
    /// the anchor covered.
    pub fn open(io: I, limit: Option<u64>) -> Result<Self, StorageError> {
        if io.base() != 0 {
            return Err(StorageError::Corrupt(
                "page heap requires an unsegmented device".into(),
            ));
        }
        let mut store = PageStore {
            io,
            table: BTreeMap::new(),
            end: 0,
        };
        if store.io.is_empty()? {
            store.io.append(PAGE_MAGIC)?;
            store.end = PAGE_MAGIC.len() as u64;
            return Ok(store);
        }
        let mut magic = [0u8; 8];
        if read_exact_at(&mut store.io, 0, &mut magic).is_err() || &magic != PAGE_MAGIC {
            return Err(StorageError::Corrupt("bad page heap magic".into()));
        }
        let device_len = store.io.len()?;
        let stop = limit.unwrap_or(u64::MAX).min(device_len);
        let mut pos = PAGE_MAGIC.len() as u64;
        while pos + PAGE_RECORD_HEADER <= stop {
            let mut header = [0u8; PAGE_RECORD_HEADER as usize];
            if read_exact_at(&mut store.io, pos, &mut header).is_err() {
                break;
            }
            let page = u64::from_le_bytes(header[0..8].try_into().unwrap());
            let version = u64::from_le_bytes(header[8..16].try_into().unwrap());
            let len = u32::from_le_bytes(header[16..20].try_into().unwrap());
            let stored_crc = u32::from_le_bytes(header[20..24].try_into().unwrap());
            if len as usize > PAGE_SIZE {
                break;
            }
            let rec_end = pos + PAGE_RECORD_HEADER + u64::from(len);
            if rec_end > stop {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            if read_exact_at(&mut store.io, pos + PAGE_RECORD_HEADER, &mut payload).is_err() {
                break;
            }
            if record_crc(page, version, &payload) != stored_crc {
                break;
            }
            // Scan order is append order, so a later record for the
            // same page is always the newer version.
            store.table.insert(
                page,
                Slot {
                    payload_at: pos + PAGE_RECORD_HEADER,
                    len,
                    version,
                    crc: stored_crc,
                },
            );
            pos = rec_end;
        }
        store.end = pos;
        if device_len > pos {
            store.io.truncate(pos)?;
        }
        Ok(store)
    }

    /// Appends a new version of `page`. Not durable until [`flush`]
    /// (`Self::flush`) succeeds.
    pub fn write_page(&mut self, page: u64, payload: &[u8]) -> Result<(), StorageError> {
        if payload.len() > PAGE_SIZE {
            return Err(StorageError::Io(format!(
                "page payload of {} bytes exceeds PAGE_SIZE ({PAGE_SIZE})",
                payload.len()
            )));
        }
        let version = self.table.get(&page).map(|s| s.version + 1).unwrap_or(1);
        let crc = record_crc(page, version, payload);
        let mut rec = Vec::with_capacity(PAGE_RECORD_HEADER as usize + payload.len());
        rec.extend_from_slice(&page.to_le_bytes());
        rec.extend_from_slice(&version.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc.to_le_bytes());
        rec.extend_from_slice(payload);
        self.io.append(&rec)?;
        self.table.insert(
            page,
            Slot {
                payload_at: self.end + PAGE_RECORD_HEADER,
                len: payload.len() as u32,
                version,
                crc,
            },
        );
        self.end += rec.len() as u64;
        Ok(())
    }

    /// Reads the newest version of `page`, re-verifying its checksum
    /// (bit rot between open and read is caught here, not served).
    pub fn read_page(&mut self, page: u64) -> Result<Option<Vec<u8>>, StorageError> {
        let Some(slot) = self.table.get(&page).copied() else {
            return Ok(None);
        };
        let mut payload = vec![0u8; slot.len as usize];
        read_exact_at(&mut self.io, slot.payload_at, &mut payload)?;
        if record_crc(page, slot.version, &payload) != slot.crc {
            return Err(StorageError::Corrupt(format!(
                "page {page} failed its checksum on read"
            )));
        }
        Ok(Some(payload))
    }

    /// Whether the heap has a record for `page`.
    pub fn contains(&self, page: u64) -> bool {
        self.table.contains_key(&page)
    }

    /// Flushes appended records to durable storage.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        self.io.flush()
    }

    /// Logical heap length: the end of the newest valid record, which
    /// a checkpoint anchor records as its watermark.
    pub fn len(&self) -> u64 {
        self.end
    }

    /// Whether the heap holds no page records.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of distinct pages with a live record.
    pub fn page_count(&self) -> usize {
        self.table.len()
    }

    /// All page ids with a live record, in id order.
    pub fn page_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.table.keys().copied()
    }

    /// Bytes occupied by live (newest-version) records, header
    /// included — the numerator of the heap's utilization; the
    /// denominator is [`len`](Self::len).
    pub fn live_bytes(&self) -> u64 {
        self.table
            .values()
            .map(|s| PAGE_RECORD_HEADER + u64::from(s.len))
            .sum()
    }

    /// Consumes the store, returning the underlying device (crash
    /// harnesses take the durable image from it).
    pub fn into_io(self) -> I {
        self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultPlan, FaultyIo, MemIo};

    #[test]
    fn create_write_read_round_trip() {
        let mut s = PageStore::open(MemIo::new(), None).unwrap();
        assert!(s.is_empty());
        s.write_page(7, b"hello").unwrap();
        s.write_page(9, &[0xAB; PAGE_SIZE]).unwrap();
        assert_eq!(s.read_page(7).unwrap().unwrap(), b"hello");
        assert_eq!(s.read_page(9).unwrap().unwrap(), vec![0xAB; PAGE_SIZE]);
        assert_eq!(s.read_page(8).unwrap(), None);
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn newest_version_wins_across_reopen() {
        let mut s = PageStore::open(MemIo::new(), None).unwrap();
        s.write_page(1, b"v1").unwrap();
        s.write_page(1, b"v2").unwrap();
        s.write_page(1, b"v3").unwrap();
        s.flush().unwrap();
        let io = s.into_io();
        let mut back = PageStore::open(MemIo::from_bytes(io.bytes().to_vec()), None).unwrap();
        assert_eq!(back.read_page(1).unwrap().unwrap(), b"v3");
        assert_eq!(back.page_count(), 1);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let mut s = PageStore::open(MemIo::new(), None).unwrap();
        assert!(s.write_page(0, &vec![0u8; PAGE_SIZE + 1]).is_err());
    }

    #[test]
    fn torn_tail_falls_back_to_previous_version_at_every_offset() {
        // Build a heap with two versions of one page plus a second
        // page, then replay a crash at every byte offset: the reopened
        // table must always be a valid prefix state — never a torn
        // payload served as truth.
        let mut s = PageStore::open(MemIo::new(), None).unwrap();
        s.write_page(1, b"one-v1").unwrap();
        let after_v1 = s.len();
        s.write_page(2, b"two").unwrap();
        let after_two = s.len();
        s.write_page(1, b"one-v2").unwrap();
        s.flush().unwrap();
        let image = s.into_io().bytes().to_vec();
        for cut in 0..=image.len() {
            let dev = MemIo::from_bytes(image[..cut].to_vec());
            if (cut as u64) < PAGE_MAGIC.len() as u64 && cut > 0 {
                assert!(PageStore::open(dev, None).is_err(), "cut {cut}");
                continue;
            }
            let mut back = PageStore::open(dev, None).unwrap();
            let p1 = back.read_page(1).unwrap();
            if (cut as u64) >= image.len() as u64 {
                assert_eq!(p1.unwrap(), b"one-v2");
            } else if (cut as u64) >= after_v1 {
                // v2's record is torn: v1 must survive.
                let got = p1.unwrap();
                assert!(got == b"one-v1" || got == b"one-v2", "cut {cut}");
            }
            if (cut as u64) >= after_two {
                assert_eq!(back.read_page(2).unwrap().unwrap(), b"two");
            }
        }
    }

    #[test]
    fn anchor_limit_restores_the_watermarked_state() {
        let mut s = PageStore::open(MemIo::new(), None).unwrap();
        s.write_page(1, b"old").unwrap();
        let watermark = s.len();
        s.write_page(1, b"new").unwrap();
        s.flush().unwrap();
        let image = s.into_io().bytes().to_vec();
        let mut back = PageStore::open(MemIo::from_bytes(image.clone()), Some(watermark)).unwrap();
        assert_eq!(back.read_page(1).unwrap().unwrap(), b"old");
        assert_eq!(back.len(), watermark);
        // Appends after a limited open go at the watermark, not the
        // old device end.
        back.write_page(3, b"x").unwrap();
        assert_eq!(back.read_page(3).unwrap().unwrap(), b"x");
    }

    #[test]
    fn bit_rot_is_caught_by_the_opening_scan() {
        let mut s = PageStore::open(MemIo::new(), None).unwrap();
        s.write_page(1, b"payload-bytes").unwrap();
        s.flush().unwrap();
        let image = s.into_io().bytes().to_vec();
        // Flip one payload bit: the record fails its CRC and the scan
        // drops it (table has no page 1).
        let plan = FaultPlan {
            bit_flips: vec![(PAGE_MAGIC.len() as u64 + PAGE_RECORD_HEADER + 2, 0x04)],
            ..FaultPlan::default()
        };
        let mut io = FaultyIo::with_contents(image, plan);
        io.flush().unwrap();
        let rotten = io.crash();
        let mut back = PageStore::open(MemIo::from_bytes(rotten), None).unwrap();
        assert_eq!(back.read_page(1).unwrap(), None);
    }
}
