//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! checksum guarding every WAL and checkpoint frame.
//!
//! Table-driven, one 256-entry table built at first use. The choice of
//! CRC-32 over a cryptographic hash is deliberate: the threat model is
//! torn writes and bit rot, not an adversary, and a 4-byte checksum
//! keeps the per-frame overhead constant and small.

/// Computes the CRC-32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Hasher::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC-32 hasher, for checksumming a frame built in parts.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &b in bytes {
            let idx = (self.state ^ u32::from(b)) & 0xFF;
            self.state = (self.state >> 8) ^ table[idx as usize];
        }
    }

    /// Finalizes and returns the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"curated databases are actively maintained";
        let mut h = Hasher::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"frame payload bytes";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.to_vec();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip byte {i} bit {bit}");
            }
        }
    }
}
