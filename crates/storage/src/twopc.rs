//! Two-phase-commit journaling for cross-shard curation transactions.
//!
//! A cross-shard operation (merge or split of entities living on
//! different shards, copy-paste across shards with lifecycle effects on
//! both sides) must be atomic even though each shard owns its own WAL.
//! The protocol journals it as two frame kinds in *every* participant's
//! log:
//!
//! ```text
//! prepare := gid:u64 coordinator:u32 nparts:u32 part:u32*
//!            nframes:u32 (kind:u8 len:u32 payload)*
//! decide  := gid:u64 commit:u8
//! ```
//!
//! The PREPARE carries the transaction's complete effect on that shard
//! as ordinary WAL frames (`FRAME_TXN`/`FRAME_COMMIT`/`FRAME_PUBLISH`/
//! `FRAME_AUX`), **not yet applied**: recovery adopts the inner frames
//! only when a DECIDE(commit) for the same `gid` follows in the log, or
//! when the in-doubt resolution pass (consulting every shard's decision
//! record) finds a commit decision elsewhere. A prepared transaction
//! with no decision anywhere is presumed aborted.
//!
//! Why this is safe (the in-doubt resolution argument, DESIGN.md §S27):
//! the coordinator appends DECIDE(commit) only after every
//! participant's PREPARE is durably synced, and the client is
//! acknowledged only after the coordinator's DECIDE is durable. So if
//! any shard recovers with a committed PREPARE lacking its DECIDE, the
//! global outcome is fully determined by the coordinator's log (plus
//! the decision records its checkpoints carry): a commit decision
//! exists there iff the transaction was allowed to commit anywhere.
//! Presumed abort is sound because no DECIDE(commit) can be durable
//! anywhere while any participant's PREPARE is still torn.

use std::collections::BTreeMap;

use cdb_curation::wire::{put_u32, put_u64, Reader, WireError};

use crate::frame::{scan, FRAME_AUX, FRAME_COMMIT, FRAME_DECIDE, FRAME_PUBLISH, FRAME_TXN};
use crate::io::Io;
use crate::StorageError;

/// A PREPARE frame payload: one cross-shard transaction's effect on
/// the shard whose WAL holds it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareRecord {
    /// Global transaction id, unique across the sharded database's
    /// lifetime (recovery re-seeds the counter past every gid it saw,
    /// so a stale decision record can never resolve a *new* txn).
    pub gid: u64,
    /// Shard index of the coordinator — the shard whose DECIDE is the
    /// commit point.
    pub coordinator: u32,
    /// Every participating shard index, coordinator included.
    pub participants: Vec<u32>,
    /// The transaction's effect on this shard as ordinary WAL frames
    /// `(kind, payload)`, adopted in order on commit. 2PC kinds may not
    /// nest.
    pub frames: Vec<(u8, Vec<u8>)>,
}

/// A DECIDE frame payload: the outcome for a prepared transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecideRecord {
    /// The prepared transaction this decides.
    pub gid: u64,
    /// `true` = commit (adopt the PREPARE's frames), `false` = abort.
    pub commit: bool,
}

/// Encodes a [`PrepareRecord`] as a `FRAME_PREPARE` payload.
pub fn encode_prepare(p: &PrepareRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, p.gid);
    put_u32(&mut out, p.coordinator);
    put_u32(&mut out, p.participants.len() as u32);
    for part in &p.participants {
        put_u32(&mut out, *part);
    }
    put_u32(&mut out, p.frames.len() as u32);
    for (kind, payload) in &p.frames {
        out.push(*kind);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(payload);
    }
    out
}

/// Decodes a `FRAME_PREPARE` payload, rejecting nested 2PC kinds.
pub fn decode_prepare(bytes: &[u8]) -> Result<PrepareRecord, WireError> {
    let mut r = Reader::new(bytes);
    let gid = r.u64()?;
    let coordinator = r.u32()?;
    let nparts = r.u32()? as usize;
    let mut participants = Vec::with_capacity(nparts.min(65_536));
    for _ in 0..nparts {
        participants.push(r.u32()?);
    }
    let nframes = r.u32()? as usize;
    let mut frames = Vec::with_capacity(nframes.min(65_536));
    for _ in 0..nframes {
        let kind = r.u8()?;
        if !matches!(kind, FRAME_TXN | FRAME_COMMIT | FRAME_PUBLISH | FRAME_AUX) {
            return Err(WireError::BadTag("prepare inner frame kind", kind));
        }
        let len = r.u32()? as usize;
        frames.push((kind, r.bytes(len)?.to_vec()));
    }
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(PrepareRecord {
        gid,
        coordinator,
        participants,
        frames,
    })
}

/// Encodes a [`DecideRecord`] as a `FRAME_DECIDE` payload.
pub fn encode_decide(d: &DecideRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    put_u64(&mut out, d.gid);
    out.push(u8::from(d.commit));
    out
}

/// Decodes a `FRAME_DECIDE` payload.
pub fn decode_decide(bytes: &[u8]) -> Result<DecideRecord, WireError> {
    let mut r = Reader::new(bytes);
    let gid = r.u64()?;
    let commit = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(WireError::BadTag("decide flag", other)),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(DecideRecord { gid, commit })
}

/// Pre-pass for sharded recovery: scans one shard's WAL for DECIDE
/// frames only, returning its decision record `gid → commit`. The
/// union of every shard's decisions (plus any carried by checkpoints)
/// resolves in-doubt PREPAREs on the other shards. Torn tails are
/// tolerated exactly as in recovery — the scan stops at the first bad
/// frame, and a torn DECIDE is no DECIDE.
pub fn scan_decisions(io: &mut dyn Io) -> Result<BTreeMap<u64, bool>, StorageError> {
    let outcome = scan(io, crate::frame::WAL_MAGIC)?;
    let mut decisions = BTreeMap::new();
    for frame in &outcome.frames {
        if frame.kind == FRAME_DECIDE {
            let d = decode_decide(&frame.payload).map_err(StorageError::Wire)?;
            decisions.insert(d.gid, d.commit);
        }
    }
    Ok(decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, FRAME_PREPARE, WAL_MAGIC};
    use crate::io::MemIo;

    fn sample_prepare() -> PrepareRecord {
        PrepareRecord {
            gid: 7,
            coordinator: 1,
            participants: vec![1, 3],
            frames: vec![
                (FRAME_COMMIT, b"txn-bytes".to_vec()),
                (FRAME_AUX, b"event".to_vec()),
            ],
        }
    }

    #[test]
    fn prepare_round_trips() {
        let p = sample_prepare();
        assert_eq!(decode_prepare(&encode_prepare(&p)).unwrap(), p);
        let empty = PrepareRecord {
            gid: 0,
            coordinator: 0,
            participants: vec![0],
            frames: Vec::new(),
        };
        assert_eq!(decode_prepare(&encode_prepare(&empty)).unwrap(), empty);
    }

    #[test]
    fn decide_round_trips_and_rejects_bad_flag() {
        for commit in [false, true] {
            let d = DecideRecord { gid: 9, commit };
            assert_eq!(decode_decide(&encode_decide(&d)).unwrap(), d);
        }
        let mut bytes = encode_decide(&DecideRecord {
            gid: 9,
            commit: true,
        });
        *bytes.last_mut().unwrap() = 2;
        assert!(decode_decide(&bytes).is_err());
    }

    #[test]
    fn nested_twopc_kinds_are_rejected() {
        let mut p = sample_prepare();
        p.frames.push((FRAME_PREPARE, Vec::new()));
        assert!(decode_prepare(&encode_prepare(&p)).is_err());
    }

    #[test]
    fn scan_decisions_reads_only_decides_and_tolerates_torn_tails() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(FRAME_TXN, b"whatever"));
        bytes.extend_from_slice(&encode_frame(
            FRAME_DECIDE,
            &encode_decide(&DecideRecord {
                gid: 3,
                commit: true,
            }),
        ));
        let clean_len = bytes.len();
        bytes.extend_from_slice(&encode_frame(
            FRAME_DECIDE,
            &encode_decide(&DecideRecord {
                gid: 4,
                commit: false,
            }),
        ));
        for cut in clean_len..bytes.len() {
            let mut io = MemIo::from_bytes(bytes[..cut].to_vec());
            let d = scan_decisions(&mut io).unwrap();
            assert_eq!(d.len(), 1, "cut {cut}");
            assert_eq!(d.get(&3), Some(&true));
        }
        let mut io = MemIo::from_bytes(bytes);
        let d = scan_decisions(&mut io).unwrap();
        assert_eq!(d.get(&4), Some(&false));
    }
}
