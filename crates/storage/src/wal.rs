//! The durable log: an append-only sequence of checksummed frames,
//! plus the checkpoint file.
//!
//! [`DurableLog::open`] is self-healing: it scans the device, keeps the
//! longest valid frame prefix, and **truncates the torn tail** so the
//! next append lands on a clean boundary. Appends are buffered by the
//! device until [`DurableLog::sync`]; a transaction is *committed* once
//! the sync covering its frame returns.
//!
//! Checkpoints live in a separate device (file) from the WAL and are
//! written whole — scan-validated on read, and simply ignored when
//! invalid, because the WAL retains every transaction frame and can
//! always rebuild from scratch. The checkpoint is an optimization, the
//! log is the truth.

use cdb_curation::wire::{decode_checkpoint, encode_checkpoint, Checkpoint};

use crate::frame::{encode_frame, scan, Frame, ScanOutcome, CKPT_MAGIC, FRAME_CKPT, WAL_MAGIC};
use crate::io::Io;
use crate::StorageError;

/// An open write-ahead log over some [`Io`] device.
#[derive(Debug)]
pub struct DurableLog<I: Io> {
    io: I,
    appended_since_sync: u64,
}

impl<I: Io> DurableLog<I> {
    /// Initializes a fresh log on `io` (truncating whatever was
    /// there) and syncs the header.
    pub fn create(mut io: I) -> Result<Self, StorageError> {
        io.truncate(0)?;
        io.append(WAL_MAGIC)?;
        io.flush()?;
        Ok(DurableLog {
            io,
            appended_since_sync: 0,
        })
    }

    /// Opens an existing log: scans the valid prefix, truncates any
    /// torn tail, and returns the surviving frames. A device with a
    /// missing or torn header (crash before creation finished, or an
    /// empty file) is re-initialized to an empty log.
    pub fn open(mut io: I) -> Result<(Self, ScanOutcome), StorageError> {
        let mut outcome = scan(&mut io, WAL_MAGIC)?;
        if !outcome.header_ok {
            io.truncate(0)?;
            io.append(WAL_MAGIC)?;
            io.flush()?;
        } else if outcome.bytes_dropped > 0 {
            io.truncate(outcome.valid_len)?;
            io.flush()?;
        }
        if !outcome.header_ok {
            outcome.valid_len = WAL_MAGIC.len() as u64;
        }
        Ok((
            DurableLog {
                io,
                appended_since_sync: 0,
            },
            outcome,
        ))
    }

    /// Appends one frame. Not durable until [`DurableLog::sync`].
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
        if let Err(e) = self.io.append(&encode_frame(kind, payload)) {
            cdb_obs::global()
                .counter("storage.error.append_failed")
                .inc();
            return Err(e);
        }
        self.appended_since_sync += 1;
        Ok(())
    }

    /// Forces all appended frames to durable storage. This is the
    /// commit point.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if let Err(e) = self.io.flush() {
            cdb_obs::global().counter("storage.error.sync_failed").inc();
            return Err(e);
        }
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Frames appended since the last sync (0 = everything durable,
    /// as far as the device is honest).
    pub fn unsynced_frames(&self) -> u64 {
        self.appended_since_sync
    }

    /// Device length in bytes, as seen by this handle.
    pub fn len(&self) -> Result<u64, StorageError> {
        self.io.len()
    }

    /// Whether the log holds no frames (header only).
    pub fn is_empty(&self) -> Result<bool, StorageError> {
        Ok(self.len()? <= WAL_MAGIC.len() as u64)
    }

    /// Retires log history that a durably installed checkpoint covers:
    /// forwards to the device's [`Io::reclaim`]. Segmented devices
    /// archive or delete fully-covered segments and advance their
    /// logical base; plain devices return `Ok(None)` (nothing to
    /// retire).
    pub fn reclaim(
        &mut self,
        covered: u64,
    ) -> Result<Option<crate::io::ReclaimStats>, StorageError> {
        self.io.reclaim(covered)
    }

    /// Live segments backing this log (1 for unsegmented devices).
    pub fn live_segments(&self) -> u64 {
        self.io.live_segments()
    }

    /// Consumes the log, returning the device (for crash simulation).
    pub fn into_io(self) -> I {
        self.io
    }
}

/// Writes a checkpoint snapshot to `io` (replacing any previous one)
/// and syncs it.
///
/// **Not crash-atomic**: this is `truncate(0)` + append on the live
/// device, so a crash inside the window destroys the previous snapshot
/// too. It remains as the raw single-device primitive (and as the slot
/// writer's building block); durable installs go through
/// [`crate::ckpt::CheckpointStore`], which guarantees one valid
/// checkpoint always survives.
pub fn write_checkpoint(io: &mut dyn Io, ck: &Checkpoint) -> Result<(), StorageError> {
    io.truncate(0)?;
    io.append(CKPT_MAGIC)?;
    io.append(&encode_frame(FRAME_CKPT, &encode_checkpoint(ck)))?;
    io.flush()
}

/// Reads a checkpoint back, returning `None` when the device holds no
/// usable snapshot (missing, torn, corrupt, or the wrong kind of
/// frame). Recovery treats `None` as "replay the whole log".
pub fn read_checkpoint(io: &mut dyn Io) -> Result<Option<Checkpoint>, StorageError> {
    let outcome = scan(io, CKPT_MAGIC)?;
    if !outcome.header_ok || outcome.frames_dropped > 0 {
        return Ok(None);
    }
    match outcome.frames.as_slice() {
        [Frame {
            kind: FRAME_CKPT,
            payload,
        }] => Ok(decode_checkpoint(payload).ok()),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_TXN;
    use crate::io::{FaultPlan, FaultyIo, MemIo};
    use cdb_curation::ops::CuratedTree;
    use cdb_curation::provstore::StoreMode;

    #[test]
    fn create_append_sync_reopen() {
        let mut log = DurableLog::create(MemIo::new()).unwrap();
        log.append(FRAME_TXN, b"one").unwrap();
        log.append(FRAME_TXN, b"two").unwrap();
        assert_eq!(log.unsynced_frames(), 2);
        log.sync().unwrap();
        assert_eq!(log.unsynced_frames(), 0);
        let io = log.into_io();
        let (_, out) = DurableLog::open(io).unwrap();
        assert_eq!(out.frames.len(), 2);
        assert_eq!(out.frames[1].payload, b"two");
    }

    #[test]
    fn open_truncates_torn_tail_so_appends_land_clean() {
        let mut log = DurableLog::create(FaultyIo::new(FaultPlan::default())).unwrap();
        log.append(FRAME_TXN, b"committed").unwrap();
        log.sync().unwrap();
        log.append(FRAME_TXN, b"lost-in-crash").unwrap(); // never synced
        let image = log.into_io().crash();

        let (mut log, out) = DurableLog::open(MemIo::from_bytes(image)).unwrap();
        assert_eq!(out.frames.len(), 1);
        log.append(FRAME_TXN, b"after-recovery").unwrap();
        log.sync().unwrap();
        let (_, out2) = DurableLog::open(log.into_io()).unwrap();
        assert_eq!(out2.frames.len(), 2);
        assert_eq!(out2.frames[1].payload, b"after-recovery");
        assert_eq!(out2.frames_dropped, 0);
    }

    #[test]
    fn crash_before_header_reinitializes() {
        let (log, out) = DurableLog::open(MemIo::from_bytes(b"CDB".to_vec())).unwrap();
        assert!(!out.header_ok);
        assert!(log.is_empty().unwrap());
        let (_, out2) = DurableLog::open(log.into_io()).unwrap();
        assert!(out2.header_ok);
        assert_eq!(out2.frames.len(), 0);
    }

    #[test]
    fn checkpoint_round_trips_and_corruption_reads_as_none() {
        let mut db = CuratedTree::new("ck", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("c", 1);
        t.insert(root, "entry", None).unwrap();
        t.commit();
        let ck = Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone());
        let mut io = MemIo::new();
        write_checkpoint(&mut io, &ck).unwrap();
        assert_eq!(read_checkpoint(&mut io).unwrap(), Some(ck.clone()));

        // Flip any byte: the checkpoint must read as absent, never as
        // a different checkpoint.
        let bytes = io.bytes().to_vec();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let mut bad = MemIo::from_bytes(corrupt);
            let got = read_checkpoint(&mut bad).unwrap();
            assert!(got.is_none() || got == Some(ck.clone()), "byte {i}");
        }
    }
}
