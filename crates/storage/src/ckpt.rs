//! Crash-atomic checkpoint installation.
//!
//! The raw single-device writer ([`crate::write_checkpoint`]) is
//! `truncate(0)` + append: a crash inside that window destroys the
//! *previous* checkpoint too, silently degrading every future recovery
//! to full replay. [`CheckpointStore`] closes the window two ways:
//!
//! - **Directory store** — the snapshot is written to a temp file,
//!   fsynced, then atomically `rename`d over the live name (and the
//!   directory fsynced). A crash leaves either the old file or the new
//!   one, never a torn mix.
//! - **Two-slot store** — for raw [`Io`] devices with no rename
//!   primitive: two slots written alternately, each framed with a
//!   monotonically increasing generation number. An install targets
//!   the slot *not* holding the newest valid checkpoint, so a torn
//!   install can only destroy the older of the two; load picks the
//!   highest-generation slot that validates.

use cdb_curation::wire::{decode_checkpoint, encode_checkpoint, put_u64, Checkpoint, Reader};

use crate::frame::{encode_frame, scan, Frame, CKPT_MAGIC, FRAME_CKPT};
use crate::io::{sync_parent_dir, FileIo, Io, MemIo};
use crate::wal::{read_checkpoint, write_checkpoint};
use crate::StorageError;

/// A crash-atomic home for the checkpoint snapshot.
#[derive(Debug)]
pub struct CheckpointStore {
    kind: StoreKind,
}

#[derive(Debug)]
enum StoreKind {
    Slots {
        slots: [Box<dyn Io>; 2],
    },
    Dir {
        dir: std::path::PathBuf,
        name: String,
    },
}

impl CheckpointStore {
    /// A two-slot store over two raw devices. Installs alternate
    /// between the slots by generation so one valid checkpoint always
    /// survives a torn install.
    pub fn slots(a: Box<dyn Io>, b: Box<dyn Io>) -> Self {
        CheckpointStore {
            kind: StoreKind::Slots { slots: [a, b] },
        }
    }

    /// A two-slot store over in-memory devices (tests, benches).
    pub fn mem() -> Self {
        CheckpointStore::slots(Box::new(MemIo::new()), Box::new(MemIo::new()))
    }

    /// A directory store: the live checkpoint is `<dir>/<name>.ckpt`,
    /// installs go through `<dir>/<name>.ckpt.tmp` + rename.
    pub fn dir(dir: impl Into<std::path::PathBuf>, name: impl Into<String>) -> Self {
        CheckpointStore {
            kind: StoreKind::Dir {
                dir: dir.into(),
                name: name.into(),
            },
        }
    }

    /// Loads the newest valid checkpoint, or `None` when no usable
    /// snapshot exists (recovery then replays the whole log).
    pub fn load(&mut self) -> Result<Option<Checkpoint>, StorageError> {
        match &mut self.kind {
            StoreKind::Slots { slots } => {
                let mut best: Option<(u64, Checkpoint)> = None;
                for slot in slots.iter_mut() {
                    if let Some((gen, ck)) = read_checkpoint_slot(slot.as_mut())? {
                        if best.as_ref().is_none_or(|(g, _)| gen > *g) {
                            best = Some((gen, ck));
                        }
                    }
                }
                Ok(best.map(|(_, ck)| ck))
            }
            StoreKind::Dir { dir, name } => {
                let path = dir.join(format!("{name}.ckpt"));
                if !path.exists() {
                    return Ok(None);
                }
                let mut io = FileIo::open(&path)?;
                read_checkpoint(&mut io)
            }
        }
    }

    /// Atomically installs `ck` as the live checkpoint. On any crash
    /// inside this call, a subsequent [`CheckpointStore::load`] returns
    /// either the previous checkpoint or the new one — never neither.
    pub fn install(&mut self, ck: &Checkpoint) -> Result<(), StorageError> {
        let _span = cdb_obs::SpanGuard::enter("storage.ckpt.install");
        match &mut self.kind {
            StoreKind::Slots { slots } => {
                let gens = [
                    read_checkpoint_slot(slots[0].as_mut())?.map(|(g, _)| g),
                    read_checkpoint_slot(slots[1].as_mut())?.map(|(g, _)| g),
                ];
                // Overwrite the slot NOT holding the newest valid
                // checkpoint; if both or neither are valid, any order
                // with a higher generation works.
                let target = match (gens[0], gens[1]) {
                    (Some(a), Some(b)) => usize::from(a >= b),
                    (Some(_), None) => 1,
                    _ => 0,
                };
                let gen = gens[0].unwrap_or(0).max(gens[1].unwrap_or(0)) + 1;
                write_checkpoint_slot(slots[target].as_mut(), gen, ck)
            }
            StoreKind::Dir { dir, name } => {
                std::fs::create_dir_all(&dir)
                    .map_err(|e| StorageError::Io(format!("mkdir {}: {e}", dir.display())))?;
                let tmp = dir.join(format!("{name}.ckpt.tmp"));
                let live = dir.join(format!("{name}.ckpt"));
                {
                    let mut io = FileIo::open(&tmp)?;
                    write_checkpoint(&mut io, ck)?;
                }
                std::fs::rename(&tmp, &live)
                    .map_err(|e| StorageError::Io(format!("rename {}: {e}", tmp.display())))?;
                sync_parent_dir(&live)
                    .map_err(|e| StorageError::Io(format!("sync dir of {}: {e}", live.display())))
            }
        }
    }
}

/// Writes one generation-framed checkpoint slot: magic, then a single
/// [`FRAME_CKPT`] frame whose payload is `gen:u64le` followed by the
/// encoded checkpoint. Not atomic on its own — atomicity comes from
/// the two-slot protocol above.
pub fn write_checkpoint_slot(
    io: &mut dyn Io,
    gen: u64,
    ck: &Checkpoint,
) -> Result<(), StorageError> {
    let mut payload = Vec::new();
    put_u64(&mut payload, gen);
    payload.extend_from_slice(&encode_checkpoint(ck));
    io.truncate(0)?;
    io.append(CKPT_MAGIC)?;
    io.append(&encode_frame(FRAME_CKPT, &payload))?;
    io.flush()
}

/// Reads a generation-framed checkpoint slot, returning `None` for
/// anything torn, corrupt, or absent.
pub fn read_checkpoint_slot(io: &mut dyn Io) -> Result<Option<(u64, Checkpoint)>, StorageError> {
    let outcome = scan(io, CKPT_MAGIC)?;
    if !outcome.header_ok || outcome.frames_dropped > 0 {
        return Ok(None);
    }
    let payload = match outcome.frames.as_slice() {
        [Frame {
            kind: FRAME_CKPT,
            payload,
        }] => payload,
        _ => return Ok(None),
    };
    let mut r = Reader::new(payload);
    let Ok(gen) = r.u64() else { return Ok(None) };
    let rest = r
        .bytes(r.remaining())
        .expect("remaining bytes are in range");
    Ok(decode_checkpoint(rest).ok().map(|ck| (gen, ck)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_curation::ops::CuratedTree;
    use cdb_curation::provstore::StoreMode;

    fn snapshot(label: &str) -> Checkpoint {
        let mut db = CuratedTree::new("ck", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("c", 1);
        t.insert(root, label, None).unwrap();
        t.commit();
        Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone())
    }

    #[test]
    fn slot_store_load_prefers_the_newest_generation() {
        let mut store = CheckpointStore::mem();
        assert_eq!(store.load().unwrap(), None);
        let ck1 = snapshot("one");
        store.install(&ck1).unwrap();
        assert_eq!(store.load().unwrap(), Some(ck1.clone()));
        let ck2 = snapshot("two");
        store.install(&ck2).unwrap();
        assert_eq!(store.load().unwrap(), Some(ck2.clone()));
        let ck3 = snapshot("three");
        store.install(&ck3).unwrap();
        assert_eq!(store.load().unwrap(), Some(ck3));
    }

    #[test]
    fn dir_store_installs_atomically_via_rename() {
        let dir = std::env::temp_dir().join(format!("cdb-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::dir(&dir, "db");
        assert_eq!(store.load().unwrap(), None);
        let ck = snapshot("one");
        store.install(&ck).unwrap();
        assert_eq!(store.load().unwrap(), Some(ck.clone()));
        assert!(!dir.join("db.ckpt.tmp").exists(), "tmp is renamed away");
        // A fresh store over the same directory sees the install.
        let mut again = CheckpointStore::dir(&dir, "db");
        assert_eq!(again.load().unwrap(), Some(ck));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
