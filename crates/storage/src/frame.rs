//! The WAL frame format and the corruption-tolerant scanner.
//!
//! A log file is a magic header followed by frames:
//!
//! ```text
//! file   := magic frame*
//! magic  := b"CDBWAL01"            (b"CDBCKP01" for checkpoint files)
//! frame  := kind:u8 len:u32le crc:u32le payload:[u8; len]
//! ```
//!
//! The CRC-32 covers `kind`, `len`, and `payload`, so a bit flip in
//! the 9-byte frame header is as detectable as one in the payload —
//! in particular a corrupted `len` cannot silently resynchronize the
//! scanner onto garbage.
//!
//! [`scan`] validates the longest good prefix and *stops at the first
//! bad frame*: once a length field is untrustworthy there is no way to
//! find the next frame boundary, so everything after the corruption is
//! reported as dropped. Combined with the append-only writer (a frame
//! is entirely within the synced prefix or entirely within the torn
//! tail), this yields the crash-consistency invariant: the scanned
//! prefix is exactly the committed prefix.

use crate::crc::Hasher;
use crate::io::{read_exact_at, Io};
use crate::StorageError;

/// Magic header for write-ahead-log files.
pub const WAL_MAGIC: &[u8; 8] = b"CDBWAL01";
/// Magic header for checkpoint files.
pub const CKPT_MAGIC: &[u8; 8] = b"CDBCKP01";

/// Frame kind: a committed curation transaction
/// (`cdb_curation::wire::encode_transaction` payload).
pub const FRAME_TXN: u8 = 1;
/// Frame kind: a publish point ([`crate::recovery::PublishRecord`]).
pub const FRAME_PUBLISH: u8 = 2;
/// Frame kind: auxiliary application data (opaque to the WAL; tagged
/// and interpreted by `cdb-core` — lifecycle events and notes).
pub const FRAME_AUX: u8 = 3;
/// Frame kind: a checkpoint snapshot
/// (`cdb_curation::wire::encode_checkpoint` payload; checkpoint files
/// only).
pub const FRAME_CKPT: u8 = 4;
/// Frame kind: an atomic commit — one transaction plus the auxiliary
/// records it produced, in a single frame so a torn write can never
/// separate a transaction from its side effects (see
/// [`crate::recovery::encode_commit`]).
pub const FRAME_COMMIT: u8 = 5;
/// Frame kind: a two-phase-commit PREPARE — a cross-shard transaction's
/// effects on *this* shard, journaled but not yet decided (see
/// [`crate::twopc::PrepareRecord`]). The inner frames are adopted only
/// when a matching DECIDE(commit) is found or resolved.
pub const FRAME_PREPARE: u8 = 6;
/// Frame kind: a two-phase-commit DECIDE — the outcome (commit or
/// abort) for a prepared cross-shard transaction (see
/// [`crate::twopc::DecideRecord`]).
pub const FRAME_DECIDE: u8 = 7;

/// Per-frame overhead: kind byte, length word, checksum word.
pub const FRAME_HEADER: u64 = 9;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// One of the `FRAME_*` kinds.
    pub kind: u8,
    /// The payload bytes (already checksum-verified).
    pub payload: Vec<u8>,
}

/// Encodes one frame (header + checksummed payload).
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut h = Hasher::new();
    h.update(&[kind]);
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What a scan found: the valid frame prefix plus an accounting of
/// everything it had to drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Frames in the valid prefix, in log order.
    pub frames: Vec<Frame>,
    /// Absolute logical end offset of each frame in `frames` (the
    /// offset of the byte after the frame), parallel to `frames`.
    /// Watermark recovery uses these to skip checkpoint-covered frames
    /// without decoding them.
    pub ends: Vec<u64>,
    /// Whether the magic header was intact. `false` means the file was
    /// empty or torn before the header finished — the caller should
    /// re-initialize it. A device whose header segment was retired
    /// (`base > 0`) reports `true`: the header was validated before it
    /// was allowed to be retired.
    pub header_ok: bool,
    /// Logical offset where readable data begins ([`Io::base`]).
    pub base: u64,
    /// Byte offset where the valid prefix ends (truncate here to drop
    /// the torn tail).
    pub valid_len: u64,
    /// Frames whose checksum failed or that were torn mid-frame
    /// (at most 1: scanning stops at the first bad frame).
    pub frames_dropped: u64,
    /// Bytes past the valid prefix.
    pub bytes_dropped: u64,
}

/// Scans a device from its base, validating `magic` (when the header
/// is still live) and then every frame checksum, stopping at the first
/// torn or corrupt frame.
pub fn scan(io: &mut dyn Io, magic: &[u8; 8]) -> Result<ScanOutcome, StorageError> {
    let base = io.base();
    let total = io.len()?;
    // `origin` is the logical offset of buf[0]. With a retired prefix
    // the magic header is gone with its segment; it was validated when
    // the log was created, and retirement only covers synced frames.
    let origin = base;
    let mut buf = vec![0u8; total.saturating_sub(origin) as usize];
    if !buf.is_empty() {
        read_exact_at(io, origin, &mut buf)?;
    }
    if base == 0 && (buf.len() < magic.len() || &buf[..magic.len()] != magic) {
        return Ok(ScanOutcome {
            frames: Vec::new(),
            ends: Vec::new(),
            header_ok: false,
            base,
            valid_len: 0,
            frames_dropped: u64::from(!buf.is_empty()),
            bytes_dropped: buf.len() as u64,
        });
    }
    let mut frames = Vec::new();
    let mut ends = Vec::new();
    let mut pos = if base == 0 { magic.len() as u64 } else { base };
    loop {
        if pos == total {
            // Clean end: every byte is inside a valid frame.
            return Ok(ScanOutcome {
                frames,
                ends,
                header_ok: true,
                base,
                valid_len: pos,
                frames_dropped: 0,
                bytes_dropped: 0,
            });
        }
        let ok = (|| -> Option<Frame> {
            if total - pos < FRAME_HEADER {
                return None;
            }
            let at = (pos - origin) as usize;
            let kind = buf[at];
            let len = u32::from_le_bytes(buf[at + 1..at + 5].try_into().unwrap());
            let crc = u32::from_le_bytes(buf[at + 5..at + 9].try_into().unwrap());
            let end = pos.checked_add(FRAME_HEADER)?.checked_add(u64::from(len))?;
            if end > total {
                return None;
            }
            let payload = &buf[at + FRAME_HEADER as usize..(end - origin) as usize];
            let mut h = Hasher::new();
            h.update(&[kind]);
            h.update(&len.to_le_bytes());
            h.update(payload);
            if h.finish() != crc {
                return None;
            }
            Some(Frame {
                kind,
                payload: payload.to_vec(),
            })
        })();
        match ok {
            Some(frame) => {
                pos += FRAME_HEADER + frame.payload.len() as u64;
                frames.push(frame);
                ends.push(pos);
            }
            None => {
                return Ok(ScanOutcome {
                    frames,
                    ends,
                    header_ok: true,
                    base,
                    valid_len: pos,
                    frames_dropped: 1,
                    bytes_dropped: total - pos,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;

    fn device(frames: &[(u8, &[u8])]) -> MemIo {
        let mut bytes = WAL_MAGIC.to_vec();
        for (kind, payload) in frames {
            bytes.extend_from_slice(&encode_frame(*kind, payload));
        }
        MemIo::from_bytes(bytes)
    }

    #[test]
    fn clean_log_scans_fully() {
        let mut io = device(&[
            (FRAME_TXN, b"alpha"),
            (FRAME_PUBLISH, b""),
            (FRAME_AUX, b"b"),
        ]);
        let out = scan(&mut io, WAL_MAGIC).unwrap();
        assert!(out.header_ok);
        assert_eq!(out.frames.len(), 3);
        assert_eq!(out.frames[0].payload, b"alpha");
        assert_eq!(out.frames_dropped, 0);
        assert_eq!(out.bytes_dropped, 0);
        assert_eq!(out.valid_len, io.len().unwrap());
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let full = device(&[(FRAME_TXN, b"alpha"), (FRAME_TXN, b"beta-longer")]);
        let bytes = full.bytes().to_vec();
        let first_end = 8 + FRAME_HEADER as usize + 5;
        for cut in first_end..=bytes.len() {
            let mut io = MemIo::from_bytes(bytes[..cut].to_vec());
            let out = scan(&mut io, WAL_MAGIC).unwrap();
            assert!(out.header_ok);
            let whole_second = cut == bytes.len();
            assert_eq!(
                out.frames.len(),
                if whole_second { 2 } else { 1 },
                "cut {cut}"
            );
            if !whole_second {
                assert_eq!(out.valid_len, first_end as u64, "cut {cut}");
                assert_eq!(out.bytes_dropped, (cut - first_end) as u64);
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let clean = device(&[(FRAME_TXN, b"payload-one"), (FRAME_TXN, b"payload-two")]);
        let bytes = clean.bytes().to_vec();
        for i in 8..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                let mut io = MemIo::from_bytes(corrupt);
                let out = scan(&mut io, WAL_MAGIC).unwrap();
                assert!(
                    out.frames.len() < 2 || out.frames_dropped > 0 || out.bytes_dropped > 0,
                    "flip at byte {i} bit {bit} went unnoticed"
                );
                // Whatever survives is a clean prefix of the original.
                for (n, f) in out.frames.iter().enumerate() {
                    let expect: &[u8] = if n == 0 {
                        b"payload-one"
                    } else {
                        b"payload-two"
                    };
                    assert_eq!(f.payload, expect);
                }
            }
        }
    }

    #[test]
    fn corrupt_length_field_cannot_resync_onto_garbage() {
        // Make the second frame's len field absurd; the scanner must
        // stop there, not interpret trailing bytes as a frame.
        let clean = device(&[(FRAME_TXN, b"aa"), (FRAME_TXN, b"bb")]);
        let mut bytes = clean.bytes().to_vec();
        let second = 8 + FRAME_HEADER as usize + 2;
        bytes[second + 1] = 0xFF;
        bytes[second + 2] = 0xFF;
        bytes[second + 3] = 0xFF;
        bytes[second + 4] = 0xFF;
        let mut io = MemIo::from_bytes(bytes);
        let out = scan(&mut io, WAL_MAGIC).unwrap();
        assert_eq!(out.frames.len(), 1);
        assert_eq!(out.frames_dropped, 1);
        assert_eq!(out.valid_len, second as u64);
    }

    #[test]
    fn missing_or_torn_magic_reports_header_not_ok() {
        for bytes in [Vec::new(), b"CDBW".to_vec(), b"NOTAFILE".to_vec()] {
            let empty = bytes.is_empty();
            let mut io = MemIo::from_bytes(bytes);
            let out = scan(&mut io, WAL_MAGIC).unwrap();
            assert!(!out.header_ok);
            assert_eq!(out.frames.len(), 0);
            assert_eq!(out.frames_dropped, u64::from(!empty));
        }
    }

    #[test]
    fn empty_payload_frames_are_valid() {
        let mut io = device(&[(FRAME_PUBLISH, b"")]);
        let out = scan(&mut io, WAL_MAGIC).unwrap();
        assert_eq!(out.frames.len(), 1);
        assert!(out.frames[0].payload.is_empty());
    }
}
