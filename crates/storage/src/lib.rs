//! # cdb-storage — durability for the curation log
//!
//! §2 of the paper defines a curated database by its *process*: every
//! change arrives through a curation transaction, and the transaction
//! log is what provenance, archiving, and citation are built on. That
//! makes the log the one artifact that must survive a crash — lose it
//! and the database loses not just data but its history of
//! accountability.
//!
//! This crate persists the log as a write-ahead log of length-prefixed,
//! CRC-32-checksummed frames (one per committed transaction, plus
//! publish points and auxiliary records), written through a narrow
//! [`io::Io`] device trait with explicit sync points. Periodic
//! [`wire::Checkpoint`] snapshots (tree + provenance store) bound
//! recovery time; recovery is `load(checkpoint) + replay(tail)` on the
//! machinery `cdb-curation::replay` already provides, and is verified
//! against a from-scratch replay before the database is handed back.
//!
//! Long-lived databases get bounded recovery *and* bounded disk from
//! two cooperating pieces: [`segment::SegmentedIo`] splits the log into
//! fixed-size rotating segments behind the same `Io` trait, and
//! [`ckpt::CheckpointStore`] installs checkpoints crash-atomically
//! (temp-file + rename on filesystems, a two-slot generation scheme on
//! raw devices). Once a checkpoint durably covers a watermark of the
//! log, fully-covered segments are retired — archived under
//! [`segment::Retention::KeepAll`] (paper semantics: the full curation
//! history remains reconstructible) or deleted under
//! [`segment::Retention::Reclaim`] — and recovery scans only the
//! checkpoint plus the live tail segments.
//!
//! Crash consistency is tested, not assumed: [`io::FaultyIo`] injects
//! torn writes, partial flushes, short reads, and bit rot at scripted
//! offsets, deterministically — see `tests/fault_classes.rs` and the
//! workspace-level `tests/storage_recovery.rs` proptest.
//!
//! Everything is std-only: no external crates, matching the rest of
//! the workspace.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod ckpt;
pub mod crc;
pub mod frame;
pub mod group;
pub mod io;
pub mod page;
pub mod paged;
pub mod recovery;
pub mod segment;
pub mod twopc;
pub mod wal;

pub use cdb_curation::wire;

pub use crate::buffer::{
    pool_pages_from_env, BufferPool, BufferStats, DEFAULT_POOL_PAGES, POOL_PAGES_ENV,
};
pub use crate::ckpt::CheckpointStore;
pub use crate::frame::{
    Frame, ScanOutcome, FRAME_AUX, FRAME_CKPT, FRAME_COMMIT, FRAME_DECIDE, FRAME_PREPARE,
    FRAME_PUBLISH, FRAME_TXN,
};
pub use crate::group::{GroupCommitStats, GroupWal};
pub use crate::io::{FaultPlan, FaultyIo, FileIo, Io, MemIo, ReclaimStats, ThrottledIo};
pub use crate::page::{PageStore, PAGE_MAGIC, PAGE_RECORD_HEADER, PAGE_SIZE};
pub use crate::paged::{page_key, split_key, PagedState, KIND_NODE, KIND_PROV, KIND_SNAP};
pub use crate::recovery::{
    decode_commit, encode_commit, recover, recover_shards, recover_with, PublishRecord, Recovered,
    RecoveryStats,
};
pub use crate::segment::{
    DirBacking, MemBacking, Retention, SegFaultPlan, SegmentBacking, SegmentConfig, SegmentedIo,
    DEFAULT_SEGMENT_BYTES, SEG_HEADER, SEG_MAGIC,
};
pub use crate::twopc::{
    decode_decide, decode_prepare, encode_decide, encode_prepare, scan_decisions, DecideRecord,
    PrepareRecord,
};
pub use crate::wal::{read_checkpoint, write_checkpoint, DurableLog};

/// Errors from the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An I/O failure (real or injected).
    Io(String),
    /// The device contents are structurally invalid in a way the
    /// scanner cannot repair by truncation (e.g. a frame that passed
    /// its checksum but decodes to garbage, or transaction ids out of
    /// order).
    Corrupt(String),
    /// A frame payload failed to decode.
    Wire(cdb_curation::wire::WireError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(m) => write!(f, "storage i/o: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StorageError::Wire(e) => write!(f, "bad frame payload: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<cdb_curation::wire::WireError> for StorageError {
    fn from(e: cdb_curation::wire::WireError) -> Self {
        StorageError::Wire(e)
    }
}
