//! Crash recovery: `load(checkpoint) + replay(tail)`.
//!
//! [`recover`] turns a possibly-torn WAL device (plus an optional
//! checkpoint) back into a live [`CuratedTree`]:
//!
//! 1. [`DurableLog::open`] scans the device, keeps the longest valid
//!    frame prefix, and truncates the torn tail — CRC-32 decides what
//!    "valid" means, so bit rot anywhere in a frame voids it.
//! 2. Transaction frames are decoded; publish and aux frames are
//!    collected for the caller (`cdb-core` rebuilds publish points,
//!    lifecycle events, and notes from them).
//! 3. If the checkpoint's `last_txn` is consistent with the decoded
//!    log (the log actually contains that prefix), recovery starts
//!    from the snapshot and applies only the tail via
//!    [`apply_committed`]. Otherwise — no checkpoint, corrupt
//!    checkpoint, or a checkpoint *ahead* of a torn log — the log is
//!    authoritative and the whole of it is replayed from empty.
//! 4. The result is cross-checked with [`replay_and_verify`]: the
//!    recovered tree must equal an independent from-scratch replay of
//!    its own log, ids included.
//!
//! The returned [`RecoveryStats`] mirror `cdb-relalg`'s `ExecStats`
//! in spirit: they make recovery observable (frames scanned/dropped,
//! txns adopted vs replayed, elapsed time) without changing behavior.

use std::collections::BTreeMap;

use cdb_curation::ops::{CuratedTree, Transaction, TxnId};
use cdb_curation::provstore::StoreMode;
use cdb_curation::replay::{apply_committed, replay_and_verify, replay_onto, verify_replay};
use cdb_curation::tree::TreeDb;
use cdb_curation::wire::{
    decode_transaction, put_opt_u64, put_str, put_u64, Checkpoint, Reader, WireError,
};

use crate::frame::{
    Frame, ScanOutcome, FRAME_AUX, FRAME_COMMIT, FRAME_DECIDE, FRAME_PREPARE, FRAME_PUBLISH,
    FRAME_TXN,
};
use crate::io::Io;
use crate::twopc::{decode_decide, decode_prepare, encode_decide, DecideRecord, PrepareRecord};
use crate::wal::DurableLog;
use crate::StorageError;

/// A persisted publish point: the database was published at `time`
/// under `label`, with the log at `txn` (None = published empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishRecord {
    /// Last transaction included in the published version.
    pub txn: Option<TxnId>,
    /// Publication timestamp.
    pub time: u64,
    /// Version label.
    pub label: String,
}

/// Encodes a publish record as a [`FRAME_PUBLISH`] payload.
pub fn encode_publish(p: &PublishRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + p.label.len());
    put_opt_u64(&mut out, p.txn.map(|t| t.0));
    put_u64(&mut out, p.time);
    put_str(&mut out, &p.label);
    out
}

/// Decodes a [`FRAME_PUBLISH`] payload.
pub fn decode_publish(bytes: &[u8]) -> Result<PublishRecord, WireError> {
    let mut r = Reader::new(bytes);
    let txn = r.opt_u64()?.map(TxnId);
    let time = r.u64()?;
    let label = r.str()?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(PublishRecord { txn, time, label })
}

/// Encodes an atomic commit frame payload: the transaction plus the
/// auxiliary records (e.g. lifecycle events) it produced. Bundling
/// them in one frame makes the logical operation atomic under torn
/// writes — either the transaction *and* its side effects survive, or
/// none of them do.
pub fn encode_commit(txn: &Transaction, aux: &[Vec<u8>]) -> Vec<u8> {
    let txn_bytes = cdb_curation::wire::encode_transaction(txn);
    let mut out = Vec::with_capacity(8 + txn_bytes.len());
    out.extend_from_slice(&(txn_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&txn_bytes);
    out.extend_from_slice(&(aux.len() as u32).to_le_bytes());
    for a in aux {
        out.extend_from_slice(&(a.len() as u32).to_le_bytes());
        out.extend_from_slice(a);
    }
    out
}

/// Decodes a [`FRAME_COMMIT`] payload.
pub fn decode_commit(bytes: &[u8]) -> Result<(Transaction, Vec<Vec<u8>>), WireError> {
    let mut r = Reader::new(bytes);
    let txn_len = r.u32()? as usize;
    let txn = decode_transaction(r.bytes(txn_len)?)?;
    let n = r.u32()? as usize;
    let mut aux = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let len = r.u32()? as usize;
        aux.push(r.bytes(len)?.to_vec());
    }
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok((txn, aux))
}

/// Observability counters for one recovery, in the spirit of
/// `ExecStats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid frames found in the log.
    pub frames_scanned: u64,
    /// Torn or corrupt frames dropped (at most 1 — scanning stops at
    /// the first bad frame, since frame boundaries after it are
    /// unknowable).
    pub frames_dropped: u64,
    /// Bytes truncated off the torn tail.
    pub bytes_dropped: u64,
    /// Whether a checkpoint snapshot was used (vs full replay).
    pub used_checkpoint: bool,
    /// Transactions covered by the checkpoint (adopted into the log
    /// without re-applying).
    pub txns_adopted: u64,
    /// Transactions re-applied from the log tail.
    pub txns_replayed: u64,
    /// Valid frames skipped without decoding because the checkpoint's
    /// coverage watermark proves the snapshot already contains them.
    pub frames_skipped: u64,
    /// Log payload bytes the recovery scan actually read. With a
    /// segmented log and checkpoint-anchored truncation this is bounded
    /// by the live (unretired) segments, not total history.
    pub bytes_scanned: u64,
    /// Live log segments at recovery time (1 for unsegmented devices).
    pub live_segments: u64,
    /// Wall-clock microseconds spent decoding + replaying + verifying.
    pub replay_micros: u128,
}

impl RecoveryStats {
    /// Publishes these counters into a metric sink under the
    /// `storage.recovery.*` names — `cdb-core` calls this with the
    /// database registry after a durable open, so recovery history
    /// shows up in `metrics_snapshot` alongside the live counters.
    pub fn record_to(&self, sink: &dyn cdb_obs::MetricSink) {
        sink.add("storage.recovery.count", 1);
        sink.add("storage.recovery.frames_scanned", self.frames_scanned);
        sink.add("storage.recovery.frames_dropped", self.frames_dropped);
        sink.add("storage.recovery.bytes_dropped", self.bytes_dropped);
        sink.add("storage.recovery.txns_adopted", self.txns_adopted);
        sink.add("storage.recovery.txns_replayed", self.txns_replayed);
        sink.add("storage.recovery.frames_skipped", self.frames_skipped);
        sink.add("storage.recovery.bytes_scanned", self.bytes_scanned);
        sink.add("storage.recovery.live_segments", self.live_segments);
        if self.used_checkpoint {
            sink.add("storage.recovery.checkpoint_used", 1);
        }
        sink.observe_ns(
            "storage.recovery.replay_ns",
            (self.replay_micros as u64).saturating_mul(1_000),
        );
    }
}

/// Everything recovery reconstructs from one WAL device.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered database: tree, provenance, and full transaction
    /// log, verified against a from-scratch replay.
    pub db: CuratedTree,
    /// Publish points, in log order.
    pub publishes: Vec<PublishRecord>,
    /// Auxiliary frame payloads, in log order (opaque here; `cdb-core`
    /// decodes lifecycle events and notes out of them).
    pub aux: Vec<Vec<u8>>,
    /// True when the covered log prefix is physically gone (the log was
    /// truncated under `Retention::Reclaim`): `db.log` then holds only
    /// the tail, with [`CuratedTree::base_txn_id`] marking the cut.
    pub truncated: bool,
    /// The checkpoint's tree snapshot, when one anchored this recovery.
    /// This is the replay base for truncated histories.
    pub base_tree: Option<TreeDb>,
    /// Encoded archive snapshots carried by the checkpoint (one per
    /// published version whose log prefix was reclaimed). Opaque here;
    /// `cdb-core` decodes them to rebuild the archive.
    pub carried_snapshots: Vec<Vec<u8>>,
    /// The checkpoint's publication clock: the largest publish
    /// timestamp at install time (0 when none). Keeps publish times
    /// monotone even when the covered publish frames are gone.
    pub base_time: u64,
    /// What recovery saw and did.
    pub stats: RecoveryStats,
    /// Every 2PC decision this log knows: DECIDE frames found in the
    /// scanned region plus decisions resolved during this recovery.
    pub decisions: BTreeMap<u64, bool>,
    /// In-doubt PREPAREs this recovery resolved (gid, committed) —
    /// either from a decision found in the caller-supplied context
    /// (another shard's log or a checkpoint's decision record) or by
    /// presumed abort. A matching DECIDE frame has already been
    /// appended and synced so future recoveries self-resolve.
    pub resolved: Vec<(u64, bool)>,
    /// Largest 2PC gid seen anywhere in this log (0 when none). The
    /// sharded layer re-seeds its gid counter past the max across all
    /// shards so decision records can never alias a new transaction.
    pub max_gid: u64,
}

/// Appends `txn` to `txns`, enforcing strictly increasing ids. `floor`
/// seeds the check when the preceding history is not in `txns` itself
/// (a checkpoint's `last_txn` under the anchored path).
fn push_txn(
    txns: &mut Vec<Transaction>,
    floor: Option<TxnId>,
    txn: Transaction,
) -> Result<(), StorageError> {
    if let Some(prev) = txns.last().map(|t| t.id).or(floor) {
        if txn.id <= prev {
            return Err(StorageError::Corrupt(format!(
                "transaction ids out of order: {:?} after {:?}",
                txn.id, prev
            )));
        }
    }
    txns.push(txn);
    Ok(())
}

/// Decodes one plain (non-2PC) frame into the output streams. Returns
/// an error for 2PC or unknown kinds — callers handle those first.
fn decode_plain_frame(
    kind: u8,
    payload: Vec<u8>,
    floor: Option<TxnId>,
    txns: &mut Vec<Transaction>,
    publishes: &mut Vec<PublishRecord>,
    aux: &mut Vec<Vec<u8>>,
) -> Result<(), StorageError> {
    match kind {
        FRAME_TXN => {
            let txn = decode_transaction(&payload).map_err(StorageError::Wire)?;
            push_txn(txns, floor, txn)?;
        }
        FRAME_COMMIT => {
            let (txn, mut extra) = decode_commit(&payload).map_err(StorageError::Wire)?;
            push_txn(txns, floor, txn)?;
            aux.append(&mut extra);
        }
        FRAME_PUBLISH => {
            publishes.push(decode_publish(&payload).map_err(StorageError::Wire)?);
        }
        FRAME_AUX => aux.push(payload),
        other => {
            return Err(StorageError::Corrupt(format!(
                "unknown frame kind {other} in WAL"
            )))
        }
    }
    Ok(())
}

/// Mutable 2PC bookkeeping threaded through one log's decode pass.
struct TwoPcPass<'a> {
    /// Decisions known from *outside* this log (other shards' DECIDEs,
    /// checkpoint-carried decision records). Consulted only for a
    /// PREPARE still pending at log end.
    ctx: &'a BTreeMap<u64, bool>,
    /// A PREPARE whose decision window is still open, with the latest
    /// DECIDE seen for it (if any). At most one can be pending: the
    /// shard's write lock is held from PREPARE through DECIDE, so
    /// nothing interleaves. The decision is not acted on until the
    /// window closes (a frame for something else, or log end): a failed
    /// commit-point sync leaves DECIDE(commit) in the write cache and
    /// the abort path appends DECIDE(abort) behind it — both become
    /// durable together, and the last one is the outcome.
    pending: Option<(PrepareRecord, Option<bool>)>,
    decisions: BTreeMap<u64, bool>,
    resolved: Vec<(u64, bool)>,
    max_gid: u64,
}

impl<'a> TwoPcPass<'a> {
    fn new(ctx: &'a BTreeMap<u64, bool>) -> Self {
        TwoPcPass {
            ctx,
            pending: None,
            decisions: BTreeMap::new(),
            resolved: Vec::new(),
            max_gid: 0,
        }
    }

    /// Adopts a committed PREPARE's inner frames through the ordinary
    /// decode path (ordering checks included).
    fn adopt(
        prepare: PrepareRecord,
        floor: Option<TxnId>,
        txns: &mut Vec<Transaction>,
        publishes: &mut Vec<PublishRecord>,
        aux: &mut Vec<Vec<u8>>,
    ) -> Result<(), StorageError> {
        for (kind, payload) in prepare.frames {
            decode_plain_frame(kind, payload, floor, txns, publishes, aux)?;
        }
        Ok(())
    }

    /// Closes a decided PREPARE's decision window: adopts its frames
    /// when the last DECIDE said commit, drops them on abort. A still
    /// undecided PREPARE stays pending (for tail resolution).
    fn settle_decided(
        &mut self,
        floor: Option<TxnId>,
        txns: &mut Vec<Transaction>,
        publishes: &mut Vec<PublishRecord>,
        aux: &mut Vec<Vec<u8>>,
    ) -> Result<(), StorageError> {
        if matches!(self.pending, Some((_, Some(_)))) {
            let (p, decision) = self.pending.take().expect("checked above");
            if decision == Some(true) {
                TwoPcPass::adopt(p, floor, txns, publishes, aux)?;
            }
        }
        Ok(())
    }
}

/// Decodes a run of valid frames into transactions, publish records,
/// and aux payloads, in log order. PREPARE frames are held back until
/// their DECIDE; a PREPARE still pending when the run ends is resolved
/// by `twopc.ctx` (commit decision found elsewhere) or presumed abort.
fn decode_frames(
    frames: impl Iterator<Item = Frame>,
    floor: Option<TxnId>,
    txns: &mut Vec<Transaction>,
    publishes: &mut Vec<PublishRecord>,
    aux: &mut Vec<Vec<u8>>,
    twopc: &mut TwoPcPass<'_>,
) -> Result<(), StorageError> {
    for frame in frames {
        match frame.kind {
            FRAME_PREPARE => {
                twopc.settle_decided(floor, txns, publishes, aux)?;
                let p = decode_prepare(&frame.payload).map_err(StorageError::Wire)?;
                if let Some((prev, _)) = &twopc.pending {
                    return Err(StorageError::Corrupt(format!(
                        "prepare gid {} while gid {} is still undecided",
                        p.gid, prev.gid
                    )));
                }
                twopc.max_gid = twopc.max_gid.max(p.gid);
                twopc.pending = Some((p, None));
            }
            FRAME_DECIDE => {
                let d = decode_decide(&frame.payload).map_err(StorageError::Wire)?;
                twopc.max_gid = twopc.max_gid.max(d.gid);
                twopc.decisions.insert(d.gid, d.commit);
                if twopc.pending.as_ref().is_some_and(|(p, _)| p.gid == d.gid) {
                    // Record but don't act: a later DECIDE for the same
                    // gid (commit-point sync failure followed by the
                    // abort path) overrides this one. The window closes
                    // at the next foreign frame or at log end.
                    twopc.pending.as_mut().expect("checked above").1 = Some(d.commit);
                } else {
                    twopc.settle_decided(floor, txns, publishes, aux)?;
                }
                // A DECIDE with no matching pending PREPARE is a
                // decision record for a txn resolved earlier (or one
                // this shard never prepared); keep it, apply nothing.
            }
            _ => {
                twopc.settle_decided(floor, txns, publishes, aux)?;
                decode_plain_frame(frame.kind, frame.payload, floor, txns, publishes, aux)?;
            }
        }
    }
    twopc.settle_decided(floor, txns, publishes, aux)?;
    // In-doubt resolution: a PREPARE at the tail with no DECIDE. Commit
    // iff some decision record anywhere says commit; otherwise presumed
    // abort — sound because the coordinator's DECIDE(commit) is only
    // ever written after every participant's PREPARE is durable, and
    // acks wait for that DECIDE to be durable.
    if let Some((p, _)) = twopc.pending.take() {
        let gid = p.gid;
        let commit = twopc
            .decisions
            .get(&gid)
            .or_else(|| twopc.ctx.get(&gid))
            .copied()
            .unwrap_or(false);
        if commit {
            TwoPcPass::adopt(p, floor, txns, publishes, aux)?;
        }
        twopc.decisions.insert(gid, commit);
        twopc.resolved.push((gid, commit));
    }
    Ok(())
}

/// Recovers a curated database from a WAL device, using `checkpoint`
/// when it is consistent with the log. `name` and `mode` seed the
/// empty database for full replay (a used checkpoint supersedes both).
/// The returned log handle is positioned after the last valid frame,
/// torn tail already truncated.
///
/// Two recovery modes exist, selected by the checkpoint's coverage
/// watermark ([`Checkpoint::covered_len`]) and the device's logical
/// base offset ([`Io::base`]):
///
/// - **Legacy / whole-log** — no checkpoint, or a checkpoint without a
///   watermark, over a device whose full history is present
///   (`base == 0`). Every frame is decoded; the checkpoint is used
///   only if the decoded log contains its `last_txn` (a checkpoint
///   ahead of a torn log is discarded — the log is authoritative).
/// - **Anchored** — a watermarked checkpoint proving coverage of the
///   log prefix up to `covered_len`. Frames ending at or below the
///   watermark are skipped without decoding; the snapshot supplies
///   that history (fully, under `Retention::KeepAll`, or as a
///   `base_txn` cut under `Retention::Reclaim`). This is the only
///   legal mode once segments are retired (`base > 0`): a retired
///   prefix with no covering checkpoint is corruption, not data loss
///   to be papered over.
pub fn recover<I: Io>(
    name: &str,
    mode: StoreMode,
    io: I,
    checkpoint: Option<Checkpoint>,
) -> Result<(DurableLog<I>, Recovered), StorageError> {
    recover_with(name, mode, io, checkpoint, &BTreeMap::new())
}

/// [`recover`], with a decision-record context for resolving in-doubt
/// 2PC transactions: `ctx` maps gid → commit for decisions found
/// *outside* this log (the other shards' DECIDE frames via
/// [`crate::twopc::scan_decisions`], plus decision records carried by
/// checkpoints). A PREPARE left undecided at the tail commits iff a
/// commit decision exists somewhere; otherwise it is presumed aborted.
/// Either way a DECIDE frame is appended and synced before returning,
/// so the log self-resolves on any future recovery.
pub fn recover_with<I: Io>(
    name: &str,
    mode: StoreMode,
    io: I,
    checkpoint: Option<Checkpoint>,
    ctx: &BTreeMap<u64, bool>,
) -> Result<(DurableLog<I>, Recovered), StorageError> {
    let res = recover_with_inner(name, mode, io, checkpoint, ctx);
    if let Err(StorageError::Corrupt(_)) = &res {
        // The black-box moment: a store we cannot recover. Freeze the
        // recent spans and metrics before the caller gives up — the
        // evidence of *how* the store got here lives in this process.
        let _ = cdb_obs::flight::snap("storage.recovery.corrupt");
    }
    res
}

fn recover_with_inner<I: Io>(
    name: &str,
    mode: StoreMode,
    io: I,
    checkpoint: Option<Checkpoint>,
    ctx: &BTreeMap<u64, bool>,
) -> Result<(DurableLog<I>, Recovered), StorageError> {
    let span = cdb_obs::SpanGuard::enter("storage.recovery.replay");
    let mut twopc = TwoPcPass::new(ctx);
    let (log, outcome) = DurableLog::open(io)?;
    let ScanOutcome {
        frames,
        ends,
        base,
        valid_len,
        frames_dropped,
        bytes_dropped,
        ..
    } = outcome;

    let scan_start = if base == 0 {
        crate::frame::WAL_MAGIC.len() as u64
    } else {
        base
    };
    let mut stats = RecoveryStats {
        frames_scanned: frames.len() as u64,
        frames_dropped,
        bytes_dropped,
        bytes_scanned: valid_len.saturating_sub(scan_start),
        live_segments: log.live_segments(),
        ..RecoveryStats::default()
    };

    // Mode selection. `legacy_ck` feeds the whole-log path's usability
    // filter; `anchored` carries a (checkpoint, watermark) pair whose
    // coverage was validated against the device.
    let watermark = checkpoint.as_ref().and_then(|ck| ck.covered_len);
    let (legacy_ck, anchored) = match (checkpoint, watermark) {
        (None, _) => {
            if base > 0 {
                return Err(StorageError::Corrupt(
                    "log prefix retired but no checkpoint to anchor recovery".into(),
                ));
            }
            (None, None)
        }
        (Some(ck), None) => {
            if base > 0 {
                return Err(StorageError::Corrupt(
                    "log prefix retired but checkpoint carries no coverage watermark".into(),
                ));
            }
            (Some(ck), None)
        }
        (Some(ck), Some(w)) => {
            if w < base {
                return Err(StorageError::Corrupt(format!(
                    "checkpoint covers the log to byte {w}, but bytes below {base} are retired"
                )));
            }
            if w > valid_len {
                if base > 0 {
                    return Err(StorageError::Corrupt(format!(
                        "checkpoint covers {w} bytes but only {valid_len} survived, \
                         and the covered prefix is partly retired"
                    )));
                }
                // Full history present but shorter than the watermark:
                // the log is torn below coverage. The log stays
                // authoritative — fall back to the legacy filter, which
                // discards the snapshot unless its last_txn survived.
                (Some(ck), None)
            } else {
                (None, Some((ck, w)))
            }
        }
    };

    let (db, publishes, aux, truncated, base_tree, carried_snapshots, base_time) = match anchored {
        Some((ck, w)) => {
            let Checkpoint {
                last_txn,
                tree,
                prov,
                covered_len: _,
                last_time,
                log: ck_log,
                publishes: ck_pubs,
                aux: ck_aux,
                snapshots,
                paged: _,
            } = ck;
            stats.used_checkpoint = true;
            let skip = ends.iter().filter(|&&e| e <= w).count();
            stats.frames_skipped = skip as u64;

            let mut tail: Vec<Transaction> = Vec::new();
            let mut publishes: Vec<PublishRecord> = ck_pubs
                .iter()
                .map(|b| decode_publish(b).map_err(StorageError::Wire))
                .collect::<Result<_, _>>()?;
            let mut aux = ck_aux;
            decode_frames(
                frames.into_iter().skip(skip),
                last_txn,
                &mut tail,
                &mut publishes,
                &mut aux,
                &mut twopc,
            )?;

            let truncated = ck_log.is_empty() && last_txn.is_some();
            let base_tree = tree.clone();
            let mut db = if truncated {
                CuratedTree::from_parts_at(tree, Vec::new(), prov, last_txn)
            } else {
                CuratedTree::from_parts(tree, ck_log, prov)
            };
            stats.txns_adopted = db.log.len() as u64;
            stats.txns_replayed = tail.len() as u64;
            for txn in &tail {
                apply_committed(&mut db, txn)
                    .map_err(|e| StorageError::Corrupt(format!("tail replay: {e}")))?;
            }

            if truncated {
                // The covered log is gone, so a from-empty replay is
                // impossible: verify the tail against the checkpoint
                // tree instead.
                let replayed = replay_onto(base_tree.clone(), &tail, None)
                    .map_err(|e| StorageError::Corrupt(format!("verification: {e}")))?;
                verify_replay(&db, &replayed)
                    .map_err(|e| StorageError::Corrupt(format!("verification: {e}")))?;
            } else {
                replay_and_verify(&db)
                    .map_err(|e| StorageError::Corrupt(format!("verification: {e}")))?;
            }
            (
                db,
                publishes,
                aux,
                truncated,
                Some(base_tree),
                snapshots,
                last_time,
            )
        }
        None => {
            let mut txns: Vec<Transaction> = Vec::new();
            let mut publishes = Vec::new();
            let mut aux = Vec::new();
            decode_frames(
                frames.into_iter(),
                None,
                &mut txns,
                &mut publishes,
                &mut aux,
                &mut twopc,
            )?;

            // A checkpoint is usable only when the log contains the
            // exact prefix it claims to snapshot. A checkpoint ahead of
            // a torn log would smuggle back transactions the log lost —
            // the log is the source of truth, so such a snapshot is
            // discarded.
            let usable = legacy_ck.filter(|ck| match ck.last_txn {
                None => true,
                Some(last) => txns.iter().any(|t| t.id == last),
            });

            let db = match usable {
                Some(ck) => {
                    stats.used_checkpoint = true;
                    let covered = match ck.last_txn {
                        None => 0,
                        Some(last) => txns.iter().take_while(|t| t.id <= last).count(),
                    };
                    let (head, tail) = txns.split_at(covered);
                    stats.txns_adopted = head.len() as u64;
                    stats.txns_replayed = tail.len() as u64;
                    let mut db = CuratedTree::from_parts(ck.tree, head.to_vec(), ck.prov);
                    for txn in tail {
                        apply_committed(&mut db, txn)
                            .map_err(|e| StorageError::Corrupt(format!("tail replay: {e}")))?;
                    }
                    db
                }
                None => {
                    stats.txns_replayed = txns.len() as u64;
                    let mut db = CuratedTree::new(name, mode);
                    for txn in &txns {
                        apply_committed(&mut db, txn)
                            .map_err(|e| StorageError::Corrupt(format!("log replay: {e}")))?;
                    }
                    db
                }
            };

            replay_and_verify(&db)
                .map_err(|e| StorageError::Corrupt(format!("verification: {e}")))?;
            (db, publishes, aux, false, None, Vec::new(), 0)
        }
    };

    stats.replay_micros = span.elapsed().as_micros();
    if stats.frames_dropped > 0 {
        // Failure observability: a torn tail is a (survived) fault and
        // counts as one, distinct from sync/append failures.
        cdb_obs::global()
            .counter("storage.error.torn_tail")
            .add(stats.frames_dropped);
    }

    // Self-heal: persist the outcome of every in-doubt resolution so
    // future recoveries of this log resolve identically without any
    // context — the decision is now in the log itself.
    let mut log = log;
    if !twopc.resolved.is_empty() {
        for &(gid, commit) in &twopc.resolved {
            log.append(FRAME_DECIDE, &encode_decide(&DecideRecord { gid, commit }))?;
        }
        log.sync()?;
    }

    Ok((
        log,
        Recovered {
            db,
            publishes,
            aux,
            truncated,
            base_tree,
            carried_snapshots,
            base_time,
            stats,
            decisions: twopc.decisions,
            resolved: twopc.resolved,
            max_gid: twopc.max_gid,
        },
    ))
}

/// Recovers N shard logs in parallel (`std::thread::scope`), resolving
/// cross-shard in-doubt transactions against the union of every
/// shard's decision record. Two phases:
///
/// 1. every shard's live log is scanned for DECIDE frames (in
///    parallel), and the results are merged with `extra` (decision
///    records carried by the shards' checkpoints, which survive log
///    truncation);
/// 2. every shard runs [`recover_with`] under that shared context, one
///    OS thread per shard.
///
/// The result vector preserves shard order. Per-shard outcomes are
/// deterministic — the context is fixed before phase 2 starts — so
/// parallel recovery is byte-identical to recovering the shards
/// sequentially (proven by the equivalence proptest in
/// `tests/storage_recovery.rs`).
pub fn recover_shards<I: Io + Send>(
    name: &str,
    mode: StoreMode,
    shards: Vec<(I, Option<Checkpoint>)>,
    extra: &BTreeMap<u64, bool>,
) -> Result<Vec<(DurableLog<I>, Recovered)>, StorageError> {
    let mut shards = shards;
    let mut ctx = extra.clone();
    let scanned = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter_mut()
            .map(|(io, _)| s.spawn(|| crate::twopc::scan_decisions(io)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("decision scan panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    for m in scanned {
        ctx.extend(m);
    }
    std::thread::scope(|s| {
        let ctx = &ctx;
        let handles: Vec<_> = shards
            .into_iter()
            .map(|(io, ck)| s.spawn(move || recover_with(name, mode, io, ck, ctx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard recovery panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_TXN;
    use crate::io::{FaultPlan, FaultyIo, MemIo};
    use crate::wal::{read_checkpoint, write_checkpoint};
    use cdb_curation::wire::encode_transaction;
    use cdb_model::Atom;

    /// Builds a reference database and a WAL image holding its log.
    fn seeded() -> (CuratedTree, Vec<u8>) {
        let mut db = CuratedTree::new("r", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("ann", 10);
        let e = t.insert(root, "entry", None).unwrap();
        let n = t.insert(e, "name", Some(Atom::Str("a".into()))).unwrap();
        t.commit();
        let mut t = db.begin("bob", 11);
        t.modify(n, Some(Atom::Str("b".into()))).unwrap();
        t.commit();
        let mut t = db.begin("cyd", 12);
        let x = t.insert(root, "scratch", None).unwrap();
        t.delete(x).unwrap();
        t.commit();

        let mut log = DurableLog::create(MemIo::new()).unwrap();
        for txn in db.transactions() {
            log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        }
        log.sync().unwrap();
        let image = log.into_io().bytes().to_vec();
        (db, image)
    }

    #[test]
    fn full_replay_recovers_the_exact_database() {
        let (db, image) = seeded();
        let (_, rec) = recover("r", StoreMode::Hereditary, MemIo::from_bytes(image), None).unwrap();
        assert_eq!(rec.db, db);
        assert!(!rec.stats.used_checkpoint);
        assert_eq!(rec.stats.txns_replayed, 3);
        assert_eq!(rec.stats.frames_scanned, 3);
    }

    #[test]
    fn checkpoint_plus_tail_equals_full_replay() {
        let (db, image) = seeded();
        // Snapshot as of the second transaction.
        let prefix = CuratedTree::from_parts(
            cdb_curation::replay::replay("r", &db.log[..2], None).unwrap(),
            db.log[..2].to_vec(),
            {
                let mut p = CuratedTree::new("r", StoreMode::Hereditary);
                for t in &db.log[..2] {
                    apply_committed(&mut p, t).unwrap();
                }
                p.prov
            },
        );
        let ck = Checkpoint::basic(Some(db.log[1].id), prefix.tree.clone(), prefix.prov.clone());
        let mut ckio = MemIo::new();
        write_checkpoint(&mut ckio, &ck).unwrap();
        let ck = read_checkpoint(&mut ckio).unwrap();

        let (_, rec) = recover("r", StoreMode::Hereditary, MemIo::from_bytes(image), ck).unwrap();
        assert_eq!(rec.db, db);
        assert!(rec.stats.used_checkpoint);
        assert_eq!(rec.stats.txns_adopted, 2);
        assert_eq!(rec.stats.txns_replayed, 1);
    }

    #[test]
    fn checkpoint_ahead_of_torn_log_is_discarded() {
        let (db, image) = seeded();
        // Checkpoint covers all 3 txns, but the log is torn after 1.
        let ck = Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone());
        let first_txn_end = {
            let mut log = DurableLog::create(MemIo::new()).unwrap();
            log.append(FRAME_TXN, &encode_transaction(&db.log[0]))
                .unwrap();
            log.sync().unwrap();
            log.len().unwrap()
        };
        let torn = image[..first_txn_end as usize + 4].to_vec();
        let (_, rec) = recover(
            "r",
            StoreMode::Hereditary,
            MemIo::from_bytes(torn),
            Some(ck),
        )
        .unwrap();
        // The log is authoritative: one committed txn, replayed fresh.
        assert!(!rec.stats.used_checkpoint);
        assert_eq!(rec.db.log.len(), 1);
        assert_eq!(rec.db.log[0], db.log[0]);
        assert_eq!(rec.stats.frames_dropped, 1);
    }

    #[test]
    fn crash_image_recovers_committed_prefix_exactly() {
        let (db, _) = seeded();
        let mut log = DurableLog::create(FaultyIo::new(FaultPlan::default())).unwrap();
        log.append(FRAME_TXN, &encode_transaction(&db.log[0]))
            .unwrap();
        log.append(FRAME_TXN, &encode_transaction(&db.log[1]))
            .unwrap();
        log.sync().unwrap();
        log.append(FRAME_TXN, &encode_transaction(&db.log[2]))
            .unwrap();
        // Crash before the covering sync: txn 2 is uncommitted.
        let image = log.into_io().crash();

        let (_, rec) = recover("r", StoreMode::Hereditary, MemIo::from_bytes(image), None).unwrap();
        let mut reference = CuratedTree::new("r", StoreMode::Hereditary);
        for t in &db.log[..2] {
            apply_committed(&mut reference, t).unwrap();
        }
        assert_eq!(rec.db, reference);
    }

    #[test]
    fn out_of_order_transaction_ids_are_rejected() {
        let (db, _) = seeded();
        let mut log = DurableLog::create(MemIo::new()).unwrap();
        log.append(FRAME_TXN, &encode_transaction(&db.log[1]))
            .unwrap();
        log.append(FRAME_TXN, &encode_transaction(&db.log[0]))
            .unwrap();
        log.sync().unwrap();
        let err = recover("r", StoreMode::Hereditary, log.into_io(), None).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn publish_records_round_trip() {
        for p in [
            PublishRecord {
                txn: None,
                time: 0,
                label: String::new(),
            },
            PublishRecord {
                txn: Some(TxnId(42)),
                time: 1_699_999_999,
                label: "2026-08".into(),
            },
        ] {
            assert_eq!(decode_publish(&encode_publish(&p)).unwrap(), p);
        }
    }
}
