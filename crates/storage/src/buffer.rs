//! A buffer pool over [`PageStore`]: bounded frames, clock
//! replacement, pin/unpin, dirty tracking, write-back on eviction.
//!
//! This is the piece that turns the page heap into a
//! larger-than-memory store: readers and the checkpoint capture path
//! go through a fixed number of in-memory frames, and when the working
//! set exceeds the pool the clock hand evicts unreferenced,
//! unpinned frames — writing dirty ones back to the heap first — so
//! memory stays bounded while throughput degrades gracefully instead
//! of falling off a cliff (bench E21 measures exactly that sweep).
//!
//! Invariants (tested in `crates/storage/tests/buffer_faults.rs`):
//!
//! * the pool never holds more than `capacity` frames;
//! * a pinned frame is never evicted — if every frame is pinned, a
//!   fetch of a non-resident page fails with a typed error instead of
//!   silently growing the pool;
//! * eviction write-back appends to the heap (never overwrites), so a
//!   crash mid-eviction is indistinguishable from a torn WAL tail and
//!   recovery falls back to the previous durable version.
//!
//! Every fetch updates `storage.buffer.{hit,miss,evict,pin}` counters
//! on the [`Metrics`] registry handed to [`BufferPool::new`], and the
//! time spent blocked on the heap device (miss reads, eviction
//! write-backs) lands in the `storage.buffer.stall_ns` histogram.

use std::collections::BTreeMap;

use cdb_obs::{Counter, HistogramHandle, Metrics, SpanGuard};

use crate::io::Io;
use crate::page::PageStore;
use crate::StorageError;

/// Environment variable overriding the default pool capacity (frames)
/// in tests and tools — the `scripts/check.sh` small-pool matrix leg
/// sets `CDB_TEST_POOL_PAGES=4` to force heavy eviction under the full
/// tier-1 suite.
pub const POOL_PAGES_ENV: &str = "CDB_TEST_POOL_PAGES";

/// Default pool capacity when nothing is configured: large enough to
/// hold a typical working set, small enough that eviction is a
/// routinely exercised path.
pub const DEFAULT_POOL_PAGES: usize = 64;

/// Pool capacity in frames: `CDB_TEST_POOL_PAGES` when set and valid,
/// else `default` (or [`DEFAULT_POOL_PAGES`] via `Default`).
pub fn pool_pages_from_env(default: usize) -> usize {
    std::env::var(POOL_PAGES_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

#[derive(Debug)]
struct Frame {
    page: u64,
    data: Vec<u8>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// Counter handles for the pool's observability surface.
#[derive(Debug, Clone)]
struct BufferCounters {
    hit: Counter,
    miss: Counter,
    evict: Counter,
    pin: Counter,
    /// Foreground stall time: nanoseconds a caller spent blocked on
    /// the heap device inside a fetch/put (miss reads and eviction
    /// write-backs — the latency the pool exists to hide). The
    /// checkpoint barrier's `flush_all` is deliberately excluded: that
    /// is scheduled background work, not a request stalling.
    stall: HistogramHandle,
}

impl BufferCounters {
    fn resolve(metrics: &Metrics) -> Self {
        BufferCounters {
            hit: metrics.counter("storage.buffer.hit"),
            miss: metrics.counter("storage.buffer.miss"),
            evict: metrics.counter("storage.buffer.evict"),
            pin: metrics.counter("storage.buffer.pin"),
            stall: metrics.histogram("storage.buffer.stall_ns"),
        }
    }
}

/// Point-in-time pool statistics (mirrors the obs counters, readable
/// without a metrics registry — the bench harness records these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read the heap.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back to the heap (on eviction or flush).
    pub writebacks: u64,
}

impl BufferStats {
    /// Hit fraction in `[0, 1]`; `1.0` for an untouched pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A clock-replacement buffer pool over a [`PageStore`].
#[derive(Debug)]
pub struct BufferPool<I: Io> {
    store: PageStore<I>,
    capacity: usize,
    frames: Vec<Frame>,
    map: BTreeMap<u64, usize>,
    hand: usize,
    counters: BufferCounters,
    stats: BufferStats,
}

impl<I: Io> BufferPool<I> {
    /// A pool of at most `capacity` frames over `store`, reporting to
    /// `metrics`. `capacity` is clamped to at least 1.
    pub fn new(store: PageStore<I>, capacity: usize, metrics: &Metrics) -> Self {
        BufferPool {
            store,
            capacity: capacity.max(1),
            frames: Vec::new(),
            map: BTreeMap::new(),
            hand: 0,
            counters: BufferCounters::resolve(metrics),
            stats: BufferStats::default(),
        }
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently resident (always `<= capacity`).
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Read access to the underlying page store.
    pub fn store(&self) -> &PageStore<I> {
        &self.store
    }

    /// Clock sweep: find a victim frame with `pins == 0`, clearing
    /// reference bits as the hand passes. Two full sweeps with no
    /// victim means every frame is pinned.
    fn victim(&mut self) -> Result<usize, StorageError> {
        for _ in 0..self.frames.len() * 2 {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[i];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Ok(i);
        }
        Err(StorageError::Io(format!(
            "buffer pool exhausted: all {} frames pinned",
            self.frames.len()
        )))
    }

    /// Ensures `page` is resident, returning its frame index.
    fn fetch(&mut self, page: u64) -> Result<usize, StorageError> {
        if let Some(&i) = self.map.get(&page) {
            self.frames[i].referenced = true;
            self.stats.hits += 1;
            self.counters.hit.inc();
            return Ok(i);
        }
        self.stats.misses += 1;
        self.counters.miss.inc();
        let data = {
            let stall = SpanGuard::enter("storage.buffer.stall");
            let data = self.store.read_page(page)?;
            self.counters.stall.observe(stall.elapsed());
            data
        };
        let i = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page,
                data: Vec::new(),
                dirty: false,
                pins: 0,
                referenced: false,
            });
            self.frames.len() - 1
        } else {
            let i = self.victim()?;
            let evicted = &self.frames[i];
            if evicted.dirty {
                let stall = SpanGuard::enter("storage.buffer.stall");
                self.store.write_page(evicted.page, &evicted.data)?;
                self.counters.stall.observe(stall.elapsed());
                self.stats.writebacks += 1;
            }
            self.map.remove(&self.frames[i].page);
            self.stats.evictions += 1;
            self.counters.evict.inc();
            i
        };
        let f = &mut self.frames[i];
        f.page = page;
        f.data = data.unwrap_or_default();
        f.dirty = false;
        f.pins = 0;
        f.referenced = true;
        self.map.insert(page, i);
        Ok(i)
    }

    /// Reads `page` through the pool. `None` when the heap has no such
    /// page (an absent page is *not* cached; probing for it again
    /// re-reads the heap).
    pub fn get(&mut self, page: u64) -> Result<Option<&[u8]>, StorageError> {
        if !self.map.contains_key(&page) && !self.store.contains(page) {
            self.stats.misses += 1;
            self.counters.miss.inc();
            return Ok(None);
        }
        let i = self.fetch(page)?;
        Ok(Some(&self.frames[i].data))
    }

    /// Writes `page` through the pool: the frame is overwritten and
    /// marked dirty; the heap sees it on eviction or [`flush_all`]
    /// (`Self::flush_all`).
    pub fn put(&mut self, page: u64, bytes: &[u8]) -> Result<(), StorageError> {
        let i = if self.map.contains_key(&page) || self.store.contains(page) {
            self.fetch(page)?
        } else {
            // Fresh page: allocate a frame without consulting the heap.
            self.stats.misses += 1;
            self.counters.miss.inc();
            if self.frames.len() < self.capacity {
                self.frames.push(Frame {
                    page,
                    data: Vec::new(),
                    dirty: false,
                    pins: 0,
                    referenced: false,
                });
                let i = self.frames.len() - 1;
                self.map.insert(page, i);
                i
            } else {
                let i = self.victim()?;
                let evicted = &self.frames[i];
                if evicted.dirty {
                    let stall = SpanGuard::enter("storage.buffer.stall");
                    self.store.write_page(evicted.page, &evicted.data)?;
                    self.counters.stall.observe(stall.elapsed());
                    self.stats.writebacks += 1;
                }
                self.map.remove(&self.frames[i].page);
                self.stats.evictions += 1;
                self.counters.evict.inc();
                self.map.insert(page, i);
                i
            }
        };
        let f = &mut self.frames[i];
        f.page = page;
        f.data = bytes.to_vec();
        f.dirty = true;
        f.referenced = true;
        Ok(())
    }

    /// Pins `page` resident: it will not be evicted until a matching
    /// [`unpin`](Self::unpin). Fails when the page does not exist or
    /// every frame is already pinned.
    pub fn pin(&mut self, page: u64) -> Result<(), StorageError> {
        if !self.map.contains_key(&page) && !self.store.contains(page) {
            return Err(StorageError::Io(format!("pin of unknown page {page}")));
        }
        let i = self.fetch(page)?;
        self.frames[i].pins += 1;
        self.counters.pin.inc();
        Ok(())
    }

    /// Releases one pin on `page`. Unbalanced unpins are a typed
    /// error, not a silent saturate — they indicate a caller bug.
    pub fn unpin(&mut self, page: u64) -> Result<(), StorageError> {
        let Some(&i) = self.map.get(&page) else {
            return Err(StorageError::Io(format!(
                "unpin of non-resident page {page}"
            )));
        };
        if self.frames[i].pins == 0 {
            return Err(StorageError::Io(format!("unbalanced unpin of page {page}")));
        }
        self.frames[i].pins -= 1;
        Ok(())
    }

    /// Pins currently held on `page` (0 when not resident).
    pub fn pins(&self, page: u64) -> u32 {
        self.map
            .get(&page)
            .map(|&i| self.frames[i].pins)
            .unwrap_or(0)
    }

    /// Writes every dirty frame back to the heap and flushes the
    /// device — the checkpoint capture barrier: after this returns,
    /// the heap's logical content includes every pooled write.
    pub fn flush_all(&mut self) -> Result<(), StorageError> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                let (page, data) = {
                    let f = &self.frames[i];
                    (f.page, f.data.clone())
                };
                self.store.write_page(page, &data)?;
                self.frames[i].dirty = false;
                self.stats.writebacks += 1;
            }
        }
        self.store.flush()
    }

    /// Logical heap length (the checkpoint-anchor watermark). Only
    /// meaningful after [`flush_all`](Self::flush_all).
    pub fn heap_len(&self) -> u64 {
        self.store.len()
    }

    /// Consumes the pool, returning the underlying store. Dirty frames
    /// are dropped (call [`flush_all`](Self::flush_all) first to keep
    /// them) — crash harnesses use exactly that to model losing the
    /// in-memory state.
    pub fn into_store(self) -> PageStore<I> {
        self.store
    }
}
