//! Group commit: one sync per batch, shared by every writer in it.
//!
//! [`GroupWal`] is a cloneable (Arc-backed) handle over a
//! [`DurableLog`] that turns `Durability::Batched` into a real
//! multi-writer protocol. Writers [`GroupWal::append`] their frames —
//! cheap, buffered — and then [`GroupWal::commit`] the sequence number
//! they were handed. The first committer to find the batch unsynced
//! becomes the **leader**: it waits out a tunable batch window (so
//! concurrent writers can pile their frames into the same batch),
//! then issues a single [`DurableLog::sync`] covering everything
//! appended so far. Everyone whose frames the sync covered is released
//! at once; a commit that returns `Ok` means the frames are durable.
//!
//! Ack rule: `commit(seq)` returns `Ok` only once `synced >= seq`.
//! Because appends take the same lock that assigns sequence numbers,
//! the durable log is always a *prefix* of the append order — a crash
//! can cut acknowledged frames off the end (if the device lied about
//! a flush) but can never leave a hole in the middle. The
//! crash-under-concurrency suite in `tests/concurrent_serving.rs`
//! checks exactly this invariant against scripted [`crate::FaultyIo`]
//! schedules.
//!
//! Failure handling: if the leader's sync errors, the leader reports
//! the error to its caller and steps down *without* marking anything
//! synced; each waiter then retries the sync itself (becoming leader
//! in turn). A transient device error therefore delays commits instead
//! of failing them; a persistent one fails every waiting commit with
//! the device's error. No commit ever returns `Ok` unless its frames
//! were covered by a sync that reported success.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use cdb_obs::{Counter, Gauge, HistogramHandle, Metrics, SpanGuard};

use crate::wal::DurableLog;
use crate::{Io, StorageError};

/// A point-in-time view of the group-commit counters. Since PR 4 this
/// is a *read-out* of `cdb-obs` instruments, not independent state —
/// [`GroupWal::stats`] materialises it so the serving layer, the
/// benchmarks, and the pre-existing tests keep their API (see DESIGN.md
/// S24 on the deprecation path).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Syncs issued by batch leaders.
    pub batches: u64,
    /// Frames covered by those syncs.
    pub frames_synced: u64,
    /// Largest number of frames a single sync covered.
    pub max_batch: u64,
    /// Sync attempts that failed (each failing attempt is retried by
    /// the next leader).
    pub failed_syncs: u64,
}

/// Pre-resolved instrument handles — looked up once at construction so
/// the commit hot path never touches the registry lock.
#[derive(Debug, Clone)]
struct GroupInstruments {
    batches: Counter,
    frames_synced: Counter,
    max_batch: Gauge,
    failed_syncs: Counter,
    sync_ns: HistogramHandle,
    commit_ns: HistogramHandle,
}

impl GroupInstruments {
    fn resolve(metrics: &Metrics) -> Self {
        GroupInstruments {
            batches: metrics.counter("storage.group.batches"),
            frames_synced: metrics.counter("storage.group.frames_synced"),
            max_batch: metrics.gauge("storage.group.max_batch"),
            failed_syncs: metrics.counter("storage.group.failed_syncs"),
            sync_ns: metrics.histogram("storage.wal.sync_ns"),
            commit_ns: metrics.histogram("storage.group.commit_ns"),
        }
    }
}

#[derive(Debug)]
struct GroupState {
    log: DurableLog<Box<dyn Io>>,
    /// Frames appended so far (monotone sequence; `append` returns it).
    appended: u64,
    /// Highest sequence number covered by a successful sync.
    synced: u64,
    /// Whether some thread is currently leading a batch.
    leader_active: bool,
    window: Duration,
}

#[derive(Debug)]
struct GroupInner {
    state: Mutex<GroupState>,
    cv: Condvar,
    instr: GroupInstruments,
}

/// A shared, thread-safe group-commit handle over a WAL. Clones refer
/// to the same log; see the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct GroupWal {
    inner: Arc<GroupInner>,
}

impl GroupWal {
    /// Wraps `log` for group commit with the given batch window. A
    /// zero window syncs as soon as a leader takes over (no wait);
    /// larger windows trade commit latency for fewer syncs.
    pub fn new(log: DurableLog<Box<dyn Io>>, window: Duration) -> Self {
        // A private registry: a standalone GroupWal's counters are its
        // own (tests assert exact values). The serving layer passes the
        // database registry via [`GroupWal::with_metrics`] instead.
        GroupWal::with_metrics(log, window, &Metrics::new())
    }

    /// Like [`GroupWal::new`], but records batching counters and sync
    /// latency into `metrics` (`storage.group.*`, `storage.wal.sync_ns`)
    /// so they surface in `CuratedDatabase::metrics_snapshot`.
    pub fn with_metrics(log: DurableLog<Box<dyn Io>>, window: Duration, metrics: &Metrics) -> Self {
        GroupWal {
            inner: Arc::new(GroupInner {
                state: Mutex::new(GroupState {
                    log,
                    appended: 0,
                    synced: 0,
                    leader_active: false,
                    window,
                }),
                cv: Condvar::new(),
                instr: GroupInstruments::resolve(metrics),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GroupState> {
        self.inner
            .state
            .lock()
            .expect("a group-commit writer panicked while holding the WAL lock")
    }

    /// Appends one frame and returns its sequence number; pass it to
    /// [`GroupWal::commit`] to wait for durability. The frame is
    /// buffered in the device, not yet synced.
    pub fn append(&self, kind: u8, payload: &[u8]) -> Result<u64, StorageError> {
        let mut st = self.lock();
        st.log.append(kind, payload)?;
        st.appended += 1;
        Ok(st.appended)
    }

    /// The sequence number of the most recently appended frame. A
    /// writer that appended several frames for one logical commit only
    /// needs to commit the last one.
    pub fn appended_seq(&self) -> u64 {
        self.lock().appended
    }

    /// Blocks until every frame up to `seq` is durable (or the device
    /// persistently fails). See the module docs for the leader
    /// election and failure rules.
    pub fn commit(&self, seq: u64) -> Result<(), StorageError> {
        let span = SpanGuard::with_attr("storage.wal.group_commit", seq);
        let res = self.commit_inner(seq);
        if res.is_ok() {
            self.inner.instr.commit_ns.observe(span.elapsed());
        }
        res
    }

    fn commit_inner(&self, seq: u64) -> Result<(), StorageError> {
        let mut st = self.lock();
        loop {
            if st.synced >= seq {
                return Ok(());
            }
            if st.leader_active {
                st = self
                    .inner
                    .cv
                    .wait(st)
                    .expect("a group-commit writer panicked while holding the WAL lock");
                continue;
            }
            // Become the leader: hold the batch open for the window so
            // concurrent appends join it, then sync once for everyone.
            st.leader_active = true;
            if !st.window.is_zero() {
                let deadline = Instant::now() + st.window;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = self
                        .inner
                        .cv
                        .wait_timeout(st, deadline - now)
                        .expect("a group-commit writer panicked while holding the WAL lock");
                    st = guard;
                }
            }
            let target = st.appended;
            let batch = target - st.synced;
            let sync_span = SpanGuard::with_attr("storage.wal.sync", batch);
            let res = st.log.sync();
            self.inner.instr.sync_ns.observe(sync_span.elapsed());
            drop(sync_span);
            st.leader_active = false;
            let instr = &self.inner.instr;
            match res {
                Ok(()) => {
                    st.synced = target;
                    instr.batches.inc();
                    instr.frames_synced.add(batch);
                    instr.max_batch.record_max(batch);
                    self.inner.cv.notify_all();
                    if target >= seq {
                        return Ok(());
                    }
                }
                Err(e) => {
                    // (DurableLog::sync already bumped the global
                    // storage.error.sync_failed counter.)
                    instr.failed_syncs.inc();
                    // Wake the waiters so one of them retries as leader.
                    self.inner.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Syncs everything appended so far (an explicit barrier —
    /// checkpoints and publishes use this). Equivalent to committing
    /// the latest sequence number; a no-op when nothing is pending.
    pub fn sync_all(&self) -> Result<(), StorageError> {
        let seq = {
            let st = self.lock();
            if st.synced >= st.appended {
                return Ok(());
            }
            st.appended
        };
        self.commit(seq)
    }

    /// Batching counters so far, read out of the `cdb-obs` instruments.
    pub fn stats(&self) -> GroupCommitStats {
        let i = &self.inner.instr;
        GroupCommitStats {
            batches: i.batches.get(),
            frames_synced: i.frames_synced.get(),
            max_batch: i.max_batch.get(),
            failed_syncs: i.failed_syncs.get(),
        }
    }

    /// The current batch window.
    pub fn window(&self) -> Duration {
        self.lock().window
    }

    /// Adjusts the batch window for future batches.
    pub fn set_window(&self, window: Duration) {
        self.lock().window = window;
    }

    /// Frames appended but not yet covered by a successful sync.
    pub fn unsynced(&self) -> u64 {
        let st = self.lock();
        st.appended - st.synced
    }

    /// The log's current device length in bytes. With everything
    /// synced this is the coverage watermark a checkpoint can claim
    /// ([`cdb_curation::wire::Checkpoint::covered_len`]).
    pub fn log_len(&self) -> Result<u64, StorageError> {
        self.lock().log.len()
    }

    /// Retires log history covered by a durably installed checkpoint
    /// (see [`DurableLog::reclaim`]). Takes the group lock: retirement
    /// never races an append or a sync.
    pub fn reclaim(&self, covered: u64) -> Result<Option<crate::io::ReclaimStats>, StorageError> {
        self.lock().log.reclaim(covered)
    }

    /// Live segments backing the log (1 for unsegmented devices).
    pub fn live_segments(&self) -> u64 {
        self.lock().log.live_segments()
    }

    /// Recovers the underlying log, if this is the last handle.
    pub fn try_into_log(self) -> Result<DurableLog<Box<dyn Io>>, GroupWal> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner
                .state
                .into_inner()
                .expect("a group-commit writer panicked while holding the WAL lock")
                .log),
            Err(inner) => Err(GroupWal { inner }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, FaultyIo, MemIo};

    fn mem_group(window: Duration) -> GroupWal {
        let log = DurableLog::create(Box::new(MemIo::new()) as Box<dyn Io>).unwrap();
        GroupWal::new(log, window)
    }

    #[test]
    fn single_writer_append_commit_round_trips() {
        let g = mem_group(Duration::ZERO);
        let s1 = g.append(7, b"one").unwrap();
        let s2 = g.append(7, b"two").unwrap();
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(g.unsynced(), 2);
        g.commit(s2).unwrap();
        assert_eq!(g.unsynced(), 0);
        let st = g.stats();
        assert_eq!(st.batches, 1);
        assert_eq!(st.frames_synced, 2);
        assert_eq!(st.max_batch, 2);
    }

    #[test]
    fn commit_of_already_synced_seq_is_free() {
        let g = mem_group(Duration::ZERO);
        let s = g.append(7, b"x").unwrap();
        g.commit(s).unwrap();
        g.commit(s).unwrap(); // no new batch
        assert_eq!(g.stats().batches, 1);
    }

    #[test]
    fn sync_all_on_empty_batch_is_a_no_op() {
        let g = mem_group(Duration::ZERO);
        g.sync_all().unwrap();
        assert_eq!(g.stats().batches, 0);
        let s = g.append(7, b"x").unwrap();
        g.commit(s).unwrap();
        g.sync_all().unwrap(); // nothing new pending
        assert_eq!(g.stats().batches, 1);
    }

    #[test]
    fn concurrent_writers_share_batches() {
        let g = mem_group(Duration::from_millis(5));
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for j in 0..8 {
                        let seq = g.append(7, format!("w{i}.{j}").as_bytes()).unwrap();
                        g.commit(seq).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let st = g.stats();
        assert_eq!(st.frames_synced, 32);
        assert!(
            st.batches < 32,
            "expected batching, got one sync per frame ({} batches)",
            st.batches
        );
        assert!(st.max_batch >= 2);
    }

    #[test]
    fn transient_sync_failure_is_retried_by_the_next_leader() {
        let io = FaultyIo::new(FaultPlan {
            fail_flush: Some(2), // flush 1 is DurableLog::create's header sync
            ..FaultPlan::default()
        });
        let log = DurableLog::create(Box::new(io) as Box<dyn Io>).unwrap();
        let g = GroupWal::new(log, Duration::ZERO);
        let s = g.append(7, b"x").unwrap();
        // First committer leads, hits the injected failure, reports it.
        assert!(g.commit(s).is_err());
        assert_eq!(g.stats().failed_syncs, 1);
        assert_eq!(g.unsynced(), 1);
        // A retry (here: the same caller again) succeeds — the frame
        // was never lost, only its sync was delayed.
        g.commit(s).unwrap();
        assert_eq!(g.unsynced(), 0);
    }

    #[test]
    fn waiters_survive_a_failing_leader() {
        // Writer A appends and commits against a device whose next
        // flush fails; writer B piles onto the same batch. Exactly one
        // of them eats the injected error as leader, the other retries
        // the sync itself and succeeds — and afterwards both frames
        // are durable.
        let io = FaultyIo::new(FaultPlan {
            fail_flush: Some(2),
            ..FaultPlan::default()
        });
        let log = DurableLog::create(Box::new(io) as Box<dyn Io>).unwrap();
        let g = GroupWal::new(log, Duration::from_millis(10));
        let threads: Vec<_> = (0..2)
            .map(|i| {
                let g = g.clone();
                std::thread::spawn(move || {
                    let seq = g.append(7, &[i]).unwrap();
                    let first = g.commit(seq);
                    if first.is_err() {
                        g.commit(seq).unwrap(); // transient: retry succeeds
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.unsynced(), 0);
        assert_eq!(g.stats().failed_syncs, 1);
    }

    #[test]
    fn try_into_log_returns_the_log_once_sole_owner() {
        let g = mem_group(Duration::ZERO);
        let clone = g.clone();
        let g = g.try_into_log().unwrap_err(); // clone still alive
        drop(clone);
        let log = g.try_into_log().unwrap();
        assert!(log.is_empty().unwrap());
    }
}
