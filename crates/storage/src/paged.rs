//! Paged encoding of the curated database state: tree nodes,
//! per-node provenance records, and archive snapshot fat-nodes as
//! *objects* chunked across fixed-capacity pages, served through a
//! [`BufferPool`].
//!
//! Page ids pack an object address into 64 bits:
//!
//! ```text
//! kind: 8 bits | object id: 40 bits | chunk: 16 bits
//! ```
//!
//! * `KIND_NODE` objects are tree arena slots (object id = arena
//!   index), encoded by `cdb_curation::wire::encode_tree_node` —
//!   tombstones included, because checkpoint materialization must
//!   round-trip arena order and dead nodes exactly for tail replay to
//!   re-allocate the original ids;
//! * `KIND_PROV` objects are one node's direct provenance records;
//! * `KIND_SNAP` objects are the archive's published-version
//!   snapshots (opaque `cdb-archive` value bytes) — the fat-node
//!   payloads, usually the largest objects in the heap.
//!
//! Objects larger than a page are chunked: chunk 0 opens with the
//! object's total length, so a shrinking rewrite simply strands its
//! stale tail chunks (the length prefix governs how many chunks a
//! reader follows — no tombstone pages needed).

use cdb_curation::wire::{self, PagedNode};
use cdb_model::Atom;
use cdb_obs::Metrics;

use crate::buffer::{BufferPool, BufferStats};
use crate::io::Io;
use crate::page::{PageStore, PAGE_SIZE};
use crate::StorageError;

/// Page kind: a curated-tree arena slot.
pub const KIND_NODE: u8 = 1;
/// Page kind: one node's direct provenance records.
pub const KIND_PROV: u8 = 2;
/// Page kind: one published-version archive snapshot (fat-node).
pub const KIND_SNAP: u8 = 3;

/// Payload bytes available in chunk 0 after its length prefix.
const CHUNK0_DATA: usize = PAGE_SIZE - 4;

/// Packs an object address into a page id. Object ids above 2^40 and
/// chunk indices above 2^16 are out of range (a curated tree would
/// need a trillion arena slots to get there).
pub fn page_key(kind: u8, obj: u64, chunk: u16) -> u64 {
    debug_assert!(obj < (1 << 40), "object id {obj} exceeds 40 bits");
    (u64::from(kind) << 56) | ((obj & 0xFF_FFFF_FFFF) << 16) | u64::from(chunk)
}

/// Splits a page id back into `(kind, object, chunk)`.
pub fn split_key(key: u64) -> (u8, u64, u16) {
    ((key >> 56) as u8, (key >> 16) & 0xFF_FFFF_FFFF, key as u16)
}

/// The paged curated-state store: a [`BufferPool`] plus the object
/// layer.
#[derive(Debug)]
pub struct PagedState<I: Io> {
    pool: BufferPool<I>,
}

impl<I: Io> PagedState<I> {
    /// Opens (creating if empty) a paged state over `io` with a pool
    /// of `pool_pages` frames. `limit` is the checkpoint-anchor heap
    /// watermark — see [`PageStore::open`].
    pub fn open(
        io: I,
        pool_pages: usize,
        limit: Option<u64>,
        metrics: &Metrics,
    ) -> Result<Self, StorageError> {
        let store = PageStore::open(io, limit)?;
        Ok(PagedState {
            pool: BufferPool::new(store, pool_pages, metrics),
        })
    }

    /// Writes `bytes` as object `(kind, obj)`, chunking across pages.
    pub fn put_object(&mut self, kind: u8, obj: u64, bytes: &[u8]) -> Result<(), StorageError> {
        let mut chunk0 = Vec::with_capacity(4 + bytes.len().min(CHUNK0_DATA));
        chunk0.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        let head = bytes.len().min(CHUNK0_DATA);
        chunk0.extend_from_slice(&bytes[..head]);
        self.pool.put(page_key(kind, obj, 0), &chunk0)?;
        let mut at = head;
        let mut chunk: u16 = 1;
        while at < bytes.len() {
            let take = (bytes.len() - at).min(PAGE_SIZE);
            self.pool
                .put(page_key(kind, obj, chunk), &bytes[at..at + take])?;
            at += take;
            chunk = chunk.checked_add(1).ok_or_else(|| {
                StorageError::Io(format!("object {kind}/{obj} exceeds chunk range"))
            })?;
        }
        Ok(())
    }

    /// Reads object `(kind, obj)` back, following its chunk chain.
    /// `None` when the heap has no chunk 0 for it.
    pub fn get_object(&mut self, kind: u8, obj: u64) -> Result<Option<Vec<u8>>, StorageError> {
        let Some(first) = self.pool.get(page_key(kind, obj, 0))? else {
            return Ok(None);
        };
        if first.len() < 4 {
            return Err(StorageError::Corrupt(format!(
                "object {kind}/{obj} chunk 0 shorter than its length prefix"
            )));
        }
        let total = u32::from_le_bytes(first[..4].try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&first[4..]);
        if out.len() > total {
            out.truncate(total);
        }
        let mut chunk: u16 = 1;
        while out.len() < total {
            let key = page_key(kind, obj, chunk);
            let Some(piece) = self.pool.get(key)? else {
                return Err(StorageError::Corrupt(format!(
                    "object {kind}/{obj} truncated at chunk {chunk}"
                )));
            };
            let need = total - out.len();
            out.extend_from_slice(&piece[..piece.len().min(need)]);
            chunk = chunk
                .checked_add(1)
                .ok_or_else(|| StorageError::Corrupt("chunk chain overflow".into()))?;
        }
        Ok(Some(out))
    }

    // ------------------------------------------- curated-state layer

    /// Captures arena slot `index` of `tree` as its node object.
    pub fn capture_node(
        &mut self,
        tree: &cdb_curation::TreeDb,
        index: usize,
    ) -> Result<(), StorageError> {
        let bytes = wire::encode_tree_node(tree, index).ok_or_else(|| {
            StorageError::Io(format!("capture of out-of-range arena slot {index}"))
        })?;
        self.put_object(KIND_NODE, index as u64, &bytes)
    }

    /// Captures node `index`'s direct provenance records (a no-op
    /// when the node has none and the heap holds none for it).
    pub fn capture_prov(
        &mut self,
        prov: &cdb_curation::ProvStore,
        index: usize,
    ) -> Result<(), StorageError> {
        let recs = wire::direct_prov_records(prov, index);
        if recs.is_empty() && self.get_object(KIND_PROV, index as u64)?.is_none() {
            return Ok(());
        }
        self.put_object(KIND_PROV, index as u64, &wire::encode_prov_records(recs))
    }

    /// Captures published-version snapshot `version` (opaque archive
    /// value bytes — the fat-node payload).
    pub fn capture_snapshot(&mut self, version: usize, bytes: &[u8]) -> Result<(), StorageError> {
        self.put_object(KIND_SNAP, version as u64, bytes)
    }

    /// Reads one tree node without materializing the whole tree — the
    /// larger-than-memory read path (`None` for an absent slot).
    pub fn node(&mut self, index: u64) -> Result<Option<PagedNode>, StorageError> {
        match self.get_object(KIND_NODE, index)? {
            None => Ok(None),
            Some(bytes) => Ok(Some(wire::decode_tree_node(&bytes)?)),
        }
    }

    /// Reads one node's direct provenance records (empty when none
    /// were captured).
    pub fn node_prov(&mut self, index: u64) -> Result<Vec<cdb_curation::ProvRecord>, StorageError> {
        match self.get_object(KIND_PROV, index)? {
            None => Ok(Vec::new()),
            Some(bytes) => Ok(wire::decode_prov_records(&bytes)?),
        }
    }

    /// Walks `path` (`/label/label/...`) from `root` through the pool,
    /// one node page at a time — the paged counterpart of
    /// `TreeDb::resolve_path`, used by the differential harness.
    pub fn resolve_path(&mut self, root: u64, path: &str) -> Result<Option<u64>, StorageError> {
        let mut at = root;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            let Some(node) = self.node(at)? else {
                return Ok(None);
            };
            let mut next = None;
            for child in node.children {
                if let Some(c) = self.node(child)? {
                    if c.alive && c.label == seg {
                        next = Some(child);
                        break;
                    }
                }
            }
            match next {
                Some(n) => at = n,
                None => return Ok(None),
            }
        }
        Ok(Some(at))
    }

    /// Recursively folds the live subtree under `index` into a value
    /// count + leaf atoms, for differential comparison against the
    /// resident tree (a cheap structural digest).
    pub fn subtree_atoms(
        &mut self,
        index: u64,
    ) -> Result<Vec<(String, Option<Atom>)>, StorageError> {
        let mut out = Vec::new();
        let mut stack = vec![index];
        while let Some(i) = stack.pop() {
            let Some(node) = self.node(i)? else {
                return Err(StorageError::Corrupt(format!("missing node page {i}")));
            };
            if !node.alive {
                continue;
            }
            out.push((node.label.clone(), node.value.clone()));
            for c in node.children.iter().rev() {
                stack.push(*c);
            }
        }
        Ok(out)
    }

    /// Materializes the whole tree from node pages `0..arena_len` —
    /// the checkpoint-recovery path. Every slot must be present.
    pub fn materialize_tree(
        &mut self,
        name: &str,
        root: u64,
        arena_len: u64,
    ) -> Result<cdb_curation::TreeDb, StorageError> {
        let mut nodes = Vec::with_capacity(arena_len as usize);
        for i in 0..arena_len {
            let Some(node) = self.node(i)? else {
                return Err(StorageError::Corrupt(format!(
                    "paged checkpoint missing node page {i} of {arena_len}"
                )));
            };
            nodes.push(node);
        }
        Ok(wire::tree_from_paged_nodes(name, root, nodes)?)
    }

    /// Materializes the provenance store from every prov page below
    /// `arena_len`.
    pub fn materialize_prov(
        &mut self,
        mode: cdb_curation::StoreMode,
        arena_len: u64,
    ) -> Result<cdb_curation::ProvStore, StorageError> {
        let objs: Vec<u64> = self
            .pool
            .store()
            .page_ids()
            .filter_map(|k| {
                let (kind, obj, chunk) = split_key(k);
                (kind == KIND_PROV && chunk == 0 && obj < arena_len).then_some(obj)
            })
            .collect();
        let mut entries = Vec::with_capacity(objs.len());
        for obj in objs {
            entries.push((obj, self.node_prov(obj)?));
        }
        Ok(wire::prov_from_paged(mode, entries)?)
    }

    /// Materializes the first `count` published-version snapshots.
    pub fn materialize_snapshots(&mut self, count: usize) -> Result<Vec<Vec<u8>>, StorageError> {
        let mut out = Vec::with_capacity(count);
        for v in 0..count {
            let Some(bytes) = self.get_object(KIND_SNAP, v as u64)? else {
                return Err(StorageError::Corrupt(format!(
                    "paged checkpoint missing snapshot {v} of {count}"
                )));
            };
            out.push(bytes);
        }
        Ok(out)
    }

    /// Flushes every dirty frame and the device — the barrier a
    /// checkpoint takes before installing its anchor.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        self.pool.flush_all()
    }

    /// Logical heap length (the anchor watermark; call after
    /// [`flush`](Self::flush)).
    pub fn heap_len(&self) -> u64 {
        self.pool.heap_len()
    }

    /// Pool statistics (hit/miss/evict/write-back).
    pub fn stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Direct access to the pool (pin/unpin, capacity checks).
    pub fn pool_mut(&mut self) -> &mut BufferPool<I> {
        &mut self.pool
    }

    /// Consumes the state, returning the underlying page store (crash
    /// harnesses drop unflushed frames exactly this way).
    pub fn into_store(self) -> PageStore<I> {
        self.pool.into_store()
    }
}
