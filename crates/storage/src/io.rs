//! Byte-device abstraction the WAL writes through.
//!
//! [`Io`] is the narrow waist between the log format and the world:
//! an append-only byte device with explicit sync points and positional
//! reads. Three implementations:
//!
//! - [`FileIo`] — a real file, syncing with `File::sync_data` so the
//!   frame bytes (not just metadata) are durable at each sync point;
//! - [`MemIo`] — an in-memory vector, for tests and benchmarks;
//! - [`FaultyIo`] — the deterministic fault injector: it models the
//!   durable image and the not-yet-flushed write cache separately, and
//!   a scripted [`FaultPlan`] makes writes tear, flushes stop early,
//!   reads come back short, and bits rot — all reproducibly, so every
//!   crash test is a unit test.
//!
//! Reads may legitimately return fewer bytes than asked for (short
//! reads); [`read_exact_at`] is the retry loop recovery uses.

use crate::StorageError;

/// An append-only byte device with positional reads and explicit sync.
///
/// `Send + Sync` is part of the contract: devices are moved into
/// databases that are shared across threads (`cdb-core::SharedDb`),
/// and every access goes through `&mut self` behind a lock, so the
/// bounds cost implementations nothing.
pub trait Io: std::fmt::Debug + Send + Sync {
    /// Current device length in bytes (as visible to this handle,
    /// including unflushed writes).
    fn len(&self) -> Result<u64, StorageError>;

    /// Whether the device holds no bytes at all.
    fn is_empty(&self) -> Result<bool, StorageError> {
        Ok(self.len()? == 0)
    }

    /// Reads up to `buf.len()` bytes at `offset`, returning how many
    /// were read (0 at end of device). Short reads are allowed.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError>;

    /// Appends bytes at the end of the device. Not durable until
    /// [`Io::flush`] returns.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Forces previously appended bytes to durable storage.
    fn flush(&mut self) -> Result<(), StorageError>;

    /// Truncates the device to `len` bytes.
    fn truncate(&mut self, len: u64) -> Result<(), StorageError>;

    /// Logical offset where readable data begins. Plain devices keep
    /// every byte, so the base is 0; a segmented device whose oldest
    /// segments have been retired reports the start of the oldest live
    /// segment. Reads below the base are an error.
    fn base(&self) -> u64 {
        0
    }

    /// Retires storage wholly covered by a durable checkpoint at
    /// logical offset `covered`. Plain devices cannot reclaim and
    /// return `Ok(None)`; segmented devices retire fully-covered
    /// sealed segments and report what happened.
    fn reclaim(&mut self, _covered: u64) -> Result<Option<ReclaimStats>, StorageError> {
        Ok(None)
    }

    /// How many live segments back this device (1 for plain devices).
    fn live_segments(&self) -> u64 {
        1
    }
}

/// What one [`Io::reclaim`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Segments retired (archived or deleted) by this pass.
    pub retired: u64,
    /// Physical bytes (headers included) released from the live set.
    pub reclaimed_bytes: u64,
    /// Live segments remaining after the pass.
    pub live: u64,
    /// Whether the pass stopped early on a backing failure (the
    /// remaining covered segments stay live and are retried at the
    /// next checkpoint).
    pub failed: bool,
}

impl Io for Box<dyn Io> {
    fn len(&self) -> Result<u64, StorageError> {
        (**self).len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        (**self).read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        (**self).append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        (**self).flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        (**self).truncate(len)
    }
    fn base(&self) -> u64 {
        (**self).base()
    }
    fn reclaim(&mut self, covered: u64) -> Result<Option<ReclaimStats>, StorageError> {
        (**self).reclaim(covered)
    }
    fn live_segments(&self) -> u64 {
        (**self).live_segments()
    }
}

/// Reads exactly `buf.len()` bytes at `offset`, looping over short
/// reads. Errors if the device ends first.
pub fn read_exact_at(io: &mut dyn Io, offset: u64, buf: &mut [u8]) -> Result<(), StorageError> {
    let mut done = 0;
    while done < buf.len() {
        let n = io.read_at(offset + done as u64, &mut buf[done..])?;
        if n == 0 {
            return Err(StorageError::Io(format!(
                "unexpected end of device at offset {}",
                offset + done as u64
            )));
        }
        done += n;
    }
    Ok(())
}

/// Reads the whole device into memory (short-read tolerant).
pub fn read_all(io: &mut dyn Io) -> Result<Vec<u8>, StorageError> {
    let len = io.len()? as usize;
    let mut buf = vec![0u8; len];
    if len > 0 {
        read_exact_at(io, 0, &mut buf)?;
    }
    Ok(buf)
}

// ------------------------------------------------------------- files

/// A real file. Appends buffer in the OS; [`Io::flush`] calls
/// `sync_data`, which is the durability point crash consistency
/// depends on.
#[derive(Debug)]
pub struct FileIo {
    file: std::fs::File,
    path: std::path::PathBuf,
}

impl FileIo {
    /// Opens (creating if absent) the file at `path` for logging. The
    /// parent directory is fsynced so a freshly created file's
    /// directory entry is itself durable — without this, a crash soon
    /// after creation can lose the whole (synced) log on filesystems
    /// that don't order directory updates with file data.
    pub fn open(path: impl Into<std::path::PathBuf>) -> Result<Self, StorageError> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StorageError::Io(format!("open {}: {e}", path.display())))?;
        sync_parent_dir(&path)
            .map_err(|e| StorageError::Io(format!("sync dir of {}: {e}", path.display())))?;
        Ok(FileIo { file, path })
    }

    /// The backing path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn err(&self, what: &str, e: std::io::Error) -> StorageError {
        StorageError::Io(format!("{what} {}: {e}", self.path.display()))
    }
}

/// Fsyncs the directory holding `path` (unix only; elsewhere a
/// directory handle cannot be fsynced, so this is a no-op).
#[cfg(unix)]
pub(crate) fn sync_parent_dir(path: &std::path::Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

#[cfg(not(unix))]
pub(crate) fn sync_parent_dir(_path: &std::path::Path) -> std::io::Result<()> {
    Ok(())
}

impl Io for FileIo {
    fn len(&self) -> Result<u64, StorageError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| self.err("stat", e))
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        use std::io::{Read, Seek, SeekFrom};
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| self.err("seek", e))?;
        self.file.read(buf).map_err(|e| self.err("read", e))
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        use std::io::{Seek, SeekFrom, Write};
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| self.err("seek", e))?;
        self.file.write_all(bytes).map_err(|e| self.err("write", e))
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.file.sync_data().map_err(|e| self.err("sync", e))
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.file.set_len(len).map_err(|e| self.err("truncate", e))
    }
}

// ------------------------------------------------------------ memory

/// An in-memory device. Everything is "durable" immediately.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MemIo {
    bytes: Vec<u8>,
}

impl MemIo {
    /// An empty device.
    pub fn new() -> Self {
        MemIo::default()
    }

    /// A device pre-loaded with `bytes` — e.g. a crash image from
    /// [`FaultyIo::crash`].
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemIo { bytes }
    }

    /// The device contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Io for MemIo {
    fn len(&self) -> Result<u64, StorageError> {
        Ok(self.bytes.len() as u64)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        let offset = offset.min(self.bytes.len() as u64) as usize;
        let n = buf.len().min(self.bytes.len() - offset);
        buf[..n].copy_from_slice(&self.bytes[offset..offset + n]);
        Ok(n)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.bytes.truncate(len as usize);
        Ok(())
    }
}

// ----------------------------------------------------- fault injection

/// A scripted fault schedule for [`FaultyIo`]. All offsets are
/// absolute device offsets, so a test can aim a fault at any byte of
/// any frame deterministically.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// No byte at or beyond this offset ever reaches durable storage:
    /// the device silently drops the overflow at flush time (a torn
    /// write / lying disk).
    pub torn_write_at: Option<u64>,
    /// Each flush moves at most this many bytes from the write cache
    /// to durable storage (a partial flush that still reports success).
    pub flush_cap: Option<u64>,
    /// The n-th flush (1-based) returns an error and persists nothing.
    pub fail_flush: Option<u32>,
    /// The n-th append (1-based) returns an error and buffers nothing
    /// (a transient write failure — later appends succeed).
    pub fail_append: Option<u32>,
    /// XOR masks applied to the durable image at crash time (bit rot):
    /// `(offset, mask)`. Offsets past the image are ignored.
    pub bit_flips: Vec<(u64, u8)>,
    /// Reads return at most this many bytes, forcing callers through
    /// the short-read retry path.
    pub short_read_chunk: Option<usize>,
}

/// The fault-injecting device: a durable image plus a write cache,
/// faulted per a [`FaultPlan`]. The live handle observes its own
/// writes (like an OS page cache); [`FaultyIo::crash`] discards the
/// cache, applies the scripted corruption, and returns the bytes a
/// post-crash reopen would see.
#[derive(Debug)]
pub struct FaultyIo {
    durable: Vec<u8>,
    pending: Vec<u8>,
    plan: FaultPlan,
    flushes: u32,
    appends: u32,
}

impl FaultyIo {
    /// An empty faulty device with the given schedule.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyIo {
            durable: Vec::new(),
            pending: Vec::new(),
            plan,
            flushes: 0,
            appends: 0,
        }
    }

    /// A faulty device whose durable image starts as `bytes`.
    pub fn with_contents(bytes: Vec<u8>, plan: FaultPlan) -> Self {
        FaultyIo {
            durable: bytes,
            pending: Vec::new(),
            plan,
            flushes: 0,
            appends: 0,
        }
    }

    /// Simulates a crash: unflushed writes are lost, the torn-write
    /// cap and scripted bit flips are applied, and the surviving
    /// durable image is returned (reopen it with [`MemIo::from_bytes`]
    /// or [`FaultyIo::with_contents`]).
    pub fn crash(self) -> Vec<u8> {
        self.durable_image()
    }

    /// The crash image without consuming the device — what a reopen
    /// would see if the machine died right now. Concurrency tests keep
    /// the device alive behind a shared handle and sample this after
    /// the writer threads have been joined.
    pub fn durable_image(&self) -> Vec<u8> {
        let mut image = self.durable.clone();
        if let Some(cap) = self.plan.torn_write_at {
            image.truncate(cap as usize);
        }
        for &(offset, mask) in &self.plan.bit_flips {
            if let Some(b) = image.get_mut(offset as usize) {
                *b ^= mask;
            }
        }
        image
    }

    /// Bytes currently durable (before crash-time corruption).
    pub fn durable_len(&self) -> u64 {
        self.durable.len() as u64
    }
}

impl Io for FaultyIo {
    fn len(&self) -> Result<u64, StorageError> {
        Ok((self.durable.len() + self.pending.len()) as u64)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        let total = self.durable.len() + self.pending.len();
        let offset = offset.min(total as u64) as usize;
        let mut n = buf.len().min(total - offset);
        if let Some(chunk) = self.plan.short_read_chunk {
            n = n.min(chunk.max(1));
        }
        for (i, slot) in buf[..n].iter_mut().enumerate() {
            let pos = offset + i;
            *slot = if pos < self.durable.len() {
                self.durable[pos]
            } else {
                self.pending[pos - self.durable.len()]
            };
        }
        Ok(n)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.appends += 1;
        if self.plan.fail_append == Some(self.appends) {
            return Err(StorageError::Io("injected append failure".into()));
        }
        self.pending.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.flushes += 1;
        if self.plan.fail_flush == Some(self.flushes) {
            return Err(StorageError::Io("injected flush failure".into()));
        }
        let mut n = self.pending.len();
        if let Some(cap) = self.plan.flush_cap {
            n = n.min(cap as usize);
        }
        let moved: Vec<u8> = self.pending.drain(..n).collect();
        self.durable.extend_from_slice(&moved);
        if let Some(cap) = self.plan.torn_write_at {
            if self.durable.len() as u64 >= cap {
                // The lying disk acknowledges but never persists past
                // the cap; the overflow is gone for good, not retried.
                self.durable.truncate(cap as usize);
                self.pending.clear();
            }
        }
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        let len = len as usize;
        if len <= self.durable.len() {
            self.durable.truncate(len);
            self.pending.clear();
        } else {
            self.pending.truncate(len - self.durable.len());
        }
        Ok(())
    }
}

// ---------------------------------------------------- simulated disks

/// Wraps a device and charges a fixed latency per [`Io::flush`],
/// modelling a disk whose sync cost dwarfs its write cost (the regime
/// where group commit pays off). Benchmarks use it so the measured
/// batching speedup reflects the protocol, not the host's fsync cost.
#[derive(Debug)]
pub struct ThrottledIo<I> {
    inner: I,
    sync_latency: std::time::Duration,
}

impl<I: Io> ThrottledIo<I> {
    /// Wraps `inner`, sleeping `sync_latency` on every flush.
    pub fn new(inner: I, sync_latency: std::time::Duration) -> Self {
        ThrottledIo {
            inner,
            sync_latency,
        }
    }

    /// The wrapped device.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: Io> Io for ThrottledIo<I> {
    fn len(&self) -> Result<u64, StorageError> {
        self.inner.len()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.inner.read_at(offset, buf)
    }
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.inner.append(bytes)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        std::thread::sleep(self.sync_latency);
        self.inner.flush()
    }
    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.inner.truncate(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_round_trips() {
        let mut io = MemIo::new();
        io.append(b"hello ").unwrap();
        io.append(b"world").unwrap();
        io.flush().unwrap();
        assert_eq!(io.len().unwrap(), 11);
        let mut buf = [0u8; 5];
        read_exact_at(&mut io, 6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        io.truncate(5).unwrap();
        assert_eq!(io.bytes(), b"hello");
    }

    #[test]
    fn faulty_io_loses_unflushed_writes_on_crash() {
        let mut io = FaultyIo::new(FaultPlan::default());
        io.append(b"durable").unwrap();
        io.flush().unwrap();
        io.append(b" lost").unwrap();
        assert_eq!(io.len().unwrap(), 12); // the handle still sees it
        assert_eq!(io.crash(), b"durable");
    }

    #[test]
    fn torn_write_cap_truncates_durable_bytes() {
        let mut io = FaultyIo::new(FaultPlan {
            torn_write_at: Some(4),
            ..FaultPlan::default()
        });
        io.append(b"abcdefgh").unwrap();
        io.flush().unwrap();
        assert_eq!(io.crash(), b"abcd");
    }

    #[test]
    fn partial_flush_moves_a_bounded_prefix() {
        let mut io = FaultyIo::new(FaultPlan {
            flush_cap: Some(3),
            ..FaultPlan::default()
        });
        io.append(b"abcdef").unwrap();
        io.flush().unwrap();
        assert_eq!(io.durable_len(), 3);
        io.flush().unwrap();
        assert_eq!(io.durable_len(), 6);
        assert_eq!(io.crash(), b"abcdef");
    }

    #[test]
    fn bit_flips_corrupt_the_crash_image_only() {
        let mut io = FaultyIo::new(FaultPlan {
            bit_flips: vec![(1, 0x01), (99, 0xFF)],
            ..FaultPlan::default()
        });
        io.append(b"abc").unwrap();
        io.flush().unwrap();
        let mut buf = [0u8; 3];
        read_exact_at(&mut io, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc"); // live reads are clean
        assert_eq!(io.crash(), b"a\x63c"); // b ^ 0x01 = c
    }

    #[test]
    fn short_reads_are_survivable_via_read_exact_at() {
        let mut io = FaultyIo::with_contents(
            b"0123456789".to_vec(),
            FaultPlan {
                short_read_chunk: Some(3),
                ..FaultPlan::default()
            },
        );
        let mut one = [0u8; 10];
        assert_eq!(io.read_at(0, &mut one).unwrap(), 3);
        let mut buf = [0u8; 10];
        read_exact_at(&mut io, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"0123456789");
    }

    #[test]
    fn injected_flush_failure_persists_nothing() {
        let mut io = FaultyIo::new(FaultPlan {
            fail_flush: Some(1),
            ..FaultPlan::default()
        });
        io.append(b"abc").unwrap();
        assert!(io.flush().is_err());
        assert_eq!(io.durable_len(), 0);
        io.flush().unwrap(); // next flush succeeds
        assert_eq!(io.durable_len(), 3);
    }

    #[test]
    fn file_io_round_trips_on_disk() {
        let path = std::env::temp_dir().join(format!("cdb-fileio-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut io = FileIo::open(&path).unwrap();
            io.append(b"abcdef").unwrap();
            io.flush().unwrap();
            io.truncate(4).unwrap();
        }
        {
            let mut io = FileIo::open(&path).unwrap();
            assert_eq!(io.len().unwrap(), 4);
            let mut buf = [0u8; 4];
            read_exact_at(&mut io, 0, &mut buf).unwrap();
            assert_eq!(&buf, b"abcd");
        }
        let _ = std::fs::remove_file(&path);
    }
}
