//! The segmented log device: fixed-size rotating segments behind the
//! [`Io`] trait, so [`crate::DurableLog`] and the group-commit layer
//! are unchanged while recovery and disk usage stop growing with
//! history.
//!
//! A segment file is a 24-byte physical header followed by payload:
//!
//! ```text
//! segment := b"CDBSEG01" seq:u64le logical_start:u64le payload*
//! ```
//!
//! Segment payloads concatenate into one stable *logical* byte space:
//! offsets handed out by [`Io::len`] never move when segments rotate
//! or retire, so frame offsets recorded in checkpoints stay valid for
//! the life of the log. Rotation happens between appends (each append
//! is one whole frame, so frames never straddle a boundary), and only
//! the newest segment is ever written — older segments are sealed.
//! Flushing goes oldest-first, so the durable image is always a
//! contiguous logical prefix plus possibly-torn bytes in the newest
//! flushed segment; [`SegmentedIo::open`] keeps the longest contiguous
//! run of valid segments and discards the rest, which is exactly the
//! torn-tail rule the frame scanner applies within a segment.
//!
//! [`Io::reclaim`] retires sealed segments wholly covered by a durable
//! checkpoint. Under [`Retention::KeepAll`] (the paper's stance: the
//! curation log is forever) covered segments are *archived* — renamed
//! out of the live set but kept on disk; under [`Retention::Reclaim`]
//! they are deleted. Either way recovery scans only live segments.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::io::{sync_parent_dir, FileIo, Io, ReclaimStats};
use crate::StorageError;

/// Magic header for segment files.
pub const SEG_MAGIC: &[u8; 8] = b"CDBSEG01";
/// Physical header size: magic + seq + logical start.
pub const SEG_HEADER: u64 = 24;
/// Default rotation threshold (1 MiB of payload per segment).
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// What happens to a segment once a checkpoint durably covers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Archive covered segments (rename out of the live set, keep the
    /// bytes). The paper's keep-everything stance: the full curation
    /// log remains on disk, it just stops costing recovery time.
    #[default]
    KeepAll,
    /// Delete covered segments. The checkpoint carries everything
    /// recovery needs; provenance older than the checkpoint is folded
    /// into it and per-transaction history before it is gone.
    Reclaim,
}

/// Rotation and retention policy for a [`SegmentedIo`].
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Rotate once the active segment's payload reaches this size.
    pub segment_bytes: u64,
    /// What to do with checkpoint-covered segments.
    pub retention: Retention,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            retention: Retention::KeepAll,
        }
    }
}

/// Where segment files live: a directory, a test harness, anything
/// that can open, enumerate, and retire numbered segment files.
pub trait SegmentBacking: std::fmt::Debug + Send + Sync {
    /// Opens (creating if absent) the device for segment `seq`.
    fn open(&mut self, seq: u64) -> Result<Box<dyn Io>, StorageError>;
    /// Live segment sequence numbers, ascending.
    fn list(&mut self) -> Result<Vec<u64>, StorageError>;
    /// Removes segment `seq` from the live set, destroying its bytes.
    fn delete(&mut self, seq: u64) -> Result<(), StorageError>;
    /// Removes segment `seq` from the live set, preserving its bytes
    /// out-of-band (rename on disk, a side map in memory).
    fn archive(&mut self, seq: u64) -> Result<(), StorageError>;
}

// -------------------------------------------------------- dir backing

/// Segment files in a directory: `<name>.wal.<seq>` live,
/// `<name>.walarch.<seq>` archived. Every mutation fsyncs the
/// directory so creations, deletions, and archivals are themselves
/// durable.
#[derive(Debug, Clone)]
pub struct DirBacking {
    dir: std::path::PathBuf,
    name: String,
}

impl DirBacking {
    /// A backing over `<dir>/<name>.wal.*`.
    pub fn new(dir: impl Into<std::path::PathBuf>, name: impl Into<String>) -> Self {
        DirBacking {
            dir: dir.into(),
            name: name.into(),
        }
    }

    fn seg_path(&self, seq: u64) -> std::path::PathBuf {
        self.dir.join(format!("{}.wal.{seq}", self.name))
    }

    fn arch_path(&self, seq: u64) -> std::path::PathBuf {
        self.dir.join(format!("{}.walarch.{seq}", self.name))
    }

    fn sync_dir(&self, seq: u64) -> Result<(), StorageError> {
        sync_parent_dir(&self.seg_path(seq))
            .map_err(|e| StorageError::Io(format!("sync dir {}: {e}", self.dir.display())))
    }
}

impl SegmentBacking for DirBacking {
    fn open(&mut self, seq: u64) -> Result<Box<dyn Io>, StorageError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| StorageError::Io(format!("mkdir {}: {e}", self.dir.display())))?;
        Ok(Box::new(FileIo::open(self.seg_path(seq))?))
    }

    fn list(&mut self) -> Result<Vec<u64>, StorageError> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(StorageError::Io(format!(
                    "read dir {}: {e}",
                    self.dir.display()
                )))
            }
        };
        let prefix = format!("{}.wal.", self.name);
        let mut seqs = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| StorageError::Io(format!("read dir {}: {e}", self.dir.display())))?;
            if let Some(suffix) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix(&prefix).map(String::from))
            {
                if let Ok(seq) = suffix.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn delete(&mut self, seq: u64) -> Result<(), StorageError> {
        let path = self.seg_path(seq);
        std::fs::remove_file(&path)
            .map_err(|e| StorageError::Io(format!("remove {}: {e}", path.display())))?;
        self.sync_dir(seq)
    }

    fn archive(&mut self, seq: u64) -> Result<(), StorageError> {
        let from = self.seg_path(seq);
        let to = self.arch_path(seq);
        std::fs::rename(&from, &to)
            .map_err(|e| StorageError::Io(format!("archive {}: {e}", from.display())))?;
        self.sync_dir(seq)
    }
}

// -------------------------------------------------------- mem backing

/// Scripted faults for [`MemBacking`], the segmented counterpart of
/// [`crate::FaultPlan`].
#[derive(Debug, Default, Clone)]
pub struct SegFaultPlan {
    /// A global budget of durable bytes across all segment files, in
    /// flush order: once the budget is spent, flushed bytes are
    /// silently dropped (a lying disk dying mid-sync). Because flushes
    /// go oldest-segment-first, the budget cuts the *logical* byte
    /// stream at an arbitrary physical offset.
    pub torn_flush_budget: Option<u64>,
    /// The first N retire operations (delete or archive) succeed;
    /// later ones fail — a crash or I/O error inside the segment-retire
    /// window, leaving retirement half done.
    pub fail_retire_after: Option<u32>,
}

#[derive(Debug, Default, Clone)]
struct MemSegFile {
    durable: Vec<u8>,
    pending: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemBackingState {
    files: BTreeMap<u64, MemSegFile>,
    archived: BTreeMap<u64, Vec<u8>>,
    plan: SegFaultPlan,
    durable_total: u64,
    retires: u32,
}

/// An in-memory, cloneable segment backing for tests and benches. All
/// clones share state, so a test can keep a handle while a
/// [`SegmentedIo`] owns another, then [`MemBacking::crash`] to get the
/// post-crash backing a reopen would see.
#[derive(Debug, Clone, Default)]
pub struct MemBacking {
    state: Arc<Mutex<MemBackingState>>,
}

impl MemBacking {
    /// A fault-free in-memory backing.
    pub fn new() -> Self {
        MemBacking::default()
    }

    /// An in-memory backing with a scripted fault plan.
    pub fn with_plan(plan: SegFaultPlan) -> Self {
        let me = MemBacking::default();
        me.state.lock().unwrap().plan = plan;
        me
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemBackingState> {
        self.state.lock().unwrap()
    }

    /// Simulates a crash: pending (unflushed) bytes in every segment
    /// file are lost; the surviving durable files are returned as a
    /// fresh fault-free backing for reopening.
    pub fn crash(&self) -> MemBacking {
        let state = self.lock();
        let survivor = MemBacking::default();
        {
            let mut s = survivor.lock();
            for (&seq, f) in &state.files {
                s.files.insert(
                    seq,
                    MemSegFile {
                        durable: f.durable.clone(),
                        pending: Vec::new(),
                    },
                );
            }
            s.archived = state.archived.clone();
        }
        survivor
    }

    /// Live segment sequence numbers (durable view).
    pub fn live_seqs(&self) -> Vec<u64> {
        self.lock().files.keys().copied().collect()
    }

    /// Archived segment sequence numbers.
    pub fn archived_seqs(&self) -> Vec<u64> {
        self.lock().archived.keys().copied().collect()
    }

    /// Total physical bytes across live segment files (durable +
    /// pending, as the live handle sees them).
    pub fn live_bytes(&self) -> u64 {
        self.lock()
            .files
            .values()
            .map(|f| (f.durable.len() + f.pending.len()) as u64)
            .sum()
    }

    /// Replaces the fault plan mid-test.
    pub fn set_plan(&self, plan: SegFaultPlan) {
        self.lock().plan = plan;
    }

    fn retire_check(state: &mut MemBackingState) -> Result<(), StorageError> {
        state.retires += 1;
        if let Some(k) = state.plan.fail_retire_after {
            if state.retires > k {
                return Err(StorageError::Io("injected retire failure".into()));
            }
        }
        Ok(())
    }
}

impl SegmentBacking for MemBacking {
    fn open(&mut self, seq: u64) -> Result<Box<dyn Io>, StorageError> {
        self.lock().files.entry(seq).or_default();
        Ok(Box::new(MemSegIo {
            state: Arc::clone(&self.state),
            seq,
        }))
    }

    fn list(&mut self) -> Result<Vec<u64>, StorageError> {
        Ok(self.lock().files.keys().copied().collect())
    }

    fn delete(&mut self, seq: u64) -> Result<(), StorageError> {
        let mut state = self.lock();
        MemBacking::retire_check(&mut state)?;
        state.files.remove(&seq);
        Ok(())
    }

    fn archive(&mut self, seq: u64) -> Result<(), StorageError> {
        let mut state = self.lock();
        MemBacking::retire_check(&mut state)?;
        if let Some(f) = state.files.remove(&seq) {
            state.archived.insert(seq, f.durable);
        }
        Ok(())
    }
}

/// One segment file of a [`MemBacking`].
#[derive(Debug)]
struct MemSegIo {
    state: Arc<Mutex<MemBackingState>>,
    seq: u64,
}

impl MemSegIo {
    fn with_file<T>(
        &self,
        f: impl FnOnce(&mut MemBackingState, u64) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut state = self.state.lock().unwrap();
        if !state.files.contains_key(&self.seq) {
            return Err(StorageError::Io(format!(
                "segment {} was deleted",
                self.seq
            )));
        }
        f(&mut state, self.seq)
    }
}

impl Io for MemSegIo {
    fn len(&self) -> Result<u64, StorageError> {
        self.with_file(|s, seq| {
            let f = &s.files[&seq];
            Ok((f.durable.len() + f.pending.len()) as u64)
        })
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.with_file(|s, seq| {
            let f = &s.files[&seq];
            let total = f.durable.len() + f.pending.len();
            let offset = offset.min(total as u64) as usize;
            let n = buf.len().min(total - offset);
            for (i, slot) in buf[..n].iter_mut().enumerate() {
                let pos = offset + i;
                *slot = if pos < f.durable.len() {
                    f.durable[pos]
                } else {
                    f.pending[pos - f.durable.len()]
                };
            }
            Ok(n)
        })
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.with_file(|s, seq| {
            s.files
                .get_mut(&seq)
                .unwrap()
                .pending
                .extend_from_slice(bytes);
            Ok(())
        })
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.with_file(|s, seq| {
            let room = s
                .plan
                .torn_flush_budget
                .map(|b| b.saturating_sub(s.durable_total) as usize);
            let f = s.files.get_mut(&seq).unwrap();
            let n = room.map_or(f.pending.len(), |r| f.pending.len().min(r));
            let moved: Vec<u8> = f.pending.drain(..n).collect();
            // Bytes past the budget are acknowledged but never land —
            // the lying disk. They are gone, not retried.
            f.pending.clear();
            f.durable.extend_from_slice(&moved);
            s.durable_total += n as u64;
            Ok(())
        })
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        self.with_file(|s, seq| {
            let f = s.files.get_mut(&seq).unwrap();
            let len = len as usize;
            if len <= f.durable.len() {
                f.durable.truncate(len);
                f.pending.clear();
            } else {
                f.pending.truncate(len - f.durable.len());
            }
            Ok(())
        })
    }
}

// --------------------------------------------------------- the device

#[derive(Debug)]
struct Seg {
    seq: u64,
    start: u64,
    payload: u64,
    io: Box<dyn Io>,
    dirty: bool,
}

impl Seg {
    fn end(&self) -> u64 {
        self.start + self.payload
    }
}

/// A segmented log device: rotating fixed-size segments presenting one
/// stable logical byte space through the [`Io`] trait.
#[derive(Debug)]
pub struct SegmentedIo {
    backing: Box<dyn SegmentBacking>,
    cfg: SegmentConfig,
    segs: Vec<Seg>,
}

impl SegmentedIo {
    /// Opens (or initializes) a segmented device over `backing`. The
    /// longest contiguous run of valid segments survives: a segment
    /// with a torn header, the wrong sequence number, or a logical
    /// start that doesn't continue its predecessor — and everything
    /// after it — is dropped, the same first-bad-point rule the frame
    /// scanner applies within a segment.
    pub fn open(
        mut backing: Box<dyn SegmentBacking>,
        cfg: SegmentConfig,
    ) -> Result<Self, StorageError> {
        let seqs = backing.list()?;
        let mut segs: Vec<Seg> = Vec::new();
        let mut drop_rest = false;
        for seq in seqs {
            if drop_rest {
                backing.delete(seq)?;
                continue;
            }
            let mut io = backing.open(seq)?;
            let start = match (read_seg_header(&mut io, seq)?, segs.last()) {
                (Some(start), None) => Some(start),
                (Some(start), Some(prev)) if prev.seq + 1 == seq && start == prev.end() => {
                    Some(start)
                }
                _ => None,
            };
            match start {
                Some(start) => {
                    let payload = io.len()? - SEG_HEADER;
                    segs.push(Seg {
                        seq,
                        start,
                        payload,
                        io,
                        dirty: false,
                    });
                }
                None => {
                    drop(io);
                    backing.delete(seq)?;
                    drop_rest = true;
                }
            }
        }
        let mut me = SegmentedIo { backing, cfg, segs };
        if me.segs.is_empty() {
            me.create_segment(0, 0)?;
        }
        Ok(me)
    }

    /// Opens a segmented device over directory files
    /// `<dir>/<name>.wal.<seq>`.
    pub fn open_dir(
        dir: impl Into<std::path::PathBuf>,
        name: impl Into<String>,
        cfg: SegmentConfig,
    ) -> Result<Self, StorageError> {
        SegmentedIo::open(Box::new(DirBacking::new(dir, name)), cfg)
    }

    /// An in-memory segmented device plus a shared handle to its
    /// backing (for crash simulation and inspection).
    pub fn mem(cfg: SegmentConfig) -> Result<(Self, MemBacking), StorageError> {
        let backing = MemBacking::new();
        let io = SegmentedIo::open(Box::new(backing.clone()), cfg)?;
        Ok((io, backing))
    }

    /// The active rotation/retention policy.
    pub fn config(&self) -> SegmentConfig {
        self.cfg
    }

    /// Live segment sequence numbers, ascending.
    pub fn segment_seqs(&self) -> Vec<u64> {
        self.segs.iter().map(|s| s.seq).collect()
    }

    fn create_segment(&mut self, seq: u64, start: u64) -> Result<(), StorageError> {
        let mut io = self.backing.open(seq)?;
        io.truncate(0)?;
        let mut hdr = Vec::with_capacity(SEG_HEADER as usize);
        hdr.extend_from_slice(SEG_MAGIC);
        hdr.extend_from_slice(&seq.to_le_bytes());
        hdr.extend_from_slice(&start.to_le_bytes());
        io.append(&hdr)?;
        self.segs.push(Seg {
            seq,
            start,
            payload: 0,
            io,
            dirty: true,
        });
        Ok(())
    }

    fn logical_len(&self) -> u64 {
        self.segs.last().map_or(0, Seg::end)
    }

    fn reinit(&mut self) -> Result<(), StorageError> {
        while let Some(seg) = self.segs.pop() {
            drop(seg.io);
            self.backing.delete(seg.seq)?;
        }
        self.create_segment(0, 0)
    }
}

fn read_seg_header(io: &mut Box<dyn Io>, expect_seq: u64) -> Result<Option<u64>, StorageError> {
    if io.len()? < SEG_HEADER {
        return Ok(None);
    }
    let mut hdr = [0u8; SEG_HEADER as usize];
    crate::io::read_exact_at(io, 0, &mut hdr)?;
    if &hdr[..8] != SEG_MAGIC {
        return Ok(None);
    }
    let seq = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
    if seq != expect_seq {
        return Ok(None);
    }
    Ok(Some(u64::from_le_bytes(hdr[16..24].try_into().unwrap())))
}

impl Io for SegmentedIo {
    fn len(&self) -> Result<u64, StorageError> {
        Ok(self.logical_len())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        let base = self.base();
        if offset < base {
            return Err(StorageError::Io(format!(
                "read at {offset} below retired base {base}"
            )));
        }
        if offset >= self.logical_len() || buf.is_empty() {
            return Ok(0);
        }
        let idx = self
            .segs
            .iter()
            .rposition(|s| s.start <= offset)
            .expect("offset >= base implies a containing segment");
        let seg = &mut self.segs[idx];
        let within = offset - seg.start;
        let n = buf.len().min((seg.payload - within) as usize);
        seg.io.read_at(SEG_HEADER + within, &mut buf[..n])
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let rotate = self
            .segs
            .last()
            .is_none_or(|s| s.payload >= self.cfg.segment_bytes);
        if rotate {
            let seq = self.segs.last().map_or(0, |s| s.seq + 1);
            let start = self.logical_len();
            self.create_segment(seq, start)?;
        }
        let seg = self.segs.last_mut().expect("an active segment exists");
        seg.io.append(bytes)?;
        seg.payload += bytes.len() as u64;
        seg.dirty = true;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        // Oldest-first, so the durable image is always a contiguous
        // logical prefix (up to torn bytes in the last flushed file).
        for seg in &mut self.segs {
            if seg.dirty {
                seg.io.flush()?;
                seg.dirty = false;
            }
        }
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        let base = self.base();
        if len < base {
            if len == 0 {
                return self.reinit();
            }
            return Err(StorageError::Io(format!(
                "truncate to {len} below retired base {base}"
            )));
        }
        while self.segs.len() > 1 && self.segs.last().is_some_and(|s| s.start >= len) {
            let seg = self.segs.pop().expect("len checked above");
            drop(seg.io);
            self.backing.delete(seg.seq)?;
        }
        let seg = self.segs.last_mut().expect("at least one segment is live");
        let within = len - seg.start;
        if within < seg.payload {
            seg.io.truncate(SEG_HEADER + within)?;
            seg.payload = within;
            seg.dirty = true;
        }
        Ok(())
    }

    fn base(&self) -> u64 {
        self.segs.first().map_or(0, |s| s.start)
    }

    fn reclaim(&mut self, covered: u64) -> Result<Option<ReclaimStats>, StorageError> {
        let mut stats = ReclaimStats::default();
        // The active segment is never retired: recovery always needs a
        // live tail to scan, and losing the newest header would orphan
        // the logical offset chain.
        while self.segs.len() > 1 && self.segs[0].end() <= covered {
            let seq = self.segs[0].seq;
            let bytes = SEG_HEADER + self.segs[0].payload;
            let outcome = match self.cfg.retention {
                Retention::KeepAll => self.backing.archive(seq),
                Retention::Reclaim => self.backing.delete(seq),
            };
            if outcome.is_err() {
                // Half-done retirement is safe: the live set stays
                // contiguous and the next checkpoint retries.
                stats.failed = true;
                break;
            }
            self.segs.remove(0);
            stats.retired += 1;
            stats.reclaimed_bytes += bytes;
        }
        stats.live = self.segs.len() as u64;
        Ok(Some(stats))
    }

    fn live_segments(&self) -> u64 {
        self.segs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_exact_at;

    fn small(segment_bytes: u64, retention: Retention) -> SegmentConfig {
        SegmentConfig {
            segment_bytes,
            retention,
        }
    }

    fn fill(io: &mut SegmentedIo, chunks: &[&[u8]]) {
        for c in chunks {
            io.append(c).unwrap();
        }
        io.flush().unwrap();
    }

    #[test]
    fn appends_rotate_and_logical_space_is_stable() {
        let (mut io, backing) = SegmentedIo::mem(small(10, Retention::KeepAll)).unwrap();
        fill(&mut io, &[b"aaaaaa", b"bbbbbb", b"cccccc", b"dddddd"]);
        assert_eq!(io.len().unwrap(), 24);
        assert!(io.live_segments() > 1, "rotation must have happened");
        let mut buf = [0u8; 24];
        read_exact_at(&mut io, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"aaaaaabbbbbbccccccdddddd");
        // A read straddling a segment boundary (offset 8 crosses the
        // first rotation at logical 12).
        let mut mid = [0u8; 10];
        read_exact_at(&mut io, 8, &mut mid).unwrap();
        assert_eq!(&mid, b"bbbbcccccc");
        drop(io);
        let mut re =
            SegmentedIo::open(Box::new(backing.crash()), small(10, Retention::KeepAll)).unwrap();
        let mut buf2 = [0u8; 24];
        read_exact_at(&mut re, 0, &mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn truncate_across_a_boundary_deletes_newer_segments() {
        let (mut io, _) = SegmentedIo::mem(small(8, Retention::KeepAll)).unwrap();
        fill(&mut io, &[b"aaaaaaaa", b"bbbbbbbb", b"cccccccc"]);
        assert_eq!(io.live_segments(), 3);
        io.truncate(10).unwrap();
        assert_eq!(io.len().unwrap(), 10);
        assert_eq!(io.live_segments(), 2);
        io.append(b"XX").unwrap();
        let mut buf = [0u8; 12];
        read_exact_at(&mut io, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"aaaaaaaabbXX");
    }

    #[test]
    fn reclaim_retires_covered_segments_and_advances_base() {
        for retention in [Retention::KeepAll, Retention::Reclaim] {
            let (mut io, backing) = SegmentedIo::mem(small(8, retention)).unwrap();
            fill(&mut io, &[b"aaaaaaaa", b"bbbbbbbb", b"cccccccc"]);
            let stats = io.reclaim(16).unwrap().unwrap();
            assert_eq!(stats.retired, 2);
            assert_eq!(stats.live, 1);
            assert!(!stats.failed);
            assert_eq!(io.base(), 16);
            assert_eq!(io.len().unwrap(), 24);
            let mut tail = [0u8; 8];
            read_exact_at(&mut io, 16, &mut tail).unwrap();
            assert_eq!(&tail, b"cccccccc");
            assert!(io.read_at(0, &mut tail).is_err(), "reads below base fail");
            match retention {
                Retention::KeepAll => assert_eq!(backing.archived_seqs(), vec![0, 1]),
                Retention::Reclaim => assert!(backing.archived_seqs().is_empty()),
            }
            // Reopen after retirement: base survives.
            drop(io);
            let re = SegmentedIo::open(Box::new(backing.crash()), small(8, retention)).unwrap();
            assert_eq!(re.base(), 16);
            assert_eq!(re.len().unwrap(), 24);
        }
    }

    #[test]
    fn reclaim_never_retires_the_active_segment() {
        let (mut io, _) = SegmentedIo::mem(small(8, Retention::Reclaim)).unwrap();
        fill(&mut io, &[b"aaaaaaaa", b"bbbbbbbb"]);
        let stats = io.reclaim(u64::MAX).unwrap().unwrap();
        assert_eq!(stats.live, 1);
        assert_eq!(io.live_segments(), 1);
        assert_eq!(io.len().unwrap(), 16);
    }

    #[test]
    fn failed_retire_keeps_the_live_set_contiguous() {
        let backing = MemBacking::with_plan(SegFaultPlan {
            fail_retire_after: Some(1),
            ..SegFaultPlan::default()
        });
        let mut io =
            SegmentedIo::open(Box::new(backing.clone()), small(8, Retention::Reclaim)).unwrap();
        fill(&mut io, &[b"aaaaaaaa", b"bbbbbbbb", b"cccccccc"]);
        let stats = io.reclaim(16).unwrap().unwrap();
        assert_eq!(stats.retired, 1);
        assert!(stats.failed);
        assert_eq!(io.base(), 8);
        // Reopen: still a contiguous prefix starting at the new base.
        let re =
            SegmentedIo::open(Box::new(backing.crash()), small(8, Retention::Reclaim)).unwrap();
        assert_eq!(re.base(), 8);
        assert_eq!(re.len().unwrap(), 24);
    }

    #[test]
    fn torn_flush_budget_keeps_a_contiguous_durable_prefix() {
        let payload: Vec<&[u8]> = vec![b"aaaaaaaa", b"bbbbbbbb", b"cccccccc"];
        let full: Vec<u8> = payload.concat();
        // Physical bytes = per-segment header + payload; enumerate
        // every budget and assert the surviving logical bytes are a
        // prefix of the full stream.
        for budget in 0..=(3 * SEG_HEADER + 24) {
            let backing = MemBacking::with_plan(SegFaultPlan {
                torn_flush_budget: Some(budget),
                ..SegFaultPlan::default()
            });
            let mut io =
                SegmentedIo::open(Box::new(backing.clone()), small(8, Retention::KeepAll)).unwrap();
            for c in &payload {
                io.append(c).unwrap();
                io.flush().unwrap();
            }
            drop(io);
            let mut re =
                SegmentedIo::open(Box::new(backing.crash()), small(8, Retention::KeepAll)).unwrap();
            let len = re.len().unwrap();
            let base = re.base();
            assert_eq!(base, 0);
            let mut got = vec![0u8; (len - base) as usize];
            if !got.is_empty() {
                read_exact_at(&mut re, base, &mut got).unwrap();
            }
            assert!(
                full.starts_with(&got),
                "budget {budget}: survivors are not a prefix"
            );
        }
    }

    #[test]
    fn dir_backing_round_trips_rotation_and_archival() {
        let dir = std::env::temp_dir().join(format!("cdb-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut io = SegmentedIo::open_dir(&dir, "db", small(8, Retention::KeepAll)).unwrap();
            fill(&mut io, &[b"aaaaaaaa", b"bbbbbbbb", b"cccccccc"]);
            let stats = io.reclaim(16).unwrap().unwrap();
            assert_eq!(stats.retired, 2);
        }
        {
            let mut io = SegmentedIo::open_dir(&dir, "db", small(8, Retention::KeepAll)).unwrap();
            assert_eq!(io.base(), 16);
            assert_eq!(io.len().unwrap(), 24);
            let mut tail = [0u8; 8];
            read_exact_at(&mut io, 16, &mut tail).unwrap();
            assert_eq!(&tail, b"cccccccc");
        }
        assert!(dir.join("db.walarch.0").exists());
        assert!(dir.join("db.walarch.1").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
