//! Flight-recorder fault classes.
//!
//! Two invariants from the observability design (DESIGN.md §29):
//!
//! 1. **The black box fires on corruption.** An injected `Corrupt`
//!    recovery — the one storage failure that loses data — must leave
//!    a loadable flight dump in the installed directory, reason
//!    `storage.recovery.corrupt`, whose body parses back to spans.
//! 2. **The dump itself is never torn.** The persist discipline is
//!    temp + fsync + rename; a crash may still leave the dump file
//!    holding any byte prefix of the encoded bytes (torn write on a
//!    misbehaving filesystem) or a stray `flight.tmp`. Enumerating
//!    every cut offset — the same fault model `FaultyIo` applies to
//!    WAL images, applied here to the dump file — `load` must answer
//!    loadable-or-absent: the complete dump, `Ok(None)`, or a
//!    detection `Err`. Never a silently wrong `Ok(Some)`.

use cdb_curation::provstore::StoreMode;
use cdb_curation::wire::encode_transaction;
use cdb_obs::flight::{self, FlightDump, DUMP_FILE, TMP_FILE};
use cdb_obs::Metrics;
use cdb_storage::{recover, DurableLog, MemIo, StorageError, FRAME_TXN};
use cdb_workload::sessions::{CurationSim, SessionConfig};

use std::path::PathBuf;

/// A private scratch directory under the OS temp dir; removed by
/// the returned guard even when the test panics.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        // pid + per-test tag: unique across parallel test binaries
        // and across this binary's parallel test threads.
        let dir = std::env::temp_dir().join(format!("cdb-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A WAL image whose transaction ids are swapped out of order — the
/// deterministic `Corrupt` trigger (recovery refuses non-monotone
/// ids because they imply a log spliced from different histories).
fn out_of_order_wal() -> MemIo {
    let mut sim = CurationSim::new(
        11,
        StoreMode::Hereditary,
        SessionConfig {
            source_entries: 4,
            fields_per_entry: 2,
            transactions: 3,
            pastes_per_txn: 1,
            edits_per_txn: 1,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    let db = sim.target;
    assert!(db.log.len() >= 2, "simulator must yield two transactions");
    let mut log = DurableLog::create(MemIo::new()).unwrap();
    log.append(FRAME_TXN, &encode_transaction(&db.log[1]))
        .unwrap();
    log.append(FRAME_TXN, &encode_transaction(&db.log[0]))
        .unwrap();
    log.sync().unwrap();
    log.into_io()
}

/// Invariant 1: corruption triggers the black box. This test is the
/// only one in the binary that `install`s the process-global recorder
/// (install/uninstall bracket it), so parallel siblings cannot race
/// on it — they drive `persist`/`load` on private dirs directly.
#[test]
fn injected_corrupt_recovery_leaves_a_loadable_flight_dump() {
    let scratch = ScratchDir::new("corrupt");
    flight::install(&scratch.0);

    let err = recover("r", StoreMode::Hereditary, out_of_order_wal(), None).unwrap_err();
    assert!(
        matches!(err, StorageError::Corrupt(_)),
        "the swapped WAL must recover as Corrupt, got: {err}"
    );

    let dump = flight::load(&scratch.0)
        .expect("dump must validate")
        .expect("a Corrupt recovery must have persisted a dump");
    assert_eq!(dump.reason, "storage.recovery.corrupt");
    assert!(dump.seq >= 1, "dump sequence starts at one");
    assert!(
        dump.body.contains("\"type\":\"flight\""),
        "body must carry the flight header line"
    );
    dump.spans().expect("the dump's span section must parse");

    flight::uninstall();
}

/// A dump with enough in it that truncations land inside every
/// section: header line, metrics lines, span lines.
fn sample_dump() -> FlightDump {
    let m = Metrics::new();
    m.counter("storage.wal.sync").add(42);
    m.histogram("storage.buffer.stall_ns").record(1_000);
    cdb_obs::set_tracing(true);
    {
        let _a = cdb_obs::SpanGuard::enter("test.flight.outer");
        let _b = cdb_obs::SpanGuard::with_attr("test.flight.inner", 7);
    }
    cdb_obs::set_tracing(false);
    FlightDump::capture("test.flight.cut", 3, &m.snapshot())
}

/// Invariant 2, crash cuts: for every byte prefix of the encoded
/// bytes sitting where `flight.dump` should be, `load` detects the
/// tear. Only the complete bytes round-trip.
#[test]
fn every_byte_offset_cut_of_a_dump_is_loadable_or_absent_never_torn() {
    let scratch = ScratchDir::new("cuts");
    let dump = sample_dump();
    let bytes = flight::encode(&dump);
    assert_eq!(
        flight::decode(&bytes).as_ref(),
        Ok(&dump),
        "encode/decode must round-trip before cutting"
    );

    let path = scratch.0.join(DUMP_FILE);
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let res = flight::load(&scratch.0);
        assert!(
            !matches!(res, Ok(Some(_))),
            "cut at byte {cut}/{} must not load as a whole dump: {res:?}",
            bytes.len()
        );
    }
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(
        flight::load(&scratch.0),
        Ok(Some(dump)),
        "the complete bytes must load back exactly"
    );
}

/// Invariant 2, bit rot: the FNV checksum in the header catches every
/// low-bit flip in the payload (and header flips fail parsing or
/// change the claimed length/checksum), so a rotted dump is an `Err`,
/// never wrong data.
#[test]
fn every_single_byte_flip_of_a_dump_is_rejected() {
    let scratch = ScratchDir::new("flips");
    let bytes = flight::encode(&sample_dump());
    let path = scratch.0.join(DUMP_FILE);
    for i in 0..bytes.len() {
        let mut rotted = bytes.clone();
        rotted[i] ^= 0x01;
        std::fs::write(&path, &rotted).unwrap();
        assert!(
            flight::load(&scratch.0).is_err(),
            "flip at byte {i} must be detected"
        );
    }
}

/// Invariant 2, mid-persist crash: a stray `flight.tmp` (any prefix
/// of a new dump, cut before the rename) neither shadows nor damages
/// the previously completed dump; with no completed dump at all the
/// answer is a clean `Ok(None)`.
#[test]
fn a_torn_tmp_file_never_shadows_the_completed_dump() {
    let scratch = ScratchDir::new("tmp");
    let old = sample_dump();
    flight::persist(&scratch.0, &old).unwrap();

    let new_bytes = flight::encode(&FlightDump {
        reason: "test.flight.next".into(),
        seq: 4,
        body: old.body.clone(),
    });
    for cut in [0, 1, new_bytes.len() / 2, new_bytes.len()] {
        std::fs::write(scratch.0.join(TMP_FILE), &new_bytes[..cut]).unwrap();
        assert_eq!(
            flight::load(&scratch.0),
            Ok(Some(old.clone())),
            "tmp cut at {cut} must leave the old dump intact"
        );
    }

    std::fs::remove_file(scratch.0.join(DUMP_FILE)).unwrap();
    assert_eq!(
        flight::load(&scratch.0),
        Ok(None),
        "tmp alone is a cut mid-persist: absent, not an error"
    );
}
