//! Eviction-under-fault tests for the paged storage layer: torn page
//! writes at *every byte offset* of the heap, partial-flush (lying
//! disk) faults during eviction write-back and dirty-page checkpoint
//! capture, and the buffer pool's pin/capacity invariants.
//!
//! The durability claim under test: an acked commit is never lost. The
//! page heap is a cache of the WAL-authoritative state — when a fault
//! leaves the heap unable to serve its checkpoint anchor (the durable
//! prefix is shorter than the anchor watermark, or a record inside it
//! is damaged), recovery falls back to full WAL replay and still lands
//! on exactly the committed state. When the heap *can* serve the
//! anchor, the materialized state is byte-identical to the resident
//! one. There is no third outcome.

use cdb_curation::ops::CuratedTree;
use cdb_curation::provstore::StoreMode;
use cdb_curation::replay::apply_committed;
use cdb_curation::wire::{self, encode_transaction};
use cdb_obs::Metrics;
use cdb_storage::{
    recover, BufferPool, DurableLog, FaultPlan, FaultyIo, Io, MemIo, PageStore, PagedState,
    StorageError, FRAME_TXN,
};
use cdb_workload::sessions::{CurationSim, SessionConfig};

fn session(seed: u64, txns: usize) -> CuratedTree {
    let mut sim = CurationSim::new(
        seed,
        StoreMode::Hereditary,
        SessionConfig {
            source_entries: 3,
            fields_per_entry: 2,
            transactions: txns,
            pastes_per_txn: 1,
            edits_per_txn: 2,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    sim.target
}

/// The session as a synced WAL image — the authoritative record every
/// faulted-heap recovery must fall back to.
fn wal_image(db: &CuratedTree) -> Vec<u8> {
    let mut log = DurableLog::create(MemIo::new()).unwrap();
    for txn in db.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        log.sync().unwrap();
    }
    log.into_io().bytes().to_vec()
}

/// Captures the whole session into a `PagedState` over `io`,
/// transaction by transaction through a tiny pool, so eviction
/// write-backs interleave with the captures (the fault plan on `io`
/// fires *during* that churn, not after it). Returns the state with
/// everything flushed — the dirty-page checkpoint capture barrier.
fn capture_session<I: Io>(db: &CuratedTree, io: I, pool: usize) -> PagedState<I> {
    let metrics = Metrics::new();
    let mut state = PagedState::open(io, pool, None, &metrics).unwrap();
    let mut r = CuratedTree::new(db.tree.name(), StoreMode::Hereditary);
    for txn in &db.log {
        apply_committed(&mut r, txn).unwrap();
        for i in 0..wire::arena_len(&r.tree) {
            state.capture_node(&r.tree, i).unwrap();
            state.capture_prov(&r.prov, i).unwrap();
        }
    }
    state.flush().unwrap();
    state
}

/// The recovery decision the paged open makes, replayed at storage
/// level: use the heap if (and only if) it fully serves the anchor;
/// otherwise replay the WAL. Asserts the recovered state equals `db`
/// either way — the no-lost-acked-commit property.
fn recover_and_check(db: &CuratedTree, crashed_heap: Vec<u8>, watermark: u64, wal: &[u8]) -> bool {
    let metrics = Metrics::new();
    let arena = wire::arena_len(&db.tree) as u64;
    let root = db.tree.root().index() as u64;
    let heap_ok = match PagedState::open(
        MemIo::from_bytes(crashed_heap),
        8,
        Some(watermark),
        &metrics,
    ) {
        Ok(mut state) if state.heap_len() >= watermark => {
            match (
                state.materialize_tree(db.tree.name(), root, arena),
                state.materialize_prov(StoreMode::Hereditary, arena),
            ) {
                (Ok(tree), Ok(prov)) => {
                    // Anchor usable: byte-identical to the resident state.
                    assert_eq!(tree, db.tree, "materialized tree diverged");
                    assert_eq!(prov, db.prov, "materialized prov diverged");
                    true
                }
                _ => false,
            }
        }
        _ => false,
    };
    if !heap_ok {
        // Anchor unusable: the WAL is authoritative and complete.
        let (_, rec) = recover(
            "curated",
            StoreMode::Hereditary,
            MemIo::from_bytes(wal.to_vec()),
            None,
        )
        .unwrap();
        assert_eq!(rec.db.tree, db.tree, "WAL fallback lost a commit");
        assert_eq!(rec.db.prov, db.prov, "WAL fallback lost provenance");
    }
    heap_ok
}

/// Torn page writes at every byte offset of the heap: the device
/// silently drops everything at/past the offset during the capture's
/// eviction churn and final flush. For offsets at or past the full
/// image the anchor must survive intact; below it, recovery must fall
/// back to the WAL — and the committed state is identical either way.
#[test]
fn torn_heap_at_every_offset_never_loses_an_acked_commit() {
    let db = session(7, 4);
    let wal = wal_image(&db);

    // Fault-free capture first, to learn the full image and watermark.
    let clean = capture_session(&db, MemIo::new(), 2);
    let watermark = clean.heap_len();
    let full = clean.into_store().into_io().bytes().to_vec();
    assert_eq!(watermark, full.len() as u64);
    assert!(recover_and_check(&db, full.clone(), watermark, &wal));

    let mut fellback = 0u32;
    for cap in 0..=full.len() as u64 {
        let state = capture_session(
            &db,
            FaultyIo::new(FaultPlan {
                torn_write_at: Some(cap),
                ..FaultPlan::default()
            }),
            2,
        );
        // The device lies: logically everything was written.
        assert_eq!(state.heap_len(), watermark, "offset {cap}");
        let crashed = state.into_store().into_io().crash();
        assert!(crashed.len() as u64 <= cap.min(watermark));
        let used_heap = recover_and_check(&db, crashed, watermark, &wal);
        if cap < watermark {
            assert!(!used_heap, "torn heap at {cap} must not serve the anchor");
            fellback += 1;
        } else {
            assert!(used_heap, "intact heap at {cap} must serve the anchor");
        }
    }
    assert_eq!(fellback, watermark as u32);
}

/// Partial flushes (a lying disk that persists at most `cap` bytes per
/// sync) during eviction and capture: same dichotomy, no third
/// outcome, no lost commit.
#[test]
fn flush_cap_faults_during_eviction_never_lose_an_acked_commit() {
    let db = session(11, 4);
    let wal = wal_image(&db);
    let clean = capture_session(&db, MemIo::new(), 2);
    let watermark = clean.heap_len();

    for cap in (0..watermark)
        .step_by(37)
        .chain([watermark, watermark + 64])
    {
        let state = capture_session(
            &db,
            FaultyIo::new(FaultPlan {
                flush_cap: Some(cap),
                ..FaultPlan::default()
            }),
            2,
        );
        assert_eq!(state.heap_len(), watermark, "cap {cap}");
        let crashed = state.into_store().into_io().crash();
        let used_heap = recover_and_check(&db, crashed, watermark, &wal);
        assert_eq!(
            used_heap,
            cap >= watermark,
            "flush cap {cap} of {watermark}: wrong recovery branch"
        );
    }
}

/// Bit rot inside the durable heap prefix: the opening scan (or the
/// per-read CRC) refuses the damaged record, the anchor is unusable,
/// and the WAL fallback still recovers everything.
#[test]
fn heap_bit_rot_falls_back_to_the_wal() {
    let db = session(13, 3);
    let wal = wal_image(&db);
    let clean = capture_session(&db, MemIo::new(), 2);
    let watermark = clean.heap_len();
    let full = clean.into_store().into_io().bytes().to_vec();

    for offset in (8..full.len() as u64).step_by(97) {
        let io = FaultyIo::with_contents(
            full.clone(),
            FaultPlan {
                bit_flips: vec![(offset, 0x40)],
                ..FaultPlan::default()
            },
        );
        let crashed = io.crash();
        // Damage inside the watermarked prefix always forces the WAL
        // path; recover_and_check asserts the state is intact.
        let used_heap = recover_and_check(&db, crashed, watermark, &wal);
        assert!(!used_heap, "bit rot at {offset} went unnoticed");
    }
}

// ----------------------------------------------------- pool invariants

fn small_store() -> PageStore<MemIo> {
    PageStore::open(MemIo::new(), None).unwrap()
}

/// A pinned frame is never evicted, the pool never exceeds its
/// capacity, and pinning every frame makes the next fetch fail with a
/// typed error rather than silently growing the pool.
#[test]
fn pinned_frames_survive_eviction_pressure() {
    let metrics = Metrics::new();
    let mut store = small_store();
    for p in 0..32u64 {
        store.write_page(p, &[p as u8; 64]).unwrap();
    }
    let mut pool = BufferPool::new(store, 3, &metrics);

    pool.pin(0).unwrap();
    pool.pin(1).unwrap();
    assert_eq!(pool.pins(0), 1);

    // Churn far past capacity: the two pinned pages must stay
    // resident and intact while everything else cycles through the
    // third frame.
    for p in 2..32u64 {
        assert_eq!(pool.get(p).unwrap().unwrap(), &[p as u8; 64]);
        assert!(pool.resident() <= pool.capacity());
    }
    assert_eq!(pool.pins(0), 1, "pinned page 0 was evicted");
    assert_eq!(pool.pins(1), 1, "pinned page 1 was evicted");
    assert_eq!(pool.get(0).unwrap().unwrap(), &[0u8; 64]);
    assert_eq!(pool.get(1).unwrap().unwrap(), &[1u8; 64]);
    let stats = pool.stats();
    assert!(stats.evictions >= 29, "churn must evict (got {stats:?})");

    // Pin the third frame too: now any non-resident fetch must fail.
    pool.pin(0).unwrap(); // second pin on 0 — counts nest
    assert_eq!(pool.pins(0), 2);
    pool.get(5).unwrap(); // 5 now occupies the sole unpinned frame
    pool.pin(5).unwrap();

    let err = pool.get(6).unwrap_err();
    assert!(
        matches!(&err, StorageError::Io(m) if m.contains("exhausted")),
        "expected pool-exhausted error, got {err:?}"
    );
    assert_eq!(pool.resident(), 3, "exhaustion must not grow the pool");

    // Releasing one pin unblocks the fetch.
    pool.unpin(5).unwrap();
    assert!(pool.get(6).unwrap().is_some());
    assert_eq!(pool.resident(), 3);
}

/// Unbalanced unpins are typed errors, and pin counts nest correctly.
#[test]
fn unpin_is_strictly_balanced() {
    let metrics = Metrics::new();
    let mut store = small_store();
    store.write_page(1, b"one").unwrap();
    let mut pool = BufferPool::new(store, 2, &metrics);

    assert!(pool.unpin(1).is_err(), "unpin of a non-resident page");
    pool.pin(1).unwrap();
    pool.pin(1).unwrap();
    assert_eq!(pool.pins(1), 2);
    pool.unpin(1).unwrap();
    pool.unpin(1).unwrap();
    let err = pool.unpin(1).unwrap_err();
    assert!(
        matches!(&err, StorageError::Io(m) if m.contains("unbalanced")),
        "expected unbalanced-unpin error, got {err:?}"
    );
    assert!(pool.pin(99).is_err(), "pin of a page the heap never saw");
}

/// Dirty pages written through the pool survive eviction write-back:
/// evicting a dirty frame appends to the heap, and a later read (after
/// the frame cycled out) serves the newest version.
#[test]
fn dirty_writeback_on_eviction_preserves_newest_version() {
    let metrics = Metrics::new();
    let mut pool = BufferPool::new(small_store(), 2, &metrics);
    pool.put(1, b"v1 of page one").unwrap();
    pool.put(2, b"v1 of page two").unwrap();
    pool.put(1, b"v2 of page one").unwrap();
    // Force both out through a 2-frame pool.
    pool.put(3, b"page three").unwrap();
    pool.put(4, b"page four").unwrap();
    assert!(pool.resident() <= 2);
    assert_eq!(pool.get(1).unwrap().unwrap(), b"v2 of page one");
    assert_eq!(pool.get(2).unwrap().unwrap(), b"v1 of page two");
    assert!(pool.stats().writebacks >= 2);

    // After the flush barrier the heap itself (no pool) serves v2.
    pool.flush_all().unwrap();
    let mut store = pool.into_store();
    assert_eq!(store.read_page(1).unwrap().unwrap(), b"v2 of page one");
    assert_eq!(store.read_page(4).unwrap().unwrap(), b"page four");
}
