//! The 2PC crash matrix: every byte offset of the PREPARE and DECIDE
//! frames on both participants' WALs, restricted to the crash states
//! the protocol's sync ordering can actually produce.
//!
//! The journaling protocol (cdb-core's `ShardedDb::journal`) is:
//!
//! 1. PREPARE appended + synced on shard 0 (the coordinator);
//! 2. PREPARE appended + synced on shard 1;
//! 3. DECIDE(commit) appended + synced on the coordinator — the commit
//!    point; the client's ack gates on this sync;
//! 4. DECIDE appended (lazily synced) on shard 1.
//!
//! So the reachable durable states form a staircase: shard 1's PREPARE
//! can only be durable once shard 0's is, the coordinator's DECIDE only
//! once both PREPAREs are, and shard 1's DECIDE bytes only once the
//! commit point is durable. Within each step a crash mid-sync can leave
//! any byte prefix of the frame being flushed. The matrix walks every
//! such (cut0, cut1) pair and demands that recovery (a) never fails,
//! (b) never half-applies the cross-shard transaction, (c) commits iff
//! the coordinator's DECIDE(commit) is fully durable, (d) agrees across
//! shards, (e) is deterministic, and (f) self-heals in-doubt PREPAREs
//! so a later standalone recovery — without the other shard's log —
//! reaches the same outcome.

use std::collections::BTreeMap;

use cdb_curation::ops::{CuratedTree, TxnId};
use cdb_curation::provstore::StoreMode;
use cdb_curation::wire::encode_transaction;
use cdb_model::Atom;
use cdb_storage::frame::{encode_frame, WAL_MAGIC};
use cdb_storage::{
    encode_decide, encode_prepare, recover, recover_shards, DecideRecord, MemIo, PrepareRecord,
    Recovered, FRAME_AUX, FRAME_DECIDE, FRAME_PREPARE, FRAME_TXN,
};

const GID: u64 = 1;

/// One shard's side of the story: a local base transaction, then its
/// half of one cross-shard transaction.
fn shard_tree(entry: &str, alt_second: bool) -> CuratedTree {
    let mut db = CuratedTree::new("s", StoreMode::Hereditary);
    let root = db.tree.root();
    let mut t = db.begin("base", 10);
    let e = t.insert(root, entry, None).unwrap();
    t.insert(e, "name", Some(Atom::Str(entry.into()))).unwrap();
    t.commit();
    let mut t = db.begin("merge", 20);
    let label = if alt_second { "retry" } else { "merged" };
    t.insert(e, label, Some(Atom::Str("yes".into()))).unwrap();
    t.commit();
    db
}

/// A shard's WAL image with the byte offsets of its 2PC frames:
/// `magic | TXN(base) | PREPARE | DECIDE`.
struct Side {
    image: Vec<u8>,
    /// First byte of the PREPARE frame.
    p_start: usize,
    /// One past the PREPARE frame (PREPARE fully durable).
    p_end: usize,
    /// One past the DECIDE frame.
    d_end: usize,
    base_id: TxnId,
    cross_id: TxnId,
}

fn build_side(tree: &CuratedTree, decide_commit: bool) -> Side {
    let mut image = WAL_MAGIC.to_vec();
    image.extend_from_slice(&encode_frame(FRAME_TXN, &encode_transaction(&tree.log[0])));
    let p_start = image.len();
    let prepare = PrepareRecord {
        gid: GID,
        coordinator: 0,
        participants: vec![0, 1],
        frames: vec![
            (FRAME_TXN, encode_transaction(&tree.log[1])),
            (FRAME_AUX, b"cross-evt".to_vec()),
        ],
    };
    image.extend_from_slice(&encode_frame(FRAME_PREPARE, &encode_prepare(&prepare)));
    let p_end = image.len();
    image.extend_from_slice(&encode_frame(
        FRAME_DECIDE,
        &encode_decide(&DecideRecord {
            gid: GID,
            commit: decide_commit,
        }),
    ));
    Side {
        d_end: image.len(),
        image,
        p_start,
        p_end,
        base_id: tree.log[0].id,
        cross_id: tree.log[1].id,
    }
}

fn ids(rec: &Recovered) -> Vec<TxnId> {
    rec.db.log.iter().map(|t| t.id).collect()
}

/// Recovers the pair of cut images and checks every invariant the
/// matrix demands for that crash state. Returns the per-shard outcomes
/// for the caller's extra assertions.
fn check_cut(s0: &Side, s1: &Side, c0: usize, c1: usize) -> Vec<Recovered> {
    let expect_commit = c0 >= s0.d_end;
    let run = || {
        recover_shards(
            "s",
            StoreMode::Hereditary,
            vec![
                (MemIo::from_bytes(s0.image[..c0].to_vec()), None),
                (MemIo::from_bytes(s1.image[..c1].to_vec()), None),
            ],
            &BTreeMap::new(),
        )
        .unwrap_or_else(|e| panic!("recovery failed at cut ({c0},{c1}): {e}"))
    };
    let out = run();
    let sides = [s0, s1];
    for (i, (_, rec)) in out.iter().enumerate() {
        let s = sides[i];
        // All-or-nothing: the cross txn's id appears exactly when the
        // global outcome is commit — never a partial effect (recover's
        // internal replay_and_verify already cross-checks the tree
        // against its own log).
        let want = if expect_commit {
            vec![s.base_id, s.cross_id]
        } else {
            vec![s.base_id]
        };
        assert_eq!(ids(rec), want, "shard {i} at cut ({c0},{c1})");
        // The aux payload sealed inside the PREPARE rides along iff
        // the transaction committed.
        assert_eq!(
            rec.aux.iter().any(|a| a == b"cross-evt"),
            expect_commit,
            "shard {i} aux at cut ({c0},{c1})"
        );
        let prepared = [c0 >= s0.p_end, c1 >= s1.p_end][i];
        if prepared {
            assert_eq!(
                rec.decisions.get(&GID),
                Some(&expect_commit),
                "shard {i} decision at cut ({c0},{c1})"
            );
            assert_eq!(rec.max_gid, GID, "shard {i} max_gid at cut ({c0},{c1})");
        }
    }
    // Cross-shard agreement, stated directly.
    let committed: Vec<bool> = out
        .iter()
        .map(|(_, r)| ids(r).contains(&sides[0].cross_id) || ids(r).contains(&sides[1].cross_id))
        .collect();
    assert_eq!(
        committed[0], committed[1],
        "shards disagree at cut ({c0},{c1})"
    );

    // Determinism: the same crash state recovers to the same database.
    let again = run();
    for ((_, a), (_, b)) in out.iter().zip(again.iter()) {
        assert_eq!(a.db, b.db, "non-deterministic recovery at cut ({c0},{c1})");
        assert_eq!(a.decisions, b.decisions, "decisions differ at ({c0},{c1})");
    }

    // Self-heal: recovery appended DECIDE frames for every in-doubt
    // resolution, so recovering each shard's log again — standalone,
    // with no context from the other shard — reaches the same outcome.
    let mut recs = Vec::new();
    for (i, (log, rec)) in out.into_iter().enumerate() {
        let healed = log.into_io().bytes().to_vec();
        let (_, solo) = recover("s", StoreMode::Hereditary, MemIo::from_bytes(healed), None)
            .unwrap_or_else(|e| panic!("standalone re-recovery failed at ({c0},{c1}): {e}"));
        assert_eq!(
            ids(&solo),
            ids(&rec),
            "shard {i} standalone re-recovery diverged at cut ({c0},{c1})"
        );
        recs.push(rec);
    }
    recs
}

/// The full staircase: every byte of every 2PC frame on both WALs, in
/// every reachable combination.
#[test]
fn every_reachable_crash_offset_recovers_consistently() {
    let t0 = shard_tree("gaba-a", false);
    let t1 = shard_tree("gaba-b", false);
    let s0 = build_side(&t0, true);
    let s1 = build_side(&t1, true);

    let mut cuts: Vec<(usize, usize)> = Vec::new();
    // Step 1: crash while syncing shard 0's PREPARE.
    for c0 in s0.p_start..=s0.p_end {
        cuts.push((c0, s1.p_start));
    }
    // Step 2: crash while syncing shard 1's PREPARE.
    for c1 in s1.p_start..=s1.p_end {
        cuts.push((s0.p_end, c1));
    }
    // Step 3: crash while syncing the coordinator's DECIDE — the
    // in-doubt window. Commit becomes the outcome only at the last
    // byte.
    for c0 in s0.p_end..=s0.d_end {
        cuts.push((c0, s1.p_end));
    }
    // Step 4: commit point durable; shard 1's lazy DECIDE torn
    // anywhere.
    for c1 in s1.p_end..=s1.d_end {
        cuts.push((s0.d_end, c1));
    }

    for &(c0, c1) in &cuts {
        let recs = check_cut(&s0, &s1, c0, c1);
        // In-doubt windows resolve by presumed abort (before the commit
        // point) or by the coordinator's decision (after), and the
        // resolution is journaled.
        let expect_commit = c0 >= s0.d_end;
        if (s0.p_end..s0.d_end).contains(&c0) {
            assert_eq!(recs[0].resolved, vec![(GID, false)], "cut ({c0},{c1})");
        }
        if c1 == s1.p_end && c1 < s1.d_end {
            assert_eq!(
                recs[1].resolved,
                vec![(GID, expect_commit)],
                "cut ({c0},{c1})"
            );
        }
    }
}

/// The decide-override regression: a failed commit-point sync leaves
/// DECIDE(commit) in the coordinator's write cache; the runtime abort
/// path appends DECIDE(abort) behind it and rolls memory back, and the
/// rolled-back transaction id is reused by a later standalone commit.
/// Both DECIDEs become durable together, in order. Recovery must honor
/// the *last* decision — adopting the PREPARE on the first
/// DECIDE(commit) replays a transaction that never happened and then
/// chokes on the reused id.
#[test]
fn later_abort_decide_overrides_earlier_commit_decide() {
    let t0 = shard_tree("gaba-a", false);
    let t1 = shard_tree("gaba-b", false);
    // The post-abort retry: same base transaction, so the retry txn
    // reuses the rolled-back id with different content.
    let retry = shard_tree("gaba-a", true);
    assert_eq!(retry.log[1].id, t0.log[1].id);

    let s0 = build_side(&t0, true);
    let mut img0 = s0.image.clone();
    img0.extend_from_slice(&encode_frame(
        FRAME_DECIDE,
        &encode_decide(&DecideRecord {
            gid: GID,
            commit: false,
        }),
    ));
    img0.extend_from_slice(&encode_frame(FRAME_TXN, &encode_transaction(&retry.log[1])));
    let s1 = build_side(&t1, false);

    let out = recover_shards(
        "s",
        StoreMode::Hereditary,
        vec![
            (MemIo::from_bytes(img0.clone()), None),
            (MemIo::from_bytes(s1.image.clone()), None),
        ],
        &BTreeMap::new(),
    )
    .expect("recovery over conflicting decides");
    // Coordinator: the prepared txn is dropped, the retry applied — the
    // recovered database is exactly the retry history.
    assert_eq!(out[0].1.db, retry);
    assert_eq!(out[0].1.decisions.get(&GID), Some(&false));
    // Participant: abort, base only.
    assert_eq!(ids(&out[1].1), vec![s1.base_id]);
    assert_eq!(out[1].1.decisions.get(&GID), Some(&false));

    // Standalone recovery of the coordinator's log — no context —
    // reaches the same outcome: the decision sequence is in the log.
    let (_, solo) = recover("s", StoreMode::Hereditary, MemIo::from_bytes(img0), None)
        .expect("standalone recovery over conflicting decides");
    assert_eq!(solo.db, retry);
}

/// Conflicting decides at the very tail of the log: end-of-stream must
/// settle with the last decision, not treat the PREPARE as in-doubt
/// (the decision is already journaled — no self-heal applies).
#[test]
fn conflicting_decides_at_log_tail_settle_last_wins() {
    let t0 = shard_tree("gaba-a", false);
    let s0 = build_side(&t0, true);
    let mut img = s0.image.clone();
    img.extend_from_slice(&encode_frame(
        FRAME_DECIDE,
        &encode_decide(&DecideRecord {
            gid: GID,
            commit: false,
        }),
    ));

    let (_, rec) = recover("s", StoreMode::Hereditary, MemIo::from_bytes(img), None).unwrap();
    assert_eq!(ids(&rec), vec![s0.base_id]);
    assert_eq!(rec.decisions.get(&GID), Some(&false));
    assert!(rec.resolved.is_empty(), "a decided PREPARE is not in doubt");

    // And the mirror image: a single DECIDE(commit) at the tail still
    // commits — deferral must not turn a decided txn into presumed
    // abort.
    let (_, rec) = recover(
        "s",
        StoreMode::Hereditary,
        MemIo::from_bytes(s0.image.clone()),
        None,
    )
    .unwrap();
    assert_eq!(ids(&rec), vec![s0.base_id, s0.cross_id]);
    assert_eq!(rec.decisions.get(&GID), Some(&true));
    assert!(rec.resolved.is_empty());
}

/// An explicit abort decision on the coordinator resolves the
/// participant's in-doubt PREPARE to abort — and journals it there.
#[test]
fn coordinator_abort_decision_resolves_participant_in_doubt() {
    let t0 = shard_tree("gaba-a", false);
    let t1 = shard_tree("gaba-b", false);
    let s0 = build_side(&t0, false); // DECIDE(abort) durable
    let s1 = build_side(&t1, true);
    let c1 = s1.p_end; // participant crashed before its DECIDE

    let out = recover_shards(
        "s",
        StoreMode::Hereditary,
        vec![
            (MemIo::from_bytes(s0.image.clone()), None),
            (MemIo::from_bytes(s1.image[..c1].to_vec()), None),
        ],
        &BTreeMap::new(),
    )
    .expect("recovery under explicit abort");
    assert_eq!(ids(&out[0].1), vec![s0.base_id]);
    assert_eq!(ids(&out[1].1), vec![s1.base_id]);
    assert_eq!(out[1].1.resolved, vec![(GID, false)]);

    // Self-heal: the participant's log now resolves alone.
    let healed = out.into_iter().nth(1).unwrap().0.into_io().bytes().to_vec();
    let (_, solo) = recover("s", StoreMode::Hereditary, MemIo::from_bytes(healed), None).unwrap();
    assert_eq!(ids(&solo), vec![s1.base_id]);
    assert_eq!(solo.decisions.get(&GID), Some(&false));
}
