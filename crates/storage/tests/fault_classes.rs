//! Deterministic enumeration of every injected fault class.
//!
//! Each test scripts one fault class — crash at a byte offset, torn
//! write, partial flush, bit rot, short reads, checkpoint/log skew —
//! and asserts the recovery invariant: the recovered database equals,
//! structurally and provenance-wise, an in-memory reference built by
//! applying exactly the committed (durably synced, checksum-valid)
//! prefix of the log. No randomness: every offset is enumerated, so a
//! failure here is a unit-test failure with a concrete byte address.

use cdb_curation::ops::CuratedTree;
use cdb_curation::provstore::StoreMode;
use cdb_curation::replay::apply_committed;
use cdb_curation::wire::{encode_transaction, Checkpoint};
use cdb_storage::{recover, write_checkpoint, DurableLog, FaultPlan, FaultyIo, MemIo, FRAME_TXN};
use cdb_workload::sessions::{CurationSim, SessionConfig};

/// A realistic curation session (pastes, edits, inserts, deletes come
/// from the simulator) with a smallish footprint.
fn session() -> CuratedTree {
    let mut sim = CurationSim::new(
        7,
        StoreMode::Hereditary,
        SessionConfig {
            source_entries: 6,
            fields_per_entry: 3,
            transactions: 5,
            pastes_per_txn: 2,
            edits_per_txn: 2,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    sim.target
}

/// Writes the session log as a WAL image, syncing after each frame,
/// and returns the image plus each frame's end offset.
fn wal_image(db: &CuratedTree) -> (Vec<u8>, Vec<u64>) {
    let mut log = DurableLog::create(MemIo::new()).unwrap();
    let mut ends = Vec::new();
    for txn in db.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        log.sync().unwrap();
        ends.push(log.len().unwrap());
    }
    (log.into_io().bytes().to_vec(), ends)
}

/// The reference state after the first `n` transactions, built through
/// the same committed-apply path recovery uses.
fn reference(db: &CuratedTree, n: usize) -> CuratedTree {
    let mut r = CuratedTree::new(db.tree.name(), StoreMode::Hereditary);
    for txn in &db.log[..n] {
        apply_committed(&mut r, txn).unwrap();
    }
    r
}

#[test]
fn crash_at_every_byte_offset_recovers_the_committed_prefix() {
    let db = session();
    let (image, ends) = wal_image(&db);
    for cut in 0..=image.len() {
        let committed = ends.iter().filter(|&&e| e <= cut as u64).count();
        let (_, rec) = recover(
            "curated",
            StoreMode::Hereditary,
            MemIo::from_bytes(image[..cut].to_vec()),
            None,
        )
        .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(rec.db, reference(&db, committed), "cut at byte {cut}");
        assert_eq!(rec.stats.frames_scanned, committed as u64, "cut {cut}");
    }
}

#[test]
fn torn_write_loses_only_the_tail() {
    let db = session();
    let (image, ends) = wal_image(&db);
    // The lying disk persists nothing at or past the cap, whatever the
    // writer believed: enumerate caps at frame boundaries and straddling
    // them.
    for &end in &ends {
        for delta in [0i64, -1, 1, 5] {
            let cap = end.saturating_add_signed(delta).min(image.len() as u64);
            let mut io = FaultyIo::new(FaultPlan {
                torn_write_at: Some(cap),
                ..FaultPlan::default()
            });
            let mut log = DurableLog::create(io).unwrap();
            for txn in db.transactions() {
                log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
                log.sync().unwrap();
            }
            io = log.into_io();
            let crashed = io.crash();
            let committed = ends.iter().filter(|&&e| e <= cap).count();
            let (_, rec) = recover(
                "curated",
                StoreMode::Hereditary,
                MemIo::from_bytes(crashed),
                None,
            )
            .unwrap();
            assert_eq!(rec.db, reference(&db, committed), "torn at {cap}");
        }
    }
}

#[test]
fn partial_flush_then_crash_keeps_a_clean_prefix() {
    let db = session();
    let (_, ends) = wal_image(&db);
    // Each flush persists at most 64 bytes, so most of each sync's
    // data is still in the cache when the crash hits.
    for flushes_before_crash in [1u32, 2, 3, 5] {
        let mut log = DurableLog::create(FaultyIo::new(FaultPlan {
            flush_cap: Some(64),
            ..FaultPlan::default()
        }))
        .unwrap();
        let mut flushes = 0;
        for txn in db.transactions() {
            log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
            if flushes < flushes_before_crash {
                log.sync().unwrap();
                flushes += 1;
            }
        }
        let crashed = log.into_io().crash();
        let durable = crashed.len() as u64;
        let committed = ends.iter().filter(|&&e| e <= durable).count();
        let (_, rec) = recover(
            "curated",
            StoreMode::Hereditary,
            MemIo::from_bytes(crashed),
            None,
        )
        .unwrap();
        assert_eq!(
            rec.db,
            reference(&db, committed),
            "crash after {flushes_before_crash} capped flushes"
        );
    }
}

#[test]
fn bit_rot_at_every_offset_truncates_at_the_rotten_frame() {
    let db = session();
    let (image, ends) = wal_image(&db);
    // Flipping any bit of frame k must recover exactly the first k
    // transactions. Stride 3 over offsets keeps the test fast while
    // still touching every frame's header, payload, and checksum.
    for offset in (8..image.len()).step_by(3) {
        let io = FaultyIo::with_contents(
            image.clone(),
            FaultPlan {
                bit_flips: vec![(offset as u64, 0x10)],
                ..FaultPlan::default()
            },
        );
        let crashed = io.crash();
        let rotten_frame = ends.iter().filter(|&&e| e <= offset as u64).count();
        let (_, rec) = recover(
            "curated",
            StoreMode::Hereditary,
            MemIo::from_bytes(crashed),
            None,
        )
        .unwrap();
        assert_eq!(rec.db, reference(&db, rotten_frame), "rot at byte {offset}");
        assert_eq!(rec.stats.frames_dropped, 1, "rot at byte {offset}");
        assert!(rec.stats.bytes_dropped > 0, "rot at byte {offset}");
    }
}

#[test]
fn short_reads_during_recovery_change_nothing() {
    let db = session();
    let (image, _) = wal_image(&db);
    let (_, clean) = recover(
        "curated",
        StoreMode::Hereditary,
        MemIo::from_bytes(image.clone()),
        None,
    )
    .unwrap();
    for chunk in [1usize, 2, 7, 64] {
        let io = FaultyIo::with_contents(
            image.clone(),
            FaultPlan {
                short_read_chunk: Some(chunk),
                ..FaultPlan::default()
            },
        );
        let (_, rec) = recover("curated", StoreMode::Hereditary, io, None).unwrap();
        assert_eq!(rec.db, clean.db, "short-read chunk {chunk}");
    }
}

#[test]
fn checkpoint_shortens_replay_without_changing_the_result() {
    let db = session();
    let (image, _) = wal_image(&db);
    for ckpt_at in 0..=db.log.len() {
        let snap = reference(&db, ckpt_at);
        let ck = Checkpoint::basic(snap.last_txn_id(), snap.tree.clone(), snap.prov.clone());
        let mut ckio = MemIo::new();
        write_checkpoint(&mut ckio, &ck).unwrap();
        let ck = cdb_storage::read_checkpoint(&mut ckio).unwrap();
        let (_, rec) = recover(
            "curated",
            StoreMode::Hereditary,
            MemIo::from_bytes(image.clone()),
            ck,
        )
        .unwrap();
        assert_eq!(rec.db, db, "checkpoint after txn {ckpt_at}");
        assert!(rec.stats.used_checkpoint);
        assert_eq!(rec.stats.txns_adopted, ckpt_at as u64);
        assert_eq!(rec.stats.txns_replayed, (db.log.len() - ckpt_at) as u64);
    }
}

#[test]
fn failed_flush_means_the_transaction_never_committed() {
    let db = session();
    let mut log = DurableLog::create(FaultyIo::new(FaultPlan {
        fail_flush: Some(3), // counting the header flush at create()
        ..FaultPlan::default()
    }))
    .unwrap();
    let mut committed = 0usize;
    for txn in db.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        if log.sync().is_ok() {
            committed += 1;
        } else {
            break; // the writer stops at the first failed commit
        }
    }
    let crashed = log.into_io().crash();
    let (_, rec) = recover(
        "curated",
        StoreMode::Hereditary,
        MemIo::from_bytes(crashed),
        None,
    )
    .unwrap();
    assert_eq!(rec.db, reference(&db, committed));
}

#[test]
fn fault_classes_surface_as_distinct_error_counters() {
    // Each injected fault class must land in its own counter in the
    // process-global registry. Deltas are asserted with `>=`: tests in
    // this binary run in parallel and other threads may bump the same
    // process-global counters concurrently.
    let g = cdb_obs::global();
    let sync_failed = g.counter("storage.error.sync_failed");
    let append_failed = g.counter("storage.error.append_failed");
    let torn_tail = g.counter("storage.error.torn_tail");

    // Failed sync: flush #1 is the header flush in create(), so #2 is
    // the first commit attempt.
    let before = sync_failed.get();
    let mut log = DurableLog::create(FaultyIo::new(FaultPlan {
        fail_flush: Some(2),
        ..FaultPlan::default()
    }))
    .unwrap();
    log.append(FRAME_TXN, b"doomed").unwrap();
    assert!(log.sync().is_err());
    assert!(
        sync_failed.get() > before,
        "a failed sync must bump storage.error.sync_failed"
    );

    // Failed append: device append #1 is the header in create(), so #2
    // is the first frame.
    let before = append_failed.get();
    let mut log = DurableLog::create(FaultyIo::new(FaultPlan {
        fail_append: Some(2),
        ..FaultPlan::default()
    }))
    .unwrap();
    assert!(log.append(FRAME_TXN, b"doomed").is_err());
    assert!(
        append_failed.get() > before,
        "a failed append must bump storage.error.append_failed"
    );

    // Torn tail: bit rot drops exactly one frame during recovery.
    let db = session();
    let (image, _) = wal_image(&db);
    let before = torn_tail.get();
    let rotten = FaultyIo::with_contents(
        image,
        FaultPlan {
            bit_flips: vec![(20, 0x10)],
            ..FaultPlan::default()
        },
    )
    .crash();
    let (_, rec) = recover(
        "curated",
        StoreMode::Hereditary,
        MemIo::from_bytes(rotten),
        None,
    )
    .unwrap();
    assert_eq!(rec.stats.frames_dropped, 1);
    assert!(
        torn_tail.get() > before,
        "dropped frames must bump storage.error.torn_tail"
    );
}
