//! Crash-atomicity of checkpoint installation and segment retirement.
//!
//! The tentpole guarantee under test: at every byte offset a device
//! can die inside a checkpoint install, the *previous* checkpoint
//! still loads — recovery never silently degrades to full replay
//! because an install was torn. Likewise for crashes inside the
//! segment-retire window and for torn flushes that cut the log across
//! a segment boundary: recovery always lands on a consistent committed
//! prefix. Every offset/budget is enumerated, no randomness.

use cdb_curation::ops::CuratedTree;
use cdb_curation::provstore::StoreMode;
use cdb_curation::replay::apply_committed;
use cdb_curation::wire::{encode_transaction, Checkpoint};
use cdb_storage::ckpt::write_checkpoint_slot;
use cdb_storage::{
    recover, CheckpointStore, DurableLog, FaultPlan, FaultyIo, MemBacking, MemIo, Retention,
    SegFaultPlan, SegmentConfig, SegmentedIo, FRAME_TXN,
};
use cdb_workload::sessions::{CurationSim, SessionConfig};

/// A small distinguishable checkpoint: one entry named `label`.
fn snapshot(label: &str) -> Checkpoint {
    let mut db = CuratedTree::new("ck", StoreMode::Hereditary);
    let root = db.tree.root();
    let mut t = db.begin("curator", 1);
    t.insert(root, label, None).unwrap();
    t.commit();
    Checkpoint::basic(db.last_txn_id(), db.tree.clone(), db.prov.clone())
}

/// The byte image a completed slot write leaves behind.
fn slot_image(gen: u64, ck: &Checkpoint) -> Vec<u8> {
    let mut io = MemIo::new();
    write_checkpoint_slot(&mut io, gen, ck).unwrap();
    io.bytes().to_vec()
}

/// Slot writes are truncate-then-append, so a crash at byte offset
/// `cut` of the install leaves exactly the first `cut` bytes of the
/// new image. Enumerate every offset: the store must load the prior
/// checkpoint for every strict prefix and the new one only when the
/// write completed.
#[test]
fn torn_slot_install_at_every_byte_offset_keeps_the_prior_checkpoint() {
    let ck1 = snapshot("one");
    let ck2 = snapshot("two");
    let slot0 = slot_image(1, &ck1);
    let full = slot_image(2, &ck2);
    for cut in 0..=full.len() {
        let mut store = CheckpointStore::slots(
            Box::new(MemIo::from_bytes(slot0.clone())),
            Box::new(MemIo::from_bytes(full[..cut].to_vec())),
        );
        let got = store.load().unwrap();
        if cut == full.len() {
            assert_eq!(got, Some(ck2.clone()), "completed install at cut {cut}");
        } else {
            assert_eq!(got, Some(ck1.clone()), "torn install at cut {cut}");
        }
    }
}

/// Same enumeration one generation later: both slots hold valid
/// checkpoints (gen 2 newest), and the install of gen 3 tears the
/// *older* slot. The newest surviving checkpoint is never lost.
#[test]
fn torn_install_over_two_valid_slots_only_risks_the_older_one() {
    let ck1 = snapshot("one");
    let ck2 = snapshot("two");
    let ck3 = snapshot("three");
    let newest = slot_image(2, &ck2);
    let oldest = slot_image(1, &ck1);
    let full = slot_image(3, &ck3);
    // Sanity: a real install on these images targets the older slot.
    let mut store = CheckpointStore::slots(
        Box::new(MemIo::from_bytes(newest.clone())),
        Box::new(MemIo::from_bytes(oldest.clone())),
    );
    store.install(&ck3).unwrap();
    assert_eq!(store.load().unwrap(), Some(ck3.clone()));

    for cut in 0..=full.len() {
        let mut store = CheckpointStore::slots(
            Box::new(MemIo::from_bytes(newest.clone())),
            Box::new(MemIo::from_bytes(full[..cut].to_vec())),
        );
        let got = store.load().unwrap();
        if cut == full.len() {
            assert_eq!(got, Some(ck3.clone()), "completed install at cut {cut}");
        } else {
            assert_eq!(got, Some(ck2.clone()), "torn install at cut {cut}");
        }
    }
}

/// Device errors (failed append, failed flush) during an install make
/// the install report failure — and whatever `load` then sees is the
/// prior checkpoint or the new one, never neither and never garbage.
#[test]
fn failed_install_appends_and_flushes_leave_a_loadable_checkpoint() {
    let ck1 = snapshot("one");
    let ck2 = snapshot("two");
    let slot0 = slot_image(1, &ck1);
    // fail_append 1 = the magic write; 2 = the checkpoint frame;
    // fail_flush 1 = the single flush closing the install.
    for plan in [
        FaultPlan {
            fail_append: Some(1),
            ..FaultPlan::default()
        },
        FaultPlan {
            fail_append: Some(2),
            ..FaultPlan::default()
        },
        FaultPlan {
            fail_flush: Some(1),
            ..FaultPlan::default()
        },
    ] {
        let mut store = CheckpointStore::slots(
            Box::new(MemIo::from_bytes(slot0.clone())),
            Box::new(FaultyIo::new(plan.clone())),
        );
        assert!(store.install(&ck2).is_err(), "plan {plan:?}");
        let got = store.load().unwrap();
        assert!(
            got == Some(ck1.clone()) || got == Some(ck2.clone()),
            "after a failed install ({plan:?}) the store must hold the \
             old or the new checkpoint, got {got:?}"
        );
    }
}

/// Directory store: a crash between writing the temp file and the
/// rename leaves a stray `.ckpt.tmp` and an intact live checkpoint;
/// the next install overwrites the leftover and completes.
#[test]
fn dir_store_survives_a_crash_before_the_rename() {
    let dir = std::env::temp_dir().join(format!("cdb-ckpt-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ck1 = snapshot("one");
    let ck2 = snapshot("two");
    let mut store = CheckpointStore::dir(&dir, "db");
    store.install(&ck1).unwrap();

    // Simulate the crash: a half-written temp file that never renamed.
    let live = std::fs::read(dir.join("db.ckpt")).unwrap();
    for cut in [0, 1, live.len() / 2, live.len().saturating_sub(1)] {
        std::fs::write(dir.join("db.ckpt.tmp"), &live[..cut]).unwrap();
        let mut fresh = CheckpointStore::dir(&dir, "db");
        assert_eq!(
            fresh.load().unwrap(),
            Some(ck1.clone()),
            "torn tmp of {cut} bytes must not shadow the live checkpoint"
        );
        fresh.install(&ck2).unwrap();
        assert_eq!(fresh.load().unwrap(), Some(ck2.clone()));
        assert!(!dir.join("db.ckpt.tmp").exists(), "tmp renamed away");
        // Reset for the next cut.
        store.install(&ck1).unwrap();
        let _ = std::fs::remove_file(dir.join("db.ckpt.tmp"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A realistic curation session for the segmented-log tests.
fn session() -> CuratedTree {
    let mut sim = CurationSim::new(
        11,
        StoreMode::Hereditary,
        SessionConfig {
            source_entries: 5,
            fields_per_entry: 3,
            transactions: 6,
            pastes_per_txn: 2,
            edits_per_txn: 2,
            inserts_per_txn: 1,
        },
    );
    sim.run();
    sim.target
}

/// The reference state after the first `n` transactions.
fn reference(db: &CuratedTree, n: usize) -> CuratedTree {
    let mut r = CuratedTree::new(db.tree.name(), StoreMode::Hereditary);
    for txn in &db.log[..n] {
        apply_committed(&mut r, txn).unwrap();
    }
    r
}

/// Crashes at every point inside the segment-retire window — after 0,
/// 1, 2, … successful retire operations — must leave recovery able to
/// reconstruct the full committed state, under both retention
/// policies. Retirement only touches segments wholly below the
/// coverage watermark, so a half-done retirement loses nothing.
#[test]
fn crash_inside_the_retire_window_never_loses_committed_state() {
    let db = session();
    for retention in [Retention::KeepAll, Retention::Reclaim] {
        for survive_retires in 0u32..6 {
            let cfg = SegmentConfig {
                segment_bytes: 512,
                retention,
            };
            let backing = MemBacking::with_plan(SegFaultPlan {
                fail_retire_after: Some(survive_retires),
                ..SegFaultPlan::default()
            });
            let io = SegmentedIo::open(Box::new(backing.clone()), cfg).unwrap();
            let mut log = DurableLog::create(io).unwrap();
            let ckpt_at = db.log.len() / 2;
            let mut ck = None;
            for (i, txn) in db.transactions().iter().enumerate() {
                log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
                log.sync().unwrap();
                if i + 1 == ckpt_at {
                    let covered = log.len().unwrap();
                    let snap = reference(&db, ckpt_at);
                    let mut c =
                        Checkpoint::basic(snap.last_txn_id(), snap.tree.clone(), snap.prov.clone());
                    c.covered_len = Some(covered);
                    if retention == Retention::KeepAll {
                        c.log = db.log[..ckpt_at].to_vec();
                    }
                    // The retire may die partway through; that's the
                    // window under test. A partial retirement surfaces
                    // via `failed` in the stats, not as an error.
                    if let Some(stats) = log.reclaim(covered).unwrap() {
                        if stats.failed {
                            assert!(
                                u64::from(survive_retires) == stats.retired,
                                "exactly the surviving retires completed"
                            );
                        }
                    }
                    ck = Some(c);
                }
            }
            drop(log);

            let io = SegmentedIo::open(Box::new(backing.crash()), cfg).unwrap();
            let (_, rec) = recover("curated", StoreMode::Hereditary, io, ck).unwrap();
            let expect = reference(&db, db.log.len());
            assert_eq!(
                rec.db.tree, expect.tree,
                "{retention:?}, crash after {survive_retires} retires"
            );
            assert_eq!(
                rec.db.prov, expect.prov,
                "{retention:?}, crash after {survive_retires} retires"
            );
            assert_eq!(rec.db.last_txn_id(), expect.last_txn_id());
        }
    }
}

/// Torn flushes with a global durable-byte budget cut the log at an
/// arbitrary physical offset — including mid-segment-header and across
/// rotation boundaries. Enumerating every budget, recovery must always
/// produce *some* exact committed prefix of the session, and the full
/// budget must produce the whole session.
#[test]
fn torn_flush_at_every_byte_budget_recovers_a_committed_prefix() {
    let db = session();
    let cfg = SegmentConfig {
        segment_bytes: 512,
        retention: Retention::KeepAll,
    };

    // First pass, no faults: how many durable bytes does the full
    // session occupy across all segment files?
    let backing = MemBacking::new();
    let io = SegmentedIo::open(Box::new(backing.clone()), cfg).unwrap();
    let mut log = DurableLog::create(io).unwrap();
    for txn in db.transactions() {
        log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
        log.sync().unwrap();
    }
    drop(log);
    let total = backing.crash().live_bytes();
    assert!(total > 2 * cfg.segment_bytes, "session must span segments");

    let mut prefixes_seen = std::collections::BTreeSet::new();
    for budget in 0..=total {
        let backing = MemBacking::with_plan(SegFaultPlan {
            torn_flush_budget: Some(budget),
            ..SegFaultPlan::default()
        });
        let io = SegmentedIo::open(Box::new(backing.clone()), cfg).unwrap();
        let mut log = DurableLog::create(io).unwrap();
        for txn in db.transactions() {
            log.append(FRAME_TXN, &encode_transaction(txn)).unwrap();
            log.sync().unwrap();
        }
        drop(log);

        let io = SegmentedIo::open(Box::new(backing.crash()), cfg).unwrap();
        let (_, rec) = recover("curated", StoreMode::Hereditary, io, None)
            .unwrap_or_else(|e| panic!("recovery failed at budget {budget}: {e}"));
        let committed = rec.db.log.len();
        assert_eq!(
            rec.db,
            reference(&db, committed),
            "budget {budget}: recovered state is not a committed prefix"
        );
        prefixes_seen.insert(committed);
        if budget == total {
            assert_eq!(committed, db.log.len(), "full budget loses nothing");
        }
    }
    assert!(
        prefixes_seen.len() > 2,
        "the budget sweep must actually exercise multiple prefixes, saw {prefixes_seen:?}"
    );
}
