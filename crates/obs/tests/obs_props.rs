//! Property and concurrency tests for the observability layer.
//!
//! 1. Histogram quantiles are *conservative*: the fixed power-of-two
//!    bucket layout means a reported quantile is always an upper bound
//!    on the true (sorted-order) quantile, and never more than 2× it —
//!    the price of 66 fixed buckets instead of a reservoir.
//! 2. Concurrent span emission into the per-thread seqlock rings never
//!    panics and never loses the most recent `RING_CAPACITY` events of
//!    any thread.

use proptest::prelude::*;

use cdb_obs::{Metrics, RING_CAPACITY};

/// True quantile per the histogram's rank rule: the smallest sample
/// such that `ceil(q * n)` samples are ≤ it.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// For arbitrary sample sets and quantiles, the recorded histogram
    /// brackets the true quantile: `true ≤ reported ≤ max(2·true, 1)`.
    #[test]
    fn histogram_quantiles_bound_true_quantiles(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..200),
        q_pct in 1u64..101,
    ) {
        let reg = Metrics::new();
        let h = reg.histogram("test.prop.quantile");
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let q = q_pct as f64 / 100.0;
        let t = true_quantile(&sorted, q);
        let r = snap.quantile(q);
        prop_assert!(r >= t, "reported {r} < true {t} at q={q}");
        prop_assert!(r <= 2u64.saturating_mul(t).max(1), "reported {r} > 2×true {t} at q={q}");
    }
}

#[test]
fn concurrent_span_emission_keeps_each_threads_recent_events() {
    let threads: usize = std::env::var("CDB_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    const SPANS_PER_THREAD: usize = 400; // > RING_CAPACITY: forces wraparound

    cdb_obs::set_tracing(true);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let _s =
                        cdb_obs::SpanGuard::with_attr("test.ring.mt", (t * 1_000_000 + i) as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("a span-emitting thread panicked");
    }
    cdb_obs::set_tracing(false);

    let events = cdb_obs::recent_events();
    let keep = SPANS_PER_THREAD.min(RING_CAPACITY);
    for t in 0..threads {
        for i in SPANS_PER_THREAD - keep..SPANS_PER_THREAD {
            let attr = (t * 1_000_000 + i) as u64;
            assert!(
                events
                    .iter()
                    .any(|e| e.name == "test.ring.mt" && e.attr == attr),
                "thread {t} lost recent span {i} (attr {attr})"
            );
        }
    }
}
