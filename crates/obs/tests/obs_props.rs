//! Property and concurrency tests for the observability layer.
//!
//! 1. Histogram quantiles are *conservative*: the fixed power-of-two
//!    bucket layout means a reported quantile is always an upper bound
//!    on the true (sorted-order) quantile, and never more than 2× it —
//!    the price of 66 fixed buckets instead of a reservoir.
//! 2. Concurrent span emission into the per-thread seqlock rings never
//!    panics and never loses the most recent `RING_CAPACITY` events of
//!    any thread.
//! 3. The wire form of a ring dump is lossless: line-JSON export →
//!    parse → merge reproduces arbitrary multi-thread ring contents
//!    exactly (events the ring itself overwrote are the only losses,
//!    and those are counted on `obs.ring.dropped`).

use proptest::prelude::*;

use cdb_obs::export::{merge_span_dumps, parse_span_lines, wire_span_line_json};
use cdb_obs::{Metrics, TraceId, WireSpan, RING_CAPACITY};

/// True quantile per the histogram's rank rule: the smallest sample
/// such that `ceil(q * n)` samples are ≤ it.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// For arbitrary sample sets and quantiles, the recorded histogram
    /// brackets the true quantile: `true ≤ reported ≤ max(2·true, 1)`.
    #[test]
    fn histogram_quantiles_bound_true_quantiles(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..200),
        q_pct in 1u64..101,
    ) {
        let reg = Metrics::new();
        let h = reg.histogram("test.prop.quantile");
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let q = q_pct as f64 / 100.0;
        let t = true_quantile(&sorted, q);
        let r = snap.quantile(q);
        prop_assert!(r >= t, "reported {r} < true {t} at q={q}");
        prop_assert!(r <= 2u64.saturating_mul(t).max(1), "reported {r} > 2×true {t} at q={q}");
    }
}

/// Strategy for one wire span: names mix ASCII, JSON-hostile escapes,
/// and multi-byte UTF-8; trace/thread ids are drawn from small sets so
/// merges actually filter and dumps actually overlap.
fn arb_span() -> impl Strategy<Value = WireSpan> {
    (
        prop_oneof![
            Just("core.commit"),
            Just("storage.wal.sync"),
            Just("we\"ird\\name\n\t\u{1}"),
            Just("δ.批.span"),
        ],
        0u64..4,
        any::<u64>(),
        any::<u64>(),
        (any::<u64>(), 0u64..3, 0u32..4),
    )
        .prop_map(
            |(name, trace, start_ns, dur_ns, (attr, thread, depth))| WireSpan {
                name: name.to_string(),
                trace,
                start_ns,
                dur_ns,
                attr,
                thread,
                depth,
            },
        )
}

proptest! {
    /// Export → parse is the identity on arbitrary span dumps, and
    /// merging parsed dumps equals filter+sort+dedup computed
    /// independently — the wire pipeline loses nothing and invents
    /// nothing, for any trace id including "untraced" (0).
    #[test]
    fn span_dumps_round_trip_and_merge_losslessly(
        dumps in proptest::collection::vec(
            proptest::collection::vec(arb_span(), 0..40),
            1..4,
        ),
        trace in 0u64..4,
    ) {
        let parsed: Vec<Vec<WireSpan>> = dumps
            .iter()
            .map(|d| parse_span_lines(&wire_span_line_json(d)).expect("round trip"))
            .collect();
        prop_assert_eq!(&parsed, &dumps, "line-JSON round trip must be identity");

        let merged = merge_span_dumps(&parsed, TraceId(trace));
        let mut expect: Vec<WireSpan> = dumps
            .iter()
            .flatten()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect();
        expect.sort_by(|a, b| {
            (a.thread, a.start_ns, a.depth, &a.name, a.dur_ns, a.attr).cmp(&(
                b.thread,
                b.start_ns,
                b.depth,
                &b.name,
                b.dur_ns,
                b.attr,
            ))
        });
        expect.dedup();
        prop_assert_eq!(merged, expect, "merge must equal filter+sort+dedup");
    }
}

#[test]
fn concurrent_span_emission_keeps_each_threads_recent_events() {
    let threads: usize = std::env::var("CDB_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    const SPANS_PER_THREAD: usize = 400; // > RING_CAPACITY: forces wraparound

    cdb_obs::set_tracing(true);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let _s =
                        cdb_obs::SpanGuard::with_attr("test.ring.mt", (t * 1_000_000 + i) as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("a span-emitting thread panicked");
    }
    cdb_obs::set_tracing(false);

    let events = cdb_obs::recent_events();
    let keep = SPANS_PER_THREAD.min(RING_CAPACITY);
    for t in 0..threads {
        for i in SPANS_PER_THREAD - keep..SPANS_PER_THREAD {
            let attr = (t * 1_000_000 + i) as u64;
            assert!(
                events
                    .iter()
                    .any(|e| e.name == "test.ring.mt" && e.attr == attr),
                "thread {t} lost recent span {i} (attr {attr})"
            );
        }
    }
}
