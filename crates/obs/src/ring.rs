//! Bounded per-thread ring buffers of recent span events.
//!
//! Each thread that emits spans owns one ring of [`RING_CAPACITY`]
//! slots; the owning thread is the *only* writer, so emission is
//! wait-free. Readers (the `cdbsh trace show` / `profile` commands) may
//! run on any thread concurrently: every slot is a seqlock — a
//! sequence word that goes odd while the writer is mid-update and even
//! when stable, bracketing fields that are themselves plain atomics
//! (this crate forbids `unsafe`, so there is no UB to guard against;
//! the seqlock only keeps readers from stitching two different events
//! together). A reader that observes an unstable or changed sequence
//! skips that slot rather than blocking the writer.
//!
//! Span names are `&'static str` literals interned to small ids so a
//! slot is seven plain `u64`s.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Events retained per thread. Oldest are overwritten.
pub const RING_CAPACITY: usize = 256;

/// One completed span, as read back from a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (`layer.component.metric`).
    pub name: &'static str,
    /// Trace id, `0` when the span ran outside any trace root.
    pub trace: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Site-specific attribute (row count, txn id, batch size…).
    pub attr: u64,
    /// Id of the emitting thread (dense, assigned at first emission).
    pub thread: u64,
    /// Nesting depth below the trace root on the emitting thread.
    pub depth: u32,
}

// ------------------------------------------------------ name interning

/// Interning table: id → name (dense) plus name → id (lookup).
type NameTable = (
    Vec<&'static str>,
    std::collections::BTreeMap<&'static str, u64>,
);

fn names() -> &'static RwLock<NameTable> {
    static NAMES: OnceLock<RwLock<NameTable>> = OnceLock::new();
    NAMES.get_or_init(|| RwLock::new((Vec::new(), std::collections::BTreeMap::new())))
}

fn intern(name: &'static str) -> u64 {
    if let Some(&id) = names().read().expect("name table poisoned").1.get(name) {
        return id;
    }
    let mut w = names().write().expect("name table poisoned");
    if let Some(&id) = w.1.get(name) {
        return id;
    }
    let id = w.0.len() as u64;
    w.0.push(name);
    w.1.insert(name, id);
    id
}

fn name_of(id: u64) -> Option<&'static str> {
    names()
        .read()
        .expect("name table poisoned")
        .0
        .get(id as usize)
        .copied()
}

// ------------------------------------------------------------- slots

#[derive(Default)]
struct Slot {
    /// Seqlock word: odd while the writer is mid-update.
    seq: AtomicU64,
    name: AtomicU64,
    trace: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    attr: AtomicU64,
    depth: AtomicU64,
}

struct ThreadRing {
    thread: u64,
    /// Total events ever pushed; `head % RING_CAPACITY` is the next slot.
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl ThreadRing {
    fn new(thread: u64) -> ThreadRing {
        ThreadRing {
            thread,
            head: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::default()).collect(),
        }
    }

    /// Writer side — called only by the owning thread.
    fn push(&self, ev: &SpanEvent) {
        let h = self.head.load(Ordering::Relaxed);
        if h >= RING_CAPACITY as u64 {
            // The slot being claimed still holds the oldest retained
            // event — overwriting it is data loss, and trace dumps
            // need to report their own completeness, so count it
            // instead of losing it silently.
            dropped_counter().inc();
        }
        let slot = &self.slots[(h as usize) % RING_CAPACITY];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Release); // odd: in progress
        slot.name.store(intern(ev.name), Ordering::Release);
        slot.trace.store(ev.trace, Ordering::Release);
        slot.start_ns.store(ev.start_ns, Ordering::Release);
        slot.dur_ns.store(ev.dur_ns, Ordering::Release);
        slot.attr.store(ev.attr, Ordering::Release);
        slot.depth.store(ev.depth as u64, Ordering::Release);
        slot.seq.store(seq + 2, Ordering::Release); // even: stable
        self.head.store(h + 1, Ordering::Release);
    }

    /// Reader side — any thread. Unstable slots are skipped, never
    /// blocked on.
    fn read_all(&self) -> Vec<SpanEvent> {
        let h = self.head.load(Ordering::Acquire);
        let count = (h as usize).min(RING_CAPACITY);
        let mut out = Vec::with_capacity(count);
        for logical in (h - count as u64)..h {
            let slot = &self.slots[(logical as usize) % RING_CAPACITY];
            for _ in 0..4 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 % 2 == 1 {
                    continue; // writer mid-update; retry
                }
                let ev = SpanEvent {
                    name: match name_of(slot.name.load(Ordering::Acquire)) {
                        Some(n) => n,
                        None => break,
                    },
                    trace: slot.trace.load(Ordering::Acquire),
                    start_ns: slot.start_ns.load(Ordering::Acquire),
                    dur_ns: slot.dur_ns.load(Ordering::Acquire),
                    attr: slot.attr.load(Ordering::Acquire),
                    thread: self.thread,
                    depth: slot.depth.load(Ordering::Acquire) as u32,
                };
                if slot.seq.load(Ordering::Acquire) == s1 {
                    out.push(ev);
                    break;
                }
            }
        }
        out
    }
}

/// Ring events lost to overwrite, surfaced as `obs.ring.dropped` on the
/// [global](crate::global) registry (which every `metrics_snapshot()`
/// merges), so a span-tree reassembled from ring dumps can say whether
/// it is complete.
fn dropped_counter() -> &'static crate::Counter {
    static DROPPED: OnceLock<crate::Counter> = OnceLock::new();
    DROPPED.get_or_init(|| crate::global().counter("obs.ring.dropped"))
}

// ----------------------------------------------------------- registry

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: std::cell::OnceCell<Arc<ThreadRing>> = const { std::cell::OnceCell::new() };
}

/// Appends a completed span to the calling thread's ring (creating and
/// registering the ring on first use). `ev.thread` is overwritten with
/// the ring's thread id.
pub(crate) fn push(ev: SpanEvent) {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let mut reg = registry().lock().expect("ring registry poisoned");
            let ring = Arc::new(ThreadRing::new(reg.len() as u64));
            reg.push(Arc::clone(&ring));
            ring
        });
        ring.push(&ev);
    });
}

/// Every stable event currently retained, across all threads that ever
/// emitted, ordered by start time. Rings of exited threads are kept —
/// their last [`RING_CAPACITY`] events stay readable.
pub fn recent_events() -> Vec<SpanEvent> {
    let rings: Vec<Arc<ThreadRing>> = registry()
        .lock()
        .expect("ring registry poisoned")
        .iter()
        .cloned()
        .collect();
    let mut out: Vec<SpanEvent> = rings.iter().flat_map(|r| r.read_all()).collect();
    out.sort_by_key(|e| (e.start_ns, e.thread, e.depth));
    out
}

/// Retained events belonging to one trace, ordered by start time.
pub fn events_for_trace(trace: crate::TraceId) -> Vec<SpanEvent> {
    let mut out = recent_events();
    out.retain(|e| e.trace == trace.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_capacity_events() {
        let ring = ThreadRing::new(42);
        let total = RING_CAPACITY as u64 + 10;
        for i in 0..total {
            ring.push(&SpanEvent {
                name: "test.ring.ev",
                trace: 1,
                start_ns: i,
                dur_ns: 1,
                attr: i,
                thread: 0,
                depth: 0,
            });
        }
        let evs = ring.read_all();
        assert_eq!(evs.len(), RING_CAPACITY);
        let attrs: Vec<u64> = evs.iter().map(|e| e.attr).collect();
        let want: Vec<u64> = (10..total).collect();
        assert_eq!(attrs, want);
        assert!(evs.iter().all(|e| e.thread == 42));
    }

    #[test]
    fn overwrites_are_counted_as_drops() {
        let _g = crate::test_flag_lock();
        let before = dropped_counter().get();
        let ring = ThreadRing::new(77);
        let extra = 5u64;
        for i in 0..RING_CAPACITY as u64 + extra {
            ring.push(&SpanEvent {
                name: "test.ring.drop",
                trace: 0,
                start_ns: i,
                dur_ns: 1,
                attr: 0,
                thread: 0,
                depth: 0,
            });
        }
        assert_eq!(ring.read_all().len(), RING_CAPACITY);
        assert!(dropped_counter().get() >= before + extra);
    }

    #[test]
    fn interning_round_trips() {
        let a = intern("test.intern.a");
        let b = intern("test.intern.b");
        assert_ne!(a, b);
        assert_eq!(intern("test.intern.a"), a);
        assert_eq!(name_of(a), Some("test.intern.a"));
        assert_eq!(name_of(u64::MAX), None);
    }
}
