//! Exporters: a human text table and a line-JSON dump for metric
//! snapshots, plus the span-tree renderer behind `cdbsh profile`.

use crate::{HistogramSnapshot, MetricsSnapshot, SpanEvent};
use std::fmt::Write as _;

/// Renders a duration in nanoseconds with a human unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

fn hist_row(name: &str, h: &HistogramSnapshot) -> String {
    format!(
        "  {:<40} n={:<8} mean={:<9} p50={:<9} p95={:<9} p99={:<9} max={}",
        name,
        h.count,
        fmt_ns(h.mean()),
        fmt_ns(h.p50()),
        fmt_ns(h.p95()),
        fmt_ns(h.p99()),
        fmt_ns(h.max),
    )
}

/// The human-readable `cdbsh stats` table: counters, gauges, then
/// histograms with quantile estimates. Instruments with no recorded
/// activity are omitted.
pub fn text_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let counters: Vec<_> = snap.counters.iter().filter(|(_, &v)| v > 0).collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in counters {
            let _ = writeln!(out, "  {k:<40} {v}");
        }
    }
    let gauges: Vec<_> = snap.gauges.iter().filter(|(_, &v)| v > 0).collect();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in gauges {
            let _ = writeln!(out, "  {k:<40} {v}");
        }
    }
    let hists: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !hists.is_empty() {
        out.push_str("histograms (ns):\n");
        for (k, h) in hists {
            out.push_str(&hist_row(k, h));
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A machine-readable dump: one JSON object per line, stable key order,
/// no trailing commas — greppable and `jq`-friendly without pulling in
/// a serializer.
pub fn line_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(k)
        );
    }
    for (k, v) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(k)
        );
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_escape(k),
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            h.p50(),
            h.p95(),
            h.p99(),
        );
    }
    out
}

/// Renders span events as an indented tree for `cdbsh profile` /
/// `trace show`. Events are grouped by thread and ordered by start
/// time; indentation follows recorded nesting depth; the offset column
/// is relative to the earliest event shown.
pub fn span_tree(events: &[SpanEvent]) -> String {
    if events.is_empty() {
        return "(no spans captured)\n".to_owned();
    }
    let mut evs: Vec<&SpanEvent> = events.iter().collect();
    evs.sort_by_key(|e| (e.thread, e.start_ns, e.depth));
    let base = events.iter().map(|e| e.start_ns).min().unwrap_or(0);
    let mut out = String::new();
    let mut cur_thread = u64::MAX;
    for e in evs {
        if e.thread != cur_thread {
            cur_thread = e.thread;
            let _ = writeln!(out, "thread {cur_thread}:");
        }
        let indent = "  ".repeat(e.depth as usize + 1);
        let _ = write!(
            out,
            "{indent}{:<w$} {:>9}  +{}",
            e.name,
            fmt_ns(e.dur_ns),
            fmt_ns(e.start_ns - base),
            w = 36usize.saturating_sub(indent.len()),
        );
        if e.attr != 0 {
            let _ = write!(out, "  [{}]", e.attr);
        }
        if e.trace != 0 {
            let _ = write!(out, "  (t{})", e.trace);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn text_table_shows_active_instruments() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        m.counter("core.commits").add(3);
        m.gauge("storage.group.max_batch").record_max(4);
        m.histogram("storage.wal.sync_ns").record(1_000_000);
        let t = text_table(&m.snapshot());
        assert!(t.contains("core.commits"));
        assert!(t.contains("storage.group.max_batch"));
        assert!(t.contains("storage.wal.sync_ns"));
        assert!(t.contains("p99="));
    }

    #[test]
    fn empty_table_says_so() {
        assert!(text_table(&MetricsSnapshot::default()).contains("no metrics"));
    }

    #[test]
    fn line_json_one_object_per_line() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        m.counter("a").add(1);
        m.histogram("h").record(7);
        let j = line_json(&m.snapshot());
        for line in j.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(j.contains("\"type\":\"counter\",\"name\":\"a\",\"value\":1"));
        assert!(j.contains("\"type\":\"histogram\",\"name\":\"h\""));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn span_tree_indents_by_depth() {
        let evs = vec![
            SpanEvent {
                name: "core.write",
                trace: 7,
                start_ns: 100,
                dur_ns: 5_000,
                attr: 0,
                thread: 0,
                depth: 0,
            },
            SpanEvent {
                name: "storage.wal.sync",
                trace: 7,
                start_ns: 200,
                dur_ns: 3_000,
                attr: 2,
                thread: 0,
                depth: 1,
            },
        ];
        let t = span_tree(&evs);
        assert!(t.contains("thread 0:"));
        assert!(t.contains("core.write"));
        assert!(t.contains("    storage.wal.sync"));
        assert!(t.contains("[2]"));
        assert!(t.contains("(t7)"));
        assert!(span_tree(&[]).contains("no spans"));
    }
}
