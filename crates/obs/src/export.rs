//! Exporters: a human text table and a line-JSON dump for metric
//! snapshots, plus the span-tree renderer behind `cdbsh profile`.
//!
//! Also the distributed half of tracing: span events serialize to the
//! same line-JSON dialect ([`span_line_json`]), parse back on any other
//! process ([`parse_span_lines`]), and ring dumps from several
//! processes reassemble into one trace's tree ([`merge_span_dumps`]) —
//! this is how a client-side `trace merged` joins its own ring with a
//! server's `TraceDump` answer.

use crate::{HistogramSnapshot, MetricsSnapshot, SpanEvent, TraceId};
use std::fmt::Write as _;

/// Renders a duration in nanoseconds with a human unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

fn hist_row(name: &str, h: &HistogramSnapshot) -> String {
    format!(
        "  {:<40} n={:<8} mean={:<9} p50={:<9} p95={:<9} p99={:<9} max={}",
        name,
        h.count,
        fmt_ns(h.mean()),
        fmt_ns(h.p50()),
        fmt_ns(h.p95()),
        fmt_ns(h.p99()),
        fmt_ns(h.max),
    )
}

/// The human-readable `cdbsh stats` table: counters, gauges, then
/// histograms with quantile estimates. Instruments with no recorded
/// activity are omitted.
pub fn text_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let counters: Vec<_> = snap.counters.iter().filter(|(_, &v)| v > 0).collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in counters {
            let _ = writeln!(out, "  {k:<40} {v}");
        }
    }
    let gauges: Vec<_> = snap.gauges.iter().filter(|(_, &v)| v > 0).collect();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in gauges {
            let _ = writeln!(out, "  {k:<40} {v}");
        }
    }
    let hists: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !hists.is_empty() {
        out.push_str("histograms (ns):\n");
        for (k, h) in hists {
            out.push_str(&hist_row(k, h));
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A machine-readable dump: one JSON object per line, stable key order,
/// no trailing commas — greppable and `jq`-friendly without pulling in
/// a serializer.
pub fn line_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(k)
        );
    }
    for (k, v) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(k)
        );
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_escape(k),
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            h.p50(),
            h.p95(),
            h.p99(),
        );
    }
    out
}

/// Renders span events as an indented tree for `cdbsh profile` /
/// `trace show`. Events are grouped by thread and ordered by start
/// time; indentation follows recorded nesting depth; the offset column
/// is relative to the earliest event shown.
pub fn span_tree(events: &[SpanEvent]) -> String {
    wire_span_tree(&events.iter().map(WireSpan::from).collect::<Vec<_>>())
}

// ------------------------------------------------- wire-portable spans

/// A span event in owned form: what [`SpanEvent`] becomes once it
/// leaves the process that interned its name. Field-for-field the same
/// record; the name is a `String` because the receiving process has no
/// interning table for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Span name (`layer.component.metric`).
    pub name: String,
    /// Trace id, `0` when the span ran outside any trace root.
    pub trace: u64,
    /// Start time in nanoseconds since the emitting process's trace
    /// epoch — comparable within one dump, not across processes.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Site-specific attribute.
    pub attr: u64,
    /// Emitting thread id (dense within the emitting process).
    pub thread: u64,
    /// Nesting depth below the trace root on the emitting thread.
    pub depth: u32,
}

impl From<&SpanEvent> for WireSpan {
    fn from(e: &SpanEvent) -> WireSpan {
        WireSpan {
            name: e.name.to_owned(),
            trace: e.trace,
            start_ns: e.start_ns,
            dur_ns: e.dur_ns,
            attr: e.attr,
            thread: e.thread,
            depth: e.depth,
        }
    }
}

/// Serializes ring events to line-JSON, one `{"type":"span",...}`
/// object per line — the over-the-wire form of a ring dump
/// (`Request::TraceDump`) and the span section of a flight-recorder
/// dump. Round-trips through [`parse_span_lines`] losslessly.
pub fn span_line_json(events: &[SpanEvent]) -> String {
    wire_span_line_json(&events.iter().map(WireSpan::from).collect::<Vec<_>>())
}

/// [`span_line_json`] over already-owned spans.
pub fn wire_span_line_json(events: &[WireSpan]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":\"{}\",\"trace\":{},\"thread\":{},\"depth\":{},\"start_ns\":{},\"dur_ns\":{},\"attr\":{}}}",
            json_escape(&e.name),
            e.trace,
            e.thread,
            e.depth,
            e.start_ns,
            e.dur_ns,
            e.attr,
        );
    }
    out
}

/// One value in a parsed line-JSON object.
enum JsonVal {
    Str(String),
    Num(u64),
}

/// A minimal scanner for the line-JSON dialect this module writes:
/// one flat object of string and unsigned-integer fields per line.
struct LineParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LineParser<'a> {
    fn new(line: &'a str) -> LineParser<'a> {
        LineParser {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of span line",
                want as char, self.pos
            ))
        }
    }

    /// Parses a quoted string with the same escapes `json_escape`
    /// writes (`\"`, `\\`, `\n`, `\t`, `\u00xx`).
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| "invalid utf-8 in span line".to_owned())?;
            let Some(c) = rest.chars().next() else {
                return Err("unterminated string in span line".to_owned());
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "dangling escape in span line".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let v = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(v)
                                    .ok_or_else(|| format!("bad \\u codepoint {v:#x}"))?,
                            );
                        }
                        e => return Err(format!("unknown escape '\\{}'", e as char)),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digits at byte {start} of span line"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .parse::<u64>()
            .map_err(|e| format!("bad integer in span line: {e}"))
    }

    fn object(mut self) -> Result<Vec<(String, JsonVal)>, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = match self.peek() {
                Some(b'"') => JsonVal::Str(self.string()?),
                _ => JsonVal::Num(self.number()?),
            };
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        if self.pos != self.bytes.len() {
            return Err("trailing bytes after span object".to_owned());
        }
        Ok(fields)
    }
}

/// Parses a line-JSON dump back into owned spans. Lines of other types
/// (counters, gauges, histograms, flight headers) are skipped, so a
/// combined metrics+spans dump parses with the same call; a line that
/// *claims* `"type":"span"` but is malformed or missing a field is an
/// error, not silent loss.
pub fn parse_span_lines(text: &str) -> Result<Vec<WireSpan>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let fields = LineParser::new(line).object()?;
        let is_span = fields
            .iter()
            .any(|(k, v)| k == "type" && matches!(v, JsonVal::Str(s) if s == "span"));
        if !is_span {
            continue;
        }
        let mut name = None;
        let (mut trace, mut thread, mut depth) = (None, None, None);
        let (mut start_ns, mut dur_ns, mut attr) = (None, None, None);
        for (k, v) in fields {
            match (k.as_str(), v) {
                ("name", JsonVal::Str(s)) => name = Some(s),
                ("trace", JsonVal::Num(n)) => trace = Some(n),
                ("thread", JsonVal::Num(n)) => thread = Some(n),
                ("depth", JsonVal::Num(n)) => depth = Some(n),
                ("start_ns", JsonVal::Num(n)) => start_ns = Some(n),
                ("dur_ns", JsonVal::Num(n)) => dur_ns = Some(n),
                ("attr", JsonVal::Num(n)) => attr = Some(n),
                ("type", _) => {}
                (k, _) => return Err(format!("unexpected span field '{k}'")),
            }
        }
        out.push(WireSpan {
            name: name.ok_or("span line missing name")?,
            trace: trace.ok_or("span line missing trace")?,
            thread: thread.ok_or("span line missing thread")?,
            depth: u32::try_from(depth.ok_or("span line missing depth")?)
                .map_err(|_| "span depth exceeds u32".to_owned())?,
            start_ns: start_ns.ok_or("span line missing start_ns")?,
            dur_ns: dur_ns.ok_or("span line missing dur_ns")?,
            attr: attr.ok_or("span line missing attr")?,
        });
    }
    Ok(out)
}

/// Joins ring dumps from several processes into one trace's events:
/// filters each dump to `trace`, concatenates, sorts into render order,
/// and collapses exact duplicates (dumps may overlap — an in-process
/// client's ring contains the server's spans too). Thread ids stay
/// per-process: a collision between two processes' thread numbering
/// only co-groups their lines in the rendered tree, it never merges or
/// drops events.
pub fn merge_span_dumps(dumps: &[Vec<WireSpan>], trace: TraceId) -> Vec<WireSpan> {
    let mut out: Vec<WireSpan> = dumps
        .iter()
        .flatten()
        .filter(|e| e.trace == trace.0)
        .cloned()
        .collect();
    out.sort_by(|a, b| {
        (a.thread, a.start_ns, a.depth, &a.name, a.dur_ns, a.attr)
            .cmp(&(b.thread, b.start_ns, b.depth, &b.name, b.dur_ns, b.attr))
    });
    out.dedup();
    out
}

/// [`span_tree`] over owned spans — the renderer both share, and the
/// one `trace merged` / `blackbox` use for spans that crossed a
/// process boundary.
pub fn wire_span_tree(events: &[WireSpan]) -> String {
    if events.is_empty() {
        return "(no spans captured)\n".to_owned();
    }
    let mut evs: Vec<&WireSpan> = events.iter().collect();
    evs.sort_by_key(|e| (e.thread, e.start_ns, e.depth));
    let base = events.iter().map(|e| e.start_ns).min().unwrap_or(0);
    // Self time = duration minus the direct children's durations (same
    // thread, one level deeper, nested inside this span's window), so
    // nested spans aren't double-counted once per ancestor when a
    // reader sums a column.
    let self_ns = |e: &WireSpan| -> u64 {
        let nested: u64 = evs
            .iter()
            .filter(|c| {
                c.thread == e.thread
                    && c.depth == e.depth + 1
                    && c.start_ns >= e.start_ns
                    && c.start_ns.saturating_add(c.dur_ns) <= e.start_ns.saturating_add(e.dur_ns)
            })
            .map(|c| c.dur_ns)
            .sum();
        e.dur_ns.saturating_sub(nested)
    };
    let mut out = String::new();
    let mut cur_thread = u64::MAX;
    for e in &evs {
        if e.thread != cur_thread {
            cur_thread = e.thread;
            let _ = writeln!(out, "thread {cur_thread}:");
        }
        let indent = "  ".repeat(e.depth as usize + 1);
        let _ = write!(
            out,
            "{indent}{:<w$} {:>9} {:>9}  +{}",
            e.name,
            fmt_ns(e.dur_ns),
            fmt_ns(self_ns(e)),
            fmt_ns(e.start_ns - base),
            w = 36usize.saturating_sub(indent.len()),
        );
        if e.attr != 0 {
            let _ = write!(out, "  [{}]", e.attr);
        }
        if e.trace != 0 {
            let _ = write!(out, "  (t{})", e.trace);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn text_table_shows_active_instruments() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        m.counter("core.commits").add(3);
        m.gauge("storage.group.max_batch").record_max(4);
        m.histogram("storage.wal.sync_ns").record(1_000_000);
        let t = text_table(&m.snapshot());
        assert!(t.contains("core.commits"));
        assert!(t.contains("storage.group.max_batch"));
        assert!(t.contains("storage.wal.sync_ns"));
        assert!(t.contains("p99="));
    }

    #[test]
    fn empty_table_says_so() {
        assert!(text_table(&MetricsSnapshot::default()).contains("no metrics"));
    }

    #[test]
    fn line_json_one_object_per_line() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        m.counter("a").add(1);
        m.histogram("h").record(7);
        let j = line_json(&m.snapshot());
        for line in j.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(j.contains("\"type\":\"counter\",\"name\":\"a\",\"value\":1"));
        assert!(j.contains("\"type\":\"histogram\",\"name\":\"h\""));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn span_lines_round_trip() {
        let evs = vec![
            SpanEvent {
                name: "core.write",
                trace: u64::MAX,
                start_ns: 100,
                dur_ns: 5_000,
                attr: 0,
                thread: 3,
                depth: 0,
            },
            SpanEvent {
                name: "we\"ird\\name\n\u{1}",
                trace: 7,
                start_ns: 0,
                dur_ns: u64::MAX,
                attr: 42,
                thread: 0,
                depth: 9,
            },
        ];
        let text = span_line_json(&evs);
        let parsed = parse_span_lines(&text).unwrap();
        let want: Vec<WireSpan> = evs.iter().map(WireSpan::from).collect();
        assert_eq!(parsed, want);
    }

    #[test]
    fn parse_skips_metric_lines_and_rejects_torn_spans() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        m.counter("a").add(1);
        m.histogram("h").record(7);
        let mut text = line_json(&m.snapshot());
        text.push_str("{\"type\":\"span\",\"name\":\"x\",\"trace\":1,\"thread\":0,\"depth\":0,\"start_ns\":5,\"dur_ns\":6,\"attr\":0}\n");
        let parsed = parse_span_lines(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "x");
        // A span line cut mid-object must error, not vanish.
        assert!(parse_span_lines("{\"type\":\"span\",\"name\":\"x\",\"tr").is_err());
        // A span line missing a field must error too.
        assert!(parse_span_lines("{\"type\":\"span\",\"name\":\"x\"}").is_err());
    }

    #[test]
    fn merge_filters_sorts_and_dedups() {
        let ev = |name: &str, trace, thread, start| WireSpan {
            name: name.to_owned(),
            trace,
            thread,
            start_ns: start,
            dur_ns: 1,
            attr: 0,
            depth: 0,
        };
        let client = vec![ev("client.req", 9, 0, 50), ev("other", 4, 0, 60)];
        // The server dump overlaps the client's view of the same event
        // (in-process serving) and adds its own.
        let server = vec![ev("client.req", 9, 0, 50), ev("server.req", 9, 1, 55)];
        let merged = merge_span_dumps(&[client, server], TraceId(9));
        assert_eq!(
            merged.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["client.req", "server.req"],
        );
        let tree = wire_span_tree(&merged);
        assert!(tree.contains("thread 0:"));
        assert!(tree.contains("thread 1:"));
        assert!(tree.contains("(t9)"));
    }

    #[test]
    fn span_tree_indents_by_depth() {
        let evs = vec![
            SpanEvent {
                name: "core.write",
                trace: 7,
                start_ns: 100,
                dur_ns: 5_000,
                attr: 0,
                thread: 0,
                depth: 0,
            },
            SpanEvent {
                name: "storage.wal.sync",
                trace: 7,
                start_ns: 200,
                dur_ns: 3_000,
                attr: 2,
                thread: 0,
                depth: 1,
            },
        ];
        let t = span_tree(&evs);
        assert!(t.contains("thread 0:"));
        assert!(t.contains("core.write"));
        assert!(t.contains("    storage.wal.sync"));
        assert!(t.contains("[2]"));
        assert!(t.contains("(t7)"));
        assert!(span_tree(&[]).contains("no spans"));
    }
}
