//! The lock-light metrics registry: counters, gauges, and fixed-bucket
//! latency histograms.
//!
//! Instruments are `Arc`-backed handles over atomics. The registry map
//! (name → instrument) is behind an `RwLock`, but the lock is touched
//! only at registration / snapshot time: callers look an instrument up
//! once, keep the cloned handle, and every subsequent record is a
//! relaxed atomic operation. Histograms use power-of-two bucket bounds,
//! so a recorded quantile is an *upper bound* on the true quantile and
//! overshoots it by at most 2× — a property the obs test suite proves
//! against sorted samples.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of histogram buckets: `0, 1, 2, 4, …, 2^63, u64::MAX`.
/// The doubling ladder covers the full `u64` range so the ≤2× quantile
/// bound holds for arbitrary samples, not just nanosecond latencies.
pub const NUM_BUCKETS: usize = 66;

/// The bucket upper bounds shared by every histogram.
pub const BUCKET_BOUNDS: [u64; NUM_BUCKETS] = bucket_bounds();

const fn bucket_bounds() -> [u64; NUM_BUCKETS] {
    let mut b = [0u64; NUM_BUCKETS];
    let mut i = 1;
    while i < NUM_BUCKETS - 1 {
        b[i] = 1u64 << (i - 1);
        i += 1;
    }
    b[NUM_BUCKETS - 1] = u64::MAX;
    b
}

/// The first bucket whose upper bound covers `v`.
fn bucket_index(v: u64) -> usize {
    BUCKET_BOUNDS.partition_point(|&b| b < v)
}

// --------------------------------------------------------- instruments

/// A monotone atomic counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (registries hand out shared ones).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `delta` (no-op while metrics are globally disabled).
    pub fn add(&self, delta: u64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: last-written value, with a running-maximum mode.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value (no-op while metrics are disabled).
    pub fn set(&self, v: u64) {
        if crate::metrics_enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the value to `v` if larger (running maximum).
    pub fn record_max(&self, v: u64) {
        if crate::metrics_enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adds one — for occupancy-style gauges (queue depth, sessions
    /// in flight) that pair every `inc` with a later [`Gauge::dec`].
    pub fn inc(&self) {
        if crate::metrics_enabled() {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Subtracts one, saturating at zero (a disabled-metrics window
    /// can make releases outnumber acquires; never wrap to u64::MAX).
    pub fn dec(&self) {
        if crate::metrics_enabled() {
            let _ = self
                .0
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(1))
                });
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    counts: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram handle (power-of-two bounds, see
/// [`BUCKET_BOUNDS`]). Values are dimensionless; by convention the
/// workspace records nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<HistogramInner>);

impl HistogramHandle {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        HistogramHandle::default()
    }

    /// Records one sample (no-op while metrics are disabled).
    pub fn record(&self, v: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        let h = &self.0;
        h.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    pub fn observe(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A frozen copy for quantile math and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        HistogramSnapshot {
            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            min: h.min.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: bucket counts plus summary stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, aligned with [`BUCKET_BOUNDS`].
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding it: always ≥ the true quantile, and ≤ 2× it (bucket
    /// bounds double). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS[i];
            }
        }
        BUCKET_BOUNDS[NUM_BUCKETS - 1]
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another snapshot in bucket-wise (for merging registries).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// ------------------------------------------------------------ registry

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, HistogramHandle>>,
}

/// A named-instrument registry. Cheap to clone (`Arc`); clones share
/// the same instruments. One registry per database plus the process
/// [`crate::global`] one.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<RegistryInner>,
}

fn get_or_insert<T: Clone + Default>(map: &RwLock<BTreeMap<String, T>>, name: &str) -> T {
    if let Some(v) = map.read().expect("metrics registry poisoned").get(name) {
        return v.clone();
    }
    map.write()
        .expect("metrics registry poisoned")
        .entry(name.to_owned())
        .or_default()
        .clone()
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter registered under `name`, created on first use.
    /// Callers on hot paths should keep the returned handle.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.inner.counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.inner.gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        get_or_insert(&self.inner.histograms, name)
    }

    /// Freezes every instrument into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A frozen view of one (or several merged) registries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges `other` in: counters add, gauges take the maximum,
    /// histograms fold bucket-wise. Used to overlay the process-global
    /// registry onto a per-database one.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// Like [`merge`](Self::merge), but every incoming name gains
    /// `prefix` first — how a sharded database labels each shard's
    /// registry (`shard.<i>.core.commits`) so per-shard values stay
    /// distinguishable in one merged snapshot instead of summing into
    /// an unattributable total.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(format!("{prefix}{k}")).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(format!("{prefix}{k}")).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(&format!("{prefix}{k}")) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(format!("{prefix}{k}"), v.clone());
                }
            }
        }
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

// ---------------------------------------------------------------- sink

/// The narrow waist instrumentation records through when it does not
/// hold concrete handles — legacy stats structs publish themselves via
/// a sink, tests substitute [`NullSink`].
pub trait MetricSink: Send + Sync {
    /// Adds `delta` to the counter named `name`.
    fn add(&self, name: &str, delta: u64);
    /// Overwrites the gauge named `name`.
    fn gauge_set(&self, name: &str, v: u64);
    /// Raises the gauge named `name` to `v` if larger.
    fn gauge_max(&self, name: &str, v: u64);
    /// Records `ns` into the histogram named `name`.
    fn observe_ns(&self, name: &str, ns: u64);
}

impl MetricSink for Metrics {
    fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }
    fn gauge_set(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }
    fn gauge_max(&self, name: &str, v: u64) {
        self.gauge(name).record_max(v);
    }
    fn observe_ns(&self, name: &str, ns: u64) {
        self.histogram(name).record(ns);
    }
}

/// A sink that drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricSink for NullSink {
    fn add(&self, _: &str, _: u64) {}
    fn gauge_set(&self, _: &str, _: u64) {}
    fn gauge_max(&self, _: &str, _: u64) {}
    fn observe_ns(&self, _: &str, _: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_double_and_cover_u64() {
        assert_eq!(BUCKET_BOUNDS[0], 0);
        assert_eq!(BUCKET_BOUNDS[1], 1);
        assert_eq!(BUCKET_BOUNDS[2], 2);
        for i in 2..NUM_BUCKETS - 1 {
            assert_eq!(BUCKET_BOUNDS[i], 2 * BUCKET_BOUNDS[i - 1]);
        }
        assert_eq!(BUCKET_BOUNDS[NUM_BUCKETS - 1], u64::MAX);
    }

    #[test]
    fn bucket_index_picks_the_covering_bound() {
        for (v, want) in [(0u64, 0usize), (1, 1), (2, 2), (3, 3), (4, 3), (5, 4)] {
            assert_eq!(bucket_index(v), want, "v={v}");
            assert!(BUCKET_BOUNDS[bucket_index(v)] >= v);
        }
        assert_eq!(BUCKET_BOUNDS[bucket_index(u64::MAX)], u64::MAX);
    }

    #[test]
    fn counters_and_gauges_share_state_by_name() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        m.counter("a.b.c").add(3);
        m.counter("a.b.c").inc();
        assert_eq!(m.counter("a.b.c").get(), 4);
        m.gauge("a.g").set(7);
        m.gauge("a.g").record_max(5);
        assert_eq!(m.gauge("a.g").get(), 7);
        m.gauge("a.g").record_max(9);
        assert_eq!(m.gauge("a.g").get(), 9);
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        let _g = crate::test_flag_lock();
        let g = Gauge::new();
        // More releases than acquires (a disabled-metrics window can
        // cause this): the gauge must pin at zero, never wrap to
        // u64::MAX — a wrapped inflight gauge would permanently jam
        // admission control's load-shed threshold.
        g.inc();
        g.dec();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0);
        g.inc();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_quantiles_upper_bound_samples() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        let h = m.histogram("lat.ns");
        for v in [3u64, 3, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 100);
        // true p50 = 3 → bucket bound 4; true p99 = 100 → bound 128.
        assert_eq!(s.p50(), 4);
        assert_eq!(s.p99(), 128);
        assert_eq!(s.mean(), (3 + 3 + 3 + 100) / 4);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = HistogramHandle::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn snapshots_merge_counters_gauges_histograms() {
        let _g = crate::test_flag_lock();
        let a = Metrics::new();
        let b = Metrics::new();
        a.counter("c").add(1);
        b.counter("c").add(2);
        b.counter("only_b").add(5);
        a.gauge("g").set(3);
        b.gauge("g").set(9);
        a.histogram("h").record(10);
        b.histogram("h").record(1000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counters["c"], 3);
        assert_eq!(s.counters["only_b"], 5);
        assert_eq!(s.gauges["g"], 9);
        assert_eq!(s.histograms["h"].count, 2);
        assert_eq!(s.histograms["h"].max, 1000);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        crate::set_metrics_enabled(false);
        m.counter("off").add(10);
        m.histogram("off.h").record(10);
        crate::set_metrics_enabled(true);
        assert_eq!(m.counter("off").get(), 0);
        assert_eq!(m.histogram("off.h").count(), 0);
    }

    #[test]
    fn sink_routes_to_registry() {
        let _g = crate::test_flag_lock();
        let m = Metrics::new();
        let sink: &dyn MetricSink = &m;
        sink.add("s.c", 2);
        sink.gauge_set("s.g", 4);
        sink.gauge_max("s.g", 6);
        sink.observe_ns("s.h", 123);
        assert_eq!(m.counter("s.c").get(), 2);
        assert_eq!(m.gauge("s.g").get(), 6);
        assert_eq!(m.histogram("s.h").count(), 1);
        NullSink.add("nowhere", 1);
    }
}
