//! # cdb-obs — unified observability for the curated-database stack
//!
//! The paper's thesis is that a curated database must answer *"where
//! did this come from and what happened to it?"* — this crate applies
//! the same standard to the engine itself. A trace is lineage for an
//! operation: every request's path through snapshot → plan → join →
//! WAL → sync is recorded the way a curation transaction records its
//! provenance.
//!
//! Three pieces, all std-only (the build environment has no crates
//! registry, so no `tracing`/`prometheus` here):
//!
//! * **[`metrics`]** — a lock-light [`Metrics`] registry of atomic
//!   counters, gauges, and fixed-bucket latency histograms with
//!   p50/p95/p99 estimation. Registration (name → instrument) takes a
//!   lock once; every subsequent record is a relaxed atomic op on a
//!   cloned handle. The [`MetricSink`] trait is the narrow waist the
//!   rest of the workspace records through, so the legacy stats
//!   structs (`ExecStats`, `GroupCommitStats`, `RecoveryStats`) can be
//!   thin views over the same counters.
//! * **[`span`]** — structured spans with RAII timing
//!   (`span!("wal.group_commit", txn_id)`), trace ids that flow
//!   through thread-local state from the serving entry points down to
//!   the device sync, and a bounded per-thread ring buffer of recent
//!   span events ([`ring`]) written with a seqlock so emission never
//!   blocks on a reader.
//! * **[`export`]** — a human text table and a line-JSON dump for
//!   metric snapshots, a span-tree renderer for `cdbsh profile`, and
//!   the wire-portable span form ([`WireSpan`]): ring dumps serialize
//!   to line-JSON, parse back anywhere, and merge across processes by
//!   trace id (`export::merge_span_dumps`).
//! * **[`flight`]** — an always-on black box: on a `Corrupt` recovery,
//!   a failed 2PC decision sync, or a server panic, the recent ring
//!   events plus a metrics snapshot are persisted crash-atomically
//!   (temp+fsync+rename, length+checksum header) for `cdbsh blackbox`.
//!
//! Metric names follow `layer.component.metric` (see DESIGN.md S24):
//! `core.commits`, `storage.group.batches`, `relalg.eval.ns`,
//! `storage.error.sync_failed`.
//!
//! # Overhead discipline
//!
//! Metrics default **on**, tracing defaults **off**. A disabled
//! instrument costs one relaxed atomic load; a disabled span costs one
//! load plus the `Instant` read its caller needed anyway (operator
//! timing predates this crate). The `obs_overhead` bench holds the
//! whole crate to <3% commit-throughput overhead at 4 writers.
//!
//! This crate is the *only* place in the workspace allowed to read the
//! clock for metric/trace purposes — `scripts/check.sh` greps for
//! stray `Instant::now` timing paths outside the span API.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod flight;
pub mod metrics;
pub mod ring;
pub mod span;

pub use export::WireSpan;
pub use flight::FlightDump;
pub use metrics::{
    Counter, Gauge, HistogramHandle, HistogramSnapshot, MetricSink, Metrics, MetricsSnapshot,
    NullSink,
};
pub use ring::{events_for_trace, recent_events, SpanEvent, RING_CAPACITY};
pub use span::{
    adopt_trace, current_trace, set_slow_threshold, slow_threshold_ns, trace_root, SpanGuard,
    TraceGuard, TraceId,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);
static TRACING_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is enabled (default: yes). Disabled
/// instruments drop records on the floor after one atomic load.
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables metric recording. Used by the
/// `obs_overhead` bench to measure the cost of the instrumentation
/// itself; production code leaves metrics on.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span events are being captured into the per-thread ring
/// buffers (default: no).
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables span capture (`cdbsh trace on|off`).
pub fn set_tracing(on: bool) {
    TRACING_ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry. Layers without a per-database registry
/// (the relational engine, storage error counters) record here;
/// `CuratedDatabase::metrics_snapshot` merges it with the per-database
/// registry so one call sees the whole stack.
pub fn global() -> &'static Metrics {
    static GLOBAL: OnceLock<Metrics> = OnceLock::new();
    GLOBAL.get_or_init(Metrics::new)
}

/// Serializes unit tests that toggle or depend on the process-global
/// enable flags (tests in this crate run on parallel threads).
#[cfg(test)]
pub(crate) fn test_flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_flags_round_trip() {
        let _g = test_flag_lock();
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        set_metrics_enabled(true);
        assert!(!tracing_enabled());
        set_tracing(true);
        assert!(tracing_enabled());
        set_tracing(false);
    }

    #[test]
    fn global_registry_is_shared() {
        let _g = test_flag_lock();
        global().counter("test.lib.shared").add(2);
        assert!(global().counter("test.lib.shared").get() >= 2);
    }
}
