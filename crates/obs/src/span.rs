//! Structured spans: RAII-timed scopes that carry a trace id from the
//! serving entry point down to the device sync.
//!
//! A [`TraceGuard`] (from [`trace_root`]) installs a fresh trace id in
//! thread-local state; every [`SpanGuard`] opened underneath inherits
//! it, times its scope, and — when tracing is enabled — emits a
//! [`crate::SpanEvent`] into the per-thread ring buffer on drop. Spans
//! *always* time (operator statistics need elapsed regardless of trace
//! state); only the ring emission is gated, so `trace off` costs one
//! relaxed atomic load per span beyond the `Instant` read the caller
//! needed anyway.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Identifies one request's path through the stack. `0` is reserved
/// for "no trace" and never allocated.
///
/// Ids are drawn from a per-process pseudo-random sequence seeded from
/// the process id and wall clock, so traces minted by *different*
/// processes (a cdbsh client and the server it dialed) collide only
/// with birthday-bound probability — a requirement for joining span
/// trees from multiple ring dumps by trace id alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Slow-op log threshold in nanoseconds; `0` disables the log.
static SLOW_THRESHOLD_NS: AtomicU64 = AtomicU64::new(0);

/// Finalizer step of SplitMix64 — a cheap bijective scrambler, enough
/// to spread sequential counter values across the id space.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn trace_id_base() -> u64 {
    static BASE: OnceLock<u64> = OnceLock::new();
    *BASE.get_or_init(|| {
        let pid = u64::from(std::process::id());
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(pid) ^ now
    })
}

/// A fresh nonzero trace id, unique within this process and
/// collision-resistant across processes.
fn fresh_trace_id() -> u64 {
    loop {
        let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(trace_id_base().wrapping_add(n));
        if id != 0 {
            return id;
        }
    }
}

/// Sets the slow-op log threshold: a span whose duration reaches the
/// threshold is pushed to the ring **even with tracing off** (and
/// counted on `obs.slowlog.events`), so a production server with
/// tracing disabled still retains its slowest recent operations for
/// the flight recorder and `trace show`. `None` disables the log.
pub fn set_slow_threshold(threshold: Option<Duration>) {
    let ns = threshold.map_or(0, |d| (d.as_nanos() as u64).max(1));
    SLOW_THRESHOLD_NS.store(ns, Ordering::Relaxed);
}

/// The current slow-op threshold in nanoseconds (`0` = disabled).
pub fn slow_threshold_ns() -> u64 {
    SLOW_THRESHOLD_NS.load(Ordering::Relaxed)
}

fn slow_counter() -> &'static crate::Counter {
    static SLOW: OnceLock<crate::Counter> = OnceLock::new();
    SLOW.get_or_init(|| crate::global().counter("obs.slowlog.events"))
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    static CURRENT_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The trace id installed on this thread, if any.
pub fn current_trace() -> Option<TraceId> {
    let id = CURRENT_TRACE.with(|c| c.get());
    (id != 0).then_some(TraceId(id))
}

/// The process-relative monotonic epoch span start times are measured
/// against, so events from different threads order correctly.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Installs a trace id on this thread for the guard's lifetime. If the
/// thread already carries a trace (e.g. a `profile` session wrapping a
/// write), the guard **joins** it rather than starting a new one, so
/// every span along the request path shares one id; otherwise a fresh
/// id is allocated and removed again on drop. Entry points —
/// `SharedDb::write`, `SharedDb::snapshot`, `recover` — call this;
/// inner layers only open [`SpanGuard`]s.
pub fn trace_root() -> TraceGuard {
    let prev = CURRENT_TRACE.with(|c| c.get());
    if prev != 0 {
        return TraceGuard {
            id: TraceId(prev),
            prev,
        };
    }
    let id = fresh_trace_id();
    CURRENT_TRACE.with(|c| c.set(id));
    TraceGuard {
        id: TraceId(id),
        prev,
    }
}

/// Installs a *specific* trace id on this thread — the server half of
/// wire-propagated trace context: a session adopts the id the client
/// stamped on the frame, so spans recorded on both sides of the wire
/// join one tree. Unlike [`trace_root`], a nonzero ambient trace is
/// **replaced** (and restored on drop): the wire id is authoritative
/// for the request's duration. A zero id falls back to [`trace_root`]
/// semantics (join the ambient trace or mint a fresh id).
pub fn adopt_trace(id: TraceId) -> TraceGuard {
    if id.0 == 0 {
        return trace_root();
    }
    let prev = CURRENT_TRACE.with(|c| c.get());
    CURRENT_TRACE.with(|c| c.set(id.0));
    TraceGuard { id, prev }
}

/// RAII holder for a thread's current trace id (see [`trace_root`]).
#[derive(Debug)]
pub struct TraceGuard {
    id: TraceId,
    prev: u64,
}

impl TraceGuard {
    /// The trace id this guard installed.
    pub fn id(&self) -> TraceId {
        self.id
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// An RAII-timed scope. Construct with [`SpanGuard::enter`] or the
/// [`span!`](crate::span!) macro; the scope's duration is available
/// live via [`elapsed`](SpanGuard::elapsed) and is emitted to the ring
/// buffer on drop when tracing is on.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    start_ns: u64,
    attr: u64,
    trace: u64,
    depth: u32,
}

impl SpanGuard {
    /// Opens a span with no attribute. `name` follows the
    /// `layer.component.metric` convention and must be a literal so
    /// ring slots can store an interned id.
    pub fn enter(name: &'static str) -> SpanGuard {
        SpanGuard::with_attr(name, 0)
    }

    /// Opens a span carrying one numeric attribute (row count, txn id,
    /// batch size — whatever the site finds most useful).
    pub fn with_attr(name: &'static str, attr: u64) -> SpanGuard {
        let depth = CURRENT_DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        let start = Instant::now();
        SpanGuard {
            name,
            start,
            start_ns: start.saturating_duration_since(epoch()).as_nanos() as u64,
            attr,
            trace: CURRENT_TRACE.with(|c| c.get()),
            depth,
        }
    }

    /// Time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Replaces the span's attribute (e.g. a row count known only at
    /// the end of the scope).
    pub fn set_attr(&mut self, attr: u64) {
        self.attr = attr;
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let traced = crate::tracing_enabled();
        let threshold = SLOW_THRESHOLD_NS.load(Ordering::Relaxed);
        if !traced && threshold == 0 {
            return;
        }
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        let slow = threshold != 0 && dur_ns >= threshold;
        if slow {
            slow_counter().inc();
        }
        if traced || slow {
            crate::ring::push(crate::SpanEvent {
                name: self.name,
                trace: self.trace,
                start_ns: self.start_ns,
                dur_ns,
                attr: self.attr,
                thread: 0, // filled in by the ring
                depth: self.depth,
            });
        }
    }
}

/// Opens a [`SpanGuard`] — `span!("storage.wal.sync")` or
/// `span!("relalg.op.join", rows)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $attr:expr) => {
        $crate::SpanGuard::with_attr($name, $attr as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roots_join_an_ambient_trace() {
        assert_eq!(current_trace(), None);
        let outer = trace_root();
        assert_eq!(current_trace(), Some(outer.id()));
        {
            // A nested entry point joins the ambient trace instead of
            // fragmenting the request across two ids.
            let inner = trace_root();
            assert_eq!(inner.id(), outer.id());
            assert_eq!(current_trace(), Some(outer.id()));
        }
        assert_eq!(current_trace(), Some(outer.id()));
        drop(outer);
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn spans_time_without_tracing() {
        let mut s = span!("test.span.timed", 7);
        std::thread::sleep(Duration::from_millis(1));
        assert!(s.elapsed() >= Duration::from_millis(1));
        s.set_attr(9);
        assert_eq!(s.name(), "test.span.timed");
    }

    #[test]
    fn adopt_installs_and_restores() {
        assert_eq!(current_trace(), None);
        let wire = TraceId(0xDEAD_BEEF);
        {
            let g = adopt_trace(wire);
            assert_eq!(g.id(), wire);
            assert_eq!(current_trace(), Some(wire));
            {
                // A nested root joins the adopted trace.
                let inner = trace_root();
                assert_eq!(inner.id(), wire);
            }
            // A nested adopt of a different id replaces, then restores.
            {
                let other = adopt_trace(TraceId(42));
                assert_eq!(current_trace(), Some(other.id()));
            }
            assert_eq!(current_trace(), Some(wire));
        }
        assert_eq!(current_trace(), None);
        // Zero falls back to fresh allocation.
        let g = adopt_trace(TraceId(0));
        assert_ne!(g.id().0, 0);
    }

    #[test]
    fn fresh_ids_are_nonzero_and_distinct() {
        let a = trace_root().id();
        let b = trace_root().id();
        assert_ne!(a.0, 0);
        assert_ne!(b.0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn slow_threshold_round_trips() {
        let _g = crate::test_flag_lock();
        assert_eq!(slow_threshold_ns(), 0);
        set_slow_threshold(Some(Duration::from_millis(5)));
        assert_eq!(slow_threshold_ns(), 5_000_000);
        set_slow_threshold(None);
        assert_eq!(slow_threshold_ns(), 0);
    }

    #[test]
    fn depth_tracks_nesting() {
        let a = SpanGuard::enter("test.depth.a");
        let b = SpanGuard::enter("test.depth.b");
        assert_eq!(a.depth + 1, b.depth);
        drop(b);
        let c = SpanGuard::enter("test.depth.c");
        assert_eq!(a.depth + 1, c.depth);
    }
}
