//! The flight recorder: an always-on black box for the moments the
//! system would most like to forget.
//!
//! The ring buffers and metric registries already retain the recent
//! past in memory — but the events worth explaining after the fact
//! (a `Corrupt` recovery, a failed 2PC decision sync, a server panic)
//! are exactly the ones where the process may not live long enough to
//! be asked. [`snap`] freezes the recent ring events plus a metrics
//! snapshot into one bounded dump and persists it with the same
//! temp+fsync+rename discipline the checkpoint store uses, so a crash
//! at any byte offset leaves either the previous complete dump or
//! nothing — never a torn one. `cdbsh blackbox <dir>` reads it back.
//!
//! # Dump format and crash consistency
//!
//! ```text
//! cdbflight1 len=<payload bytes> crc=<16 hex, FNV-1a 64 of payload>\n
//! {"type":"flight","reason":"...","seq":N}\n
//! <line_json of the metrics snapshot>
//! <span_line_json of recent ring events>
//! ```
//!
//! Two independent defenses: the *rename* is atomic, so `flight.dump`
//! only ever names a file that was completely written and fsynced; and
//! the header's length+checksum make [`decode`] reject every strict
//! prefix (and any corruption) of a dump, so even a filesystem that
//! breaks the rename contract degrades to "no dump", not a lie. The
//! fault suite cuts the encoded bytes at every offset and asserts
//! exactly this.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::export::{line_json, parse_span_lines, span_line_json, WireSpan};
use crate::MetricsSnapshot;

/// Magic token opening every dump; bumps with the format.
pub const FLIGHT_MAGIC: &str = "cdbflight1";

/// File name of the (single, latest) dump inside the installed dir.
pub const DUMP_FILE: &str = "flight.dump";

/// Scratch name the dump is written to before the atomic rename.
pub const TMP_FILE: &str = "flight.tmp";

/// One decoded black-box dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Why the snapshot was taken (`storage.recovery.corrupt`,
    /// `core.twopc.decision_failed`, `server.panic`, ...).
    pub reason: String,
    /// Monotone per-process dump number (later dumps overwrite
    /// earlier ones; the sequence says how many were taken).
    pub seq: u64,
    /// The payload body: the flight header line, then metrics
    /// line-JSON, then span line-JSON.
    pub body: String,
}

impl FlightDump {
    /// Builds a dump from a metrics snapshot plus the current ring
    /// contents.
    pub fn capture(reason: &str, seq: u64, metrics: &MetricsSnapshot) -> FlightDump {
        let mut body = format!(
            "{{\"type\":\"flight\",\"reason\":\"{}\",\"seq\":{seq}}}\n",
            crate::export::json_escape(reason),
        );
        body.push_str(&line_json(metrics));
        body.push_str(&span_line_json(&crate::recent_events()));
        FlightDump {
            reason: reason.to_owned(),
            seq,
            body,
        }
    }

    /// The span events recorded in the dump.
    pub fn spans(&self) -> Result<Vec<WireSpan>, String> {
        parse_span_lines(&self.body)
    }
}

/// FNV-1a 64 over `bytes` — cheap, std-only, and plenty to tell a torn
/// or bit-flipped dump from a whole one.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a dump to its on-disk bytes (header line + payload).
pub fn encode(dump: &FlightDump) -> Vec<u8> {
    let payload = dump.body.as_bytes();
    let mut out = format!(
        "{FLIGHT_MAGIC} len={} crc={:016x}\n",
        payload.len(),
        fnv1a(payload)
    )
    .into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Decodes on-disk bytes, rejecting anything torn: wrong magic, a
/// payload shorter *or longer* than the header claims, a checksum
/// mismatch, or a malformed flight header line.
pub fn decode(bytes: &[u8]) -> Result<FlightDump, String> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("flight dump has no header line")?;
    let header =
        std::str::from_utf8(&bytes[..nl]).map_err(|_| "flight header is not utf-8".to_owned())?;
    let mut parts = header.split(' ');
    if parts.next() != Some(FLIGHT_MAGIC) {
        return Err(format!("not a flight dump (wanted '{FLIGHT_MAGIC}')"));
    }
    let len: usize = parts
        .next()
        .and_then(|p| p.strip_prefix("len="))
        .and_then(|v| v.parse().ok())
        .ok_or("flight header missing len=")?;
    let crc: u64 = parts
        .next()
        .and_then(|p| p.strip_prefix("crc="))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or("flight header missing crc=")?;
    if parts.next().is_some() {
        return Err("trailing fields in flight header".to_owned());
    }
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(format!(
            "flight payload is {} bytes, header says {len} (torn dump)",
            payload.len()
        ));
    }
    if fnv1a(payload) != crc {
        return Err("flight payload checksum mismatch (torn dump)".to_owned());
    }
    let body = std::str::from_utf8(payload)
        .map_err(|_| "flight payload is not utf-8".to_owned())?
        .to_owned();
    let first = body.lines().next().unwrap_or("");
    let (reason, seq) = parse_flight_header(first)?;
    Ok(FlightDump { reason, seq, body })
}

/// Pulls `reason` and `seq` out of the `{"type":"flight",...}` line.
fn parse_flight_header(line: &str) -> Result<(String, u64), String> {
    let spans_err = "flight body does not open with a flight header line";
    let rest = line
        .strip_prefix("{\"type\":\"flight\",\"reason\":\"")
        .ok_or(spans_err)?;
    // The reason is json-escaped, so an unescaped '"' ends it.
    let mut reason = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next().ok_or(spans_err)? {
            '"' => break,
            '\\' => match chars.next().ok_or(spans_err)? {
                '"' => reason.push('"'),
                '\\' => reason.push('\\'),
                'n' => reason.push('\n'),
                't' => reason.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&hex, 16).map_err(|_| spans_err.to_owned())?;
                    reason.push(char::from_u32(v).ok_or(spans_err)?);
                }
                _ => return Err(spans_err.to_owned()),
            },
            c => reason.push(c),
        }
    }
    let seq = chars
        .as_str()
        .strip_prefix(",\"seq\":")
        .and_then(|s| s.strip_suffix('}'))
        .and_then(|s| s.parse().ok())
        .ok_or(spans_err)?;
    Ok((reason, seq))
}

/// Persists `dump` into `dir` as `flight.dump` via temp+fsync+rename:
/// the dump file either keeps its previous complete contents or names
/// the new complete bytes — no observable intermediate state.
pub fn persist(dir: &Path, dump: &FlightDump) -> std::io::Result<PathBuf> {
    let tmp = dir.join(TMP_FILE);
    let dst = dir.join(DUMP_FILE);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&encode(dump))?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, &dst)?;
    // Make the rename itself durable (best-effort on non-Unix).
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(dst)
}

/// Loads the dump from `dir`, if one exists. `Ok(None)` when absent
/// (including a leftover `flight.tmp` with no completed dump — a cut
/// mid-persist); `Err` only when `flight.dump` exists but fails
/// validation, which the persist discipline makes unreachable short of
/// filesystem misbehavior.
pub fn load(dir: &Path) -> Result<Option<FlightDump>, String> {
    let path = dir.join(DUMP_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let bytes = std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    decode(&bytes).map(Some)
}

// -------------------------------------------------- process-global hook

fn recorder_dir() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

static SEQ: AtomicU64 = AtomicU64::new(1);

/// Arms the flight recorder: future [`snap`] calls persist into `dir`.
/// Durable opens (`cdbsh open`/`shard open`, the server) install their
/// data directory here; until something installs one, [`snap`] is a
/// no-op — the recorder never invents a place to write.
pub fn install(dir: impl AsRef<Path>) {
    *recorder_dir().lock().unwrap_or_else(|e| e.into_inner()) = Some(dir.as_ref().to_path_buf());
}

/// Disarms the recorder (tests; a shell closing its database).
pub fn uninstall() {
    *recorder_dir().lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The directory [`snap`] would write into, if armed.
pub fn installed() -> Option<PathBuf> {
    recorder_dir()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// The black-box trigger: captures recent ring events plus the global
/// metrics registry and persists them. Returns the dump path, or
/// `None` when the recorder is unarmed or persistence itself failed —
/// a flight recorder must never turn a bad day into a panic.
pub fn snap(reason: &str) -> Option<PathBuf> {
    snap_with(reason, &crate::global().snapshot())
}

/// [`snap`] with a caller-supplied metrics snapshot (a server hands in
/// its fully merged view so per-shard instruments land in the dump).
pub fn snap_with(reason: &str, metrics: &MetricsSnapshot) -> Option<PathBuf> {
    let dir = installed()?;
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dump = FlightDump::capture(reason, seq, metrics);
    match persist(&dir, &dump) {
        Ok(path) => {
            crate::global().counter("obs.flight.dumps").inc();
            Some(path)
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlightDump {
        let m = crate::Metrics::new();
        m.counter("test.flight.c").add(3);
        FlightDump::capture("test \"re\\ason\"", 7, &m.snapshot())
    }

    #[test]
    fn encode_decode_round_trips() {
        let _g = crate::test_flag_lock();
        let d = sample();
        let back = decode(&encode(&d)).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.reason, "test \"re\\ason\"");
        assert_eq!(back.seq, 7);
        assert!(back.body.contains("test.flight.c"));
        back.spans().unwrap();
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        let _g = crate::test_flag_lock();
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                bytes.len()
            );
        }
        // ... and so is any single bit flip in the payload.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(decode(&flipped).is_err());
    }

    #[test]
    fn persist_and_load_round_trip() {
        let _g = crate::test_flag_lock();
        let dir = std::env::temp_dir().join(format!("cdb_flight_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(load(&dir).unwrap(), None);
        let d = sample();
        persist(&dir, &d).unwrap();
        assert_eq!(load(&dir).unwrap(), Some(d.clone()));
        // A torn tmp file never shadows the completed dump.
        std::fs::write(dir.join(TMP_FILE), &encode(&d)[..10]).unwrap();
        assert_eq!(load(&dir).unwrap(), Some(d));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snap_is_a_noop_until_installed() {
        let _g = crate::test_flag_lock();
        uninstall();
        assert_eq!(snap("test.unarmed"), None);
        let dir = std::env::temp_dir().join(format!("cdb_flight_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        install(&dir);
        let path = snap("test.armed").unwrap();
        let loaded = load(&dir).unwrap().unwrap();
        assert_eq!(loaded.reason, "test.armed");
        assert!(path.ends_with(DUMP_FILE));
        uninstall();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
