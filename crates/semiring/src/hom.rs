//! Semiring homomorphisms and the specialization chain.
//!
//! §4.1: "they are not exactly the same, but they are related by
//! homomorphisms h : P(P(X)) → Irr(P(P(X))) and
//! h′ : Irr(P(P(X))) → P ∪ {⊥}."
//!
//! Together with the universal valuation out of ℕ\[X\], the chain is
//!
//! ```text
//! ℕ[X] ──poly_to_why──▶ Why ──why_to_minwhy──▶ MinWhy ──minwhy_to_lineage──▶ Lineage ──lineage_to_bool──▶ Bool
//! ```
//!
//! The fundamental property (tested here and by proptest suites): for a
//! positive query `q`, `h(eval_K(q, D)) = eval_L(q, h(D))` — one may
//! evaluate once in the most general semiring and specialize afterwards.

use crate::instances::lineage::Lineage;
use crate::instances::minwhy::MinWhy;
use crate::instances::nat::Nat;
use crate::instances::polynomial::Polynomial;
use crate::instances::why::Why;
use crate::instances::Bool;

/// ℕ\[X\] → Why: each monomial becomes the witness of its variable
/// support (exponents and coefficients are forgotten — why-provenance
/// does not count).
pub fn poly_to_why(p: &Polynomial) -> Why {
    Why::from_witnesses(
        p.terms()
            .map(|(m, _)| m.vars().map(str::to_owned).collect()),
    )
}

/// ℕ\[X\] → ℕ: evaluate every variable as 1 (derivation counting /
/// bag multiplicity).
pub fn poly_to_nat(p: &Polynomial) -> Nat {
    p.eval_in(&|_| Nat(1))
}

/// Why → MinWhy: the paper's `min` homomorphism.
pub fn why_to_minwhy(w: &Why) -> MinWhy {
    MinWhy::from(w)
}

/// Why → Lineage: flatten all witnesses together, sending the empty
/// element to ⊥. This *is* a homomorphism (unlike flattening after
/// minimization — see below).
pub fn why_to_lineage(w: &Why) -> Lineage {
    if w.witnesses().is_empty() {
        Lineage::Bottom
    } else {
        Lineage::Set(
            w.witnesses()
                .iter()
                .flat_map(|x| x.iter().cloned())
                .collect(),
        )
    }
}

/// MinWhy → Lineage: flatten the *minimal* witnesses, sending the empty
/// element to ⊥.
///
/// §4.1 of the paper presents this map (`h′ : Irr(P(P(X))) → P ∪ {⊥}`)
/// as a homomorphism, but it is **not** additive: with `S = {{r}}` and
/// `T = {{r,s}}`, `h′(S + T) = h′(min({{r},{r,s}})) = {r}` while
/// `h′(S) + h′(T) = {r,s}`. Minimization discards witnesses whose
/// members lineage would have retained. The test
/// `minwhy_to_lineage_is_not_a_homomorphism` documents the
/// counterexample; lineage is correctly reached from [`Why`] via
/// [`why_to_lineage`], making MinWhy/PosBool and Lineage *incomparable*
/// specializations of Why rather than a chain.
pub fn minwhy_to_lineage(m: &MinWhy) -> Lineage {
    if m.witnesses().is_empty() {
        Lineage::Bottom
    } else {
        Lineage::Set(
            m.witnesses()
                .iter()
                .flat_map(|w| w.iter().cloned())
                .collect(),
        )
    }
}

/// Lineage → Bool: is there any derivation at all?
pub fn lineage_to_bool(l: &Lineage) -> Bool {
    Bool(!matches!(l, Lineage::Bottom))
}

/// ℕ → Bool.
pub fn nat_to_bool(n: &Nat) -> Bool {
    Bool(n.0 > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_k, figure4_database, figure4_query};
    use crate::semiring::{check_laws, Semiring};
    use cdb_model::Atom;

    fn s(x: &str) -> Atom {
        Atom::Str(x.into())
    }

    /// Checks `h` is a homomorphism on the given samples.
    fn check_hom<K: Semiring, L: Semiring>(h: impl Fn(&K) -> L, samples: &[K]) {
        assert_eq!(h(&K::zero()), L::zero(), "h(0) ≠ 0");
        assert_eq!(h(&K::one()), L::one(), "h(1) ≠ 1");
        for a in samples {
            for b in samples {
                assert_eq!(h(&a.add(b)), h(a).add(&h(b)), "h not additive");
                assert_eq!(h(&a.mul(b)), h(a).mul(&h(b)), "h not multiplicative");
            }
        }
    }

    fn poly_samples() -> Vec<Polynomial> {
        let p = Polynomial::var("p");
        let r = Polynomial::var("r");
        vec![
            Polynomial::zero(),
            Polynomial::one(),
            p.clone(),
            r.clone(),
            p.add(&r),
            p.mul(&p),
            p.add(&p.mul(&r)),
            Polynomial::constant(2).mul(&r),
        ]
    }

    #[test]
    fn all_chain_maps_are_homomorphisms() {
        let polys = poly_samples();
        check_hom(poly_to_why, &polys);
        check_hom(poly_to_nat, &polys);
        let whys: Vec<Why> = polys.iter().map(poly_to_why).collect();
        check_hom(why_to_minwhy, &whys);
        let minwhys: Vec<MinWhy> = whys.iter().map(why_to_minwhy).collect();
        check_hom(why_to_lineage, &whys);
        let lineages: Vec<Lineage> = whys.iter().map(why_to_lineage).collect();
        check_hom(lineage_to_bool, &lineages);
        check_hom(nat_to_bool, &[Nat(0), Nat(1), Nat(5)]);
        // And everything in the chain really is a semiring.
        check_laws(&whys);
        check_laws(&minwhys);
        check_laws(&lineages);
    }

    #[test]
    fn evaluation_commutes_with_specialization_on_figure4() {
        // Evaluate Figure 4 once in ℕ[X], then specialize; compare with
        // evaluating directly in each specialized semiring.
        let q = figure4_query();
        let poly_db = figure4_database(|v| Polynomial::var(v));
        let poly_v = eval_k(&poly_db, &q).unwrap();

        // … to Why.
        let why_direct = eval_k(&figure4_database(|v| Why::var(v)), &q).unwrap();
        assert_eq!(poly_v.map_annotations(&poly_to_why), why_direct);

        // … to ℕ (variables ↦ 1).
        let nat_direct = eval_k(&figure4_database(|_| Nat(1)), &q).unwrap();
        assert_eq!(poly_v.map_annotations(&poly_to_nat), nat_direct);

        // … to Lineage via Why.
        let lin_direct = eval_k(&figure4_database(|v| Lineage::var(v)), &q).unwrap();
        assert_eq!(
            poly_v.map_annotations(&|p: &Polynomial| why_to_lineage(&poly_to_why(p))),
            lin_direct
        );
    }

    #[test]
    fn specialized_figure4_values_match_the_papers_discussion() {
        let q = figure4_query();
        let poly_v = eval_k(&figure4_database(|v| Polynomial::var(v)), &q).unwrap();
        let de = poly_v.annotation(&vec![s("d"), s("e")]);
        // minimal why-provenance of (d,e) is {{r}}: the r·r and r·s
        // witnesses are non-minimal.
        let min = why_to_minwhy(&poly_to_why(&de));
        assert_eq!(min.to_string(), "r");
        // lineage flattens to every involved tuple.
        assert_eq!(why_to_lineage(&poly_to_why(&de)).to_string(), "{r,s}");
        // bag count: 3 derivations.
        assert_eq!(poly_to_nat(&de), Nat(3));
    }

    /// §4.1 presents `h′ : Irr(P(P(X))) → P ∪ {⊥}` as a homomorphism.
    /// It is not: this is the concrete counterexample (documented in
    /// EXPERIMENTS.md as a finding of the reproduction).
    #[test]
    fn minwhy_to_lineage_is_not_a_homomorphism() {
        let s_el = MinWhy::var("r");
        let t_el = MinWhy::var("r").mul(&MinWhy::var("s"));
        let lhs = minwhy_to_lineage(&s_el.add(&t_el));
        let rhs = minwhy_to_lineage(&s_el).add(&minwhy_to_lineage(&t_el));
        assert_eq!(lhs.to_string(), "{r}");
        assert_eq!(rhs.to_string(), "{r,s}");
        assert_ne!(lhs, rhs, "additivity fails, so h′ is not a semiring hom");
    }
}
