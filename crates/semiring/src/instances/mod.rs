//! Semiring instances.
//!
//! §4.1: "Various instantiations of this abstract provenance semiring
//! give rise to a number of well-known extensions to positive relational
//! algebra: relational algebra itself, algebra with bag semantics,
//! C-tables, and probabilistic event tables."
//!
//! The instances form a specialization hierarchy under surjective
//! homomorphisms (most to least informative):
//!
//! ```text
//! ℕ[X]  ──→  Why(X)  ──→  MinWhy(X) ≅ PosBool(X)  ──→  Lineage(X)  ──→  Bool
//!   │
//!   └──→ ℕ (bag)  ──→  Bool
//! ```
//!
//! see [`crate::hom`] for the maps and their commutation property.

pub mod lineage;
pub mod minwhy;
pub mod nat;
pub mod polynomial;
pub mod prob;
pub mod tropical;
pub mod why;

use crate::semiring::Semiring;

/// The Boolean semiring `({true,false}, ∨, ∧, false, true)`: ordinary set
/// semantics. The least informative provenance — "is the tuple there?"
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn add(&self, other: &Self) -> Self {
        Bool(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        Bool(self.0 && other.0)
    }
}

impl std::fmt::Display for Bool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_laws;

    #[test]
    fn bool_is_a_semiring() {
        check_laws(&[Bool(false), Bool(true)]);
    }
}
