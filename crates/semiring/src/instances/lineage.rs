//! Lineage (Cui–Widom), with the paper's correction.
//!
//! §4.1: "It was claimed in \[44\] that why-provenance can be obtained
//! by evaluating using the structure P(X) equipped with `0 = 1 = ∅` and
//! `+ = · = ∪`. This definition actually is closest to lineage. Also …
//! there is a technical problem: `(P(X), ∪, ∪, ∅, ∅)` is not a semiring
//! since it does not satisfy the multiplicative annihilator law
//! `0·a = 0`. Instead, the (apparently) intended behavior can be
//! obtained by taking `P(X) ∪ {⊥}` with `0 = ⊥`, `1 = ∅`,
//! `⊥+S = S+⊥ = S`, `⊥·S = S·⊥ = ⊥`, and `S + T = S · T = S ∪ T` if
//! `S, T ≠ ⊥`."
//!
//! That corrected structure is exactly this type.

use std::collections::BTreeSet;
use std::fmt;

use crate::semiring::Semiring;

/// The lineage semiring `P(X) ∪ {⊥}`.
///
/// `Bottom` (⊥) is the additive zero — "no derivation at all" — while
/// `Set(∅)` is the multiplicative one — "derivable from nothing".
/// Conflating the two is precisely the bug the paper corrects.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lineage {
    /// ⊥: the tuple has no derivation (absent).
    Bottom,
    /// The set of source-tuple identifiers that the output tuple's
    /// derivation *involves* (all witnesses flattened together).
    Set(BTreeSet<String>),
}

impl Lineage {
    /// A singleton lineage.
    pub fn var(name: impl Into<String>) -> Self {
        Lineage::Set([name.into()].into_iter().collect())
    }

    /// The identifiers, if present.
    pub fn ids(&self) -> Option<&BTreeSet<String>> {
        match self {
            Lineage::Bottom => None,
            Lineage::Set(s) => Some(s),
        }
    }
}

impl Semiring for Lineage {
    fn zero() -> Self {
        Lineage::Bottom
    }
    fn one() -> Self {
        Lineage::Set(BTreeSet::new())
    }
    fn add(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Bottom, x) | (x, Lineage::Bottom) => x.clone(),
            (Lineage::Set(a), Lineage::Set(b)) => Lineage::Set(a.union(b).cloned().collect()),
        }
    }
    fn mul(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Bottom, _) | (_, Lineage::Bottom) => Lineage::Bottom,
            (Lineage::Set(a), Lineage::Set(b)) => Lineage::Set(a.union(b).cloned().collect()),
        }
    }
}

impl fmt::Display for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lineage::Bottom => write!(f, "⊥"),
            Lineage::Set(s) => {
                write!(f, "{{")?;
                for (i, x) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_laws;

    #[test]
    fn corrected_lineage_is_a_semiring() {
        check_laws(&[
            Lineage::Bottom,
            Lineage::one(),
            Lineage::var("p"),
            Lineage::var("r"),
            Lineage::var("p").add(&Lineage::var("r")),
        ]);
    }

    #[test]
    fn bottom_annihilates_but_empty_set_does_not() {
        let p = Lineage::var("p");
        assert_eq!(Lineage::Bottom.mul(&p), Lineage::Bottom);
        assert_eq!(Lineage::one().mul(&p), p);
        assert_eq!(Lineage::Bottom.add(&p), p);
    }

    #[test]
    fn add_and_mul_both_flatten() {
        let p = Lineage::var("p");
        let r = Lineage::var("r");
        let both: BTreeSet<String> = ["p".to_string(), "r".to_string()].into();
        assert_eq!(p.add(&r), Lineage::Set(both.clone()));
        assert_eq!(p.mul(&r), Lineage::Set(both));
    }
}
