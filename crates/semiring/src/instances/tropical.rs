//! The tropical (min-plus) semiring: cheapest-derivation cost.
//!
//! Not named in the paper's list, but a standard instantiation that the
//! curated-database setting puts to work in `cdb-core`: annotate each
//! source with the cost of verifying/licensing it (§1.2's micropayment
//! discussion — "if one database charges for access to some piece of
//! data, … some of the payment goes to the sources of that data"), and
//! the tropical evaluation yields the cheapest way to derive each output
//! tuple.

use crate::semiring::Semiring;

/// `(ℕ ∪ {∞}, min, +, ∞, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tropical {
    /// Finite cost.
    Cost(u64),
    /// ∞: no derivation.
    Infinity,
}

impl Tropical {
    /// The finite cost, if any.
    pub fn cost(&self) -> Option<u64> {
        match self {
            Tropical::Cost(c) => Some(*c),
            Tropical::Infinity => None,
        }
    }
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical::Infinity
    }
    fn one() -> Self {
        Tropical::Cost(0)
    }
    fn add(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, x) | (x, Tropical::Infinity) => *x,
            (Tropical::Cost(a), Tropical::Cost(b)) => Tropical::Cost(*a.min(b)),
        }
    }
    fn mul(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, _) | (_, Tropical::Infinity) => Tropical::Infinity,
            (Tropical::Cost(a), Tropical::Cost(b)) => Tropical::Cost(a.saturating_add(*b)),
        }
    }
}

impl std::fmt::Display for Tropical {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tropical::Cost(c) => write!(f, "{c}"),
            Tropical::Infinity => write!(f, "∞"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_laws;

    #[test]
    fn tropical_is_a_semiring() {
        check_laws(&[
            Tropical::Infinity,
            Tropical::Cost(0),
            Tropical::Cost(1),
            Tropical::Cost(5),
        ]);
    }

    #[test]
    fn min_plus_behaviour() {
        let a = Tropical::Cost(3);
        let b = Tropical::Cost(5);
        assert_eq!(a.add(&b), Tropical::Cost(3));
        assert_eq!(a.mul(&b), Tropical::Cost(8));
        assert_eq!(Tropical::Infinity.mul(&a), Tropical::Infinity);
        assert_eq!(Tropical::Infinity.add(&a), a);
    }
}
