//! Proof why-provenance: the semiring `P(P(X))`.
//!
//! §4.1: "A natural definition of proof why-provenance can be given using
//! a different semiring: the set P(P(X)) of all sets of subsets of X,
//! with 0 = ∅, 1 = {∅}, S + T = S ∪ T and S · T = {s ∪ t | s ∈ S, t ∈ T}."
//!
//! An element is a set of *witnesses*; each witness is a set of source
//! tuples jointly sufficient to derive the output tuple.

use std::collections::BTreeSet;
use std::fmt;

use crate::semiring::Semiring;

/// A witness: a set of source-tuple identifiers.
pub type Witness = BTreeSet<String>;

/// Proof why-provenance `(P(P(X)), ∪, pairwise-∪, ∅, {∅})`.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Why(BTreeSet<Witness>);

impl Why {
    /// The provenance of a base tuple: one singleton witness.
    pub fn var(name: impl Into<String>) -> Self {
        Why([[name.into()].into_iter().collect()].into_iter().collect())
    }

    /// Builds from an explicit witness set.
    pub fn from_witnesses(ws: impl IntoIterator<Item = Witness>) -> Self {
        Why(ws.into_iter().collect())
    }

    /// The witnesses.
    pub fn witnesses(&self) -> &BTreeSet<Witness> {
        &self.0
    }

    /// The *minimal* witnesses: those with no proper sub-witness in the
    /// set. This is the `min` operation whose homomorphic image is
    /// [`crate::MinWhy`].
    pub fn minimal_witnesses(&self) -> BTreeSet<Witness> {
        self.0
            .iter()
            .filter(|w| !self.0.iter().any(|o| *o != **w && o.is_subset(w)))
            .cloned()
            .collect()
    }

    /// Whether `sub` (a set of available source tuples) supports at least
    /// one witness — i.e. the output tuple would still be derivable from
    /// `sub` alone.
    pub fn supported_by(&self, sub: &Witness) -> bool {
        self.0.iter().any(|w| w.is_subset(sub))
    }
}

impl Semiring for Why {
    fn zero() -> Self {
        Why(BTreeSet::new())
    }
    fn one() -> Self {
        Why([Witness::new()].into_iter().collect())
    }
    fn add(&self, other: &Self) -> Self {
        Why(self.0.union(&other.0).cloned().collect())
    }
    fn mul(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        Why(out)
    }
}

impl fmt::Display for Why {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, x) in w.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_laws;

    fn p() -> Why {
        Why::var("p")
    }
    fn r() -> Why {
        Why::var("r")
    }

    #[test]
    fn why_is_a_semiring() {
        check_laws(&[
            Why::zero(),
            Why::one(),
            p(),
            r(),
            p().add(&r()),
            p().mul(&r()),
            p().add(&p().mul(&r())),
        ]);
    }

    #[test]
    fn addition_is_idempotent_but_keeps_nonminimal_witnesses() {
        // p + p·p: witnesses {p} and {p} ∪ {p} = {p} — under Why the
        // self-join collapses, but p·r and p stay distinct witnesses.
        let v = p().add(&p().mul(&r()));
        assert_eq!(v.witnesses().len(), 2);
        assert_eq!(v.add(&v), v, "+ is idempotent");
    }

    #[test]
    fn minimal_witnesses_drop_supersets() {
        let v = p().add(&p().mul(&r()));
        let min = v.minimal_witnesses();
        assert_eq!(min.len(), 1);
        assert!(min.iter().next().unwrap().contains("p"));
    }

    #[test]
    fn supported_by_checks_witness_containment() {
        let v = p().mul(&r()).add(&Why::var("s"));
        let have: Witness = ["p".to_string(), "r".to_string()].into();
        assert!(v.supported_by(&have));
        let only_p: Witness = ["p".to_string()].into();
        assert!(!v.supported_by(&only_p));
        let s: Witness = ["s".to_string()].into();
        assert!(v.supported_by(&s));
    }

    #[test]
    fn display_shows_witness_sets() {
        assert_eq!(p().add(&r()).to_string(), "{{p}, {r}}");
        assert_eq!(p().mul(&r()).to_string(), "{{p,r}}");
        assert_eq!(Why::zero().to_string(), "{}");
        assert_eq!(Why::one().to_string(), "{{}}");
    }
}
