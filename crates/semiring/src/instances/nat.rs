//! The natural-numbers semiring: bag (multiset) semantics.

use crate::semiring::Semiring;

/// `(ℕ, +, ·, 0, 1)` — a tuple's annotation is its multiplicity.
///
/// Saturating arithmetic keeps the type total; provenance multiplicities
/// anywhere near `u64::MAX` are already meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nat(pub u64);

impl Semiring for Nat {
    fn zero() -> Self {
        Nat(0)
    }
    fn one() -> Self {
        Nat(1)
    }
    fn add(&self, other: &Self) -> Self {
        Nat(self.0.saturating_add(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Nat(self.0.saturating_mul(other.0))
    }
}

impl std::fmt::Display for Nat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_laws;

    #[test]
    fn nat_is_a_semiring() {
        check_laws(&[Nat(0), Nat(1), Nat(2), Nat(7)]);
    }

    #[test]
    fn saturation() {
        assert_eq!(Nat(u64::MAX).add(&Nat(1)), Nat(u64::MAX));
        assert_eq!(Nat(u64::MAX).mul(&Nat(2)), Nat(u64::MAX));
    }
}
