//! Probabilistic event tables (§4.1's "probabilistic event tables
//! \[30, 66\]") — tuples annotated with event expressions, and exact
//! probability computation for independent base events.
//!
//! The *event expression* of an output tuple is its [`crate::MinWhy`]
//! (positive-Boolean) annotation; this module computes the probability
//! that the expression holds when each base variable is an independent
//! event with a given marginal probability. Exact evaluation of a
//! monotone DNF probability is #P-hard in general, so we enumerate
//! assignments over the (typically small) support — an honest exact
//! algorithm with exponential worst case, which is all the provenance
//! experiments need.
//!
//! The [`Prob`] semiring itself is the Viterbi-style `([0,1], max, ·)`
//! structure: a *most-likely-derivation* score, useful as a cheap
//! upper-bound companion to the exact event probability.

use std::collections::BTreeSet;

use crate::instances::minwhy::MinWhy;
use crate::semiring::Semiring;

/// The Viterbi semiring `([0,1], max, ·, 0, 1)`: the probability of the
/// most likely single derivation.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Prob(pub f64);

impl Semiring for Prob {
    fn zero() -> Self {
        Prob(0.0)
    }
    fn one() -> Self {
        Prob(1.0)
    }
    fn add(&self, other: &Self) -> Self {
        Prob(self.0.max(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Prob(self.0 * other.0)
    }
}

impl std::fmt::Display for Prob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// Exact probability that the event expression `e` holds, when each
/// variable `v` is an independent event of probability `marginal(v)`.
///
/// Enumerates all `2^n` assignments over the expression's support; `n`
/// is capped at 24 variables to keep the exponential honest-but-bounded.
pub fn event_probability(e: &MinWhy, marginal: &impl Fn(&str) -> f64) -> f64 {
    let vars: Vec<&str> = e
        .witnesses()
        .iter()
        .flat_map(|w| w.iter().map(String::as_str))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    assert!(
        vars.len() <= 24,
        "event expression support too large for exact enumeration ({} vars)",
        vars.len()
    );
    if e.witnesses().is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for mask in 0u32..(1u32 << vars.len()) {
        let truth = |v: &str| {
            let i = vars.iter().position(|x| *x == v).expect("var in support");
            mask & (1 << i) != 0
        };
        if e.eval_assignment(&truth) {
            let mut p = 1.0;
            for (i, v) in vars.iter().enumerate() {
                let m = marginal(v);
                p *= if mask & (1 << i) != 0 { m } else { 1.0 - m };
            }
            total += p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_laws;

    #[test]
    fn viterbi_is_a_semiring() {
        check_laws(&[Prob(0.0), Prob(1.0), Prob(0.5), Prob(0.25)]);
    }

    #[test]
    fn single_event_probability_is_its_marginal() {
        let e = MinWhy::var("p");
        let p = event_probability(&e, &|_| 0.3);
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn disjunction_of_independent_events() {
        // P(p ∨ r) = 1 - (1-0.5)(1-0.5) = 0.75.
        let e = MinWhy::var("p").add(&MinWhy::var("r"));
        let p = event_probability(&e, &|_| 0.5);
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn conjunction_multiplies() {
        let e = MinWhy::var("p").mul(&MinWhy::var("r"));
        let p = event_probability(&e, &|_| 0.5);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absorption_does_not_change_probability() {
        // p ∨ (p ∧ r) has the same probability as p — and MinWhy already
        // normalizes them to the same element.
        let a = MinWhy::var("p");
        let b = MinWhy::var("p").add(&MinWhy::var("p").mul(&MinWhy::var("r")));
        assert_eq!(a, b);
        assert!((event_probability(&b, &|_| 0.4) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_and_one_probabilities() {
        assert_eq!(event_probability(&MinWhy::zero(), &|_| 0.9), 0.0);
        assert_eq!(event_probability(&MinWhy::one(), &|_| 0.9), 1.0);
    }

    #[test]
    fn viterbi_scores_best_derivation() {
        // max(0.3, 0.2·0.9) = 0.3.
        let a = Prob(0.3);
        let b = Prob(0.2).mul(&Prob(0.9));
        assert_eq!(a.add(&b), Prob(0.3));
    }
}
