//! Provenance polynomials ℕ\[X\]: the most general provenance semiring.
//!
//! Figure 4 of the paper annotates the source tuples of `R` with
//! "abstract quantities" `p`, `r`, `s` and derives polynomials such as
//! `p + (p·p)` for the output tuples. ℕ\[X\] is *universal*: any other
//! semiring's provenance is the image of the polynomial under the
//! valuation homomorphism (see [`crate::hom`]), so evaluating once in
//! ℕ\[X\] answers every (positive) provenance question afterwards.

use std::collections::BTreeMap;
use std::fmt;

use crate::semiring::Semiring;

/// A monomial: a product of variables with exponents, e.g. `p·p·r` is
/// `{p: 2, r: 1}`. The empty monomial is `1`.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Monomial(BTreeMap<String, u32>);

impl Monomial {
    /// The unit monomial (1).
    pub fn unit() -> Self {
        Monomial::default()
    }

    /// A single variable.
    pub fn var(name: impl Into<String>) -> Self {
        let mut m = BTreeMap::new();
        m.insert(name.into(), 1);
        Monomial(m)
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut m = self.0.clone();
        for (v, e) in &other.0 {
            *m.entry(v.clone()).or_insert(0) += e;
        }
        Monomial(m)
    }

    /// The variables of this monomial (its *support*).
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(String::as_str)
    }

    /// The exponent of a variable (0 if absent).
    pub fn exponent(&self, var: &str) -> u32 {
        self.0.get(var).copied().unwrap_or(0)
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        let mut first = true;
        for (v, e) in &self.0 {
            for _ in 0..*e {
                if !first {
                    write!(f, "·")?;
                }
                write!(f, "{v}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A provenance polynomial: a finite sum of monomials with natural
/// coefficients.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Polynomial(BTreeMap<Monomial, u64>);

impl Polynomial {
    /// A single variable, e.g. the tuple identifier `p` of Figure 4.
    pub fn var(name: impl Into<String>) -> Self {
        let mut m = BTreeMap::new();
        m.insert(Monomial::var(name), 1);
        Polynomial(m)
    }

    /// A constant polynomial.
    pub fn constant(n: u64) -> Self {
        if n == 0 {
            return Polynomial::default();
        }
        let mut m = BTreeMap::new();
        m.insert(Monomial::unit(), n);
        Polynomial(m)
    }

    /// The terms `(monomial, coefficient)` in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, u64)> {
        self.0.iter().map(|(m, c)| (m, *c))
    }

    /// Number of distinct monomials.
    pub fn num_terms(&self) -> usize {
        self.0.len()
    }

    /// All variables appearing in the polynomial.
    pub fn vars(&self) -> std::collections::BTreeSet<&str> {
        self.0.keys().flat_map(|m| m.vars()).collect()
    }

    /// Evaluates the polynomial in another semiring by mapping each
    /// variable through `valuation`. This is the universal-property
    /// homomorphism of ℕ\[X\] (Green et al.): variables go to `valuation`,
    /// `+`/`·`/constants go to the target's operations.
    pub fn eval_in<K: Semiring>(&self, valuation: &impl Fn(&str) -> K) -> K {
        let mut acc = K::zero();
        for (mono, coeff) in &self.0 {
            let mut term = K::one();
            for (v, e) in &mono.0 {
                let kv = valuation(v);
                for _ in 0..*e {
                    term = term.mul(&kv);
                }
            }
            // coeff-fold: term + term + … (coeff times).
            let mut with_coeff = K::zero();
            for _ in 0..*coeff {
                with_coeff = with_coeff.add(&term);
            }
            acc = acc.add(&with_coeff);
        }
        acc
    }

    fn insert_term(&mut self, m: Monomial, c: u64) {
        if c == 0 {
            return;
        }
        let e = self.0.entry(m).or_insert(0);
        *e = e.saturating_add(c);
    }
}

impl Semiring for Polynomial {
    fn zero() -> Self {
        Polynomial::default()
    }
    fn one() -> Self {
        Polynomial::constant(1)
    }
    fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (m, c) in &other.0 {
            out.insert_term(m.clone(), *c);
        }
        out
    }
    fn mul(&self, other: &Self) -> Self {
        let mut out = Polynomial::default();
        for (ma, ca) in &self.0 {
            for (mb, cb) in &other.0 {
                out.insert_term(ma.mul(mb), ca.saturating_mul(*cb));
            }
        }
        out
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "0");
        }
        // Sort by degree, then by the printed form, so `p + p·p` and
        // `r + r·r + r·s` print in the paper's order.
        let mut terms: Vec<(&Monomial, u64)> = self.terms().collect();
        terms.sort_by_key(|(m, _)| (m.degree(), m.to_string()));
        for (i, (m, c)) in terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c != 1 || m.0.is_empty() {
                write!(f, "{c}")?;
                if !m.0.is_empty() {
                    write!(f, "·")?;
                }
            }
            if !m.0.is_empty() {
                write!(f, "{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::nat::Nat;
    use crate::semiring::check_laws;

    fn p() -> Polynomial {
        Polynomial::var("p")
    }
    fn r() -> Polynomial {
        Polynomial::var("r")
    }

    #[test]
    fn polynomial_is_a_semiring() {
        check_laws(&[
            Polynomial::zero(),
            Polynomial::one(),
            p(),
            r(),
            p().add(&r()),
            p().mul(&p()),
            Polynomial::constant(2).mul(&p()),
        ]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(p().add(&p().mul(&p())).to_string(), "p + p·p");
        assert_eq!(p().mul(&r()).to_string(), "p·r");
        assert_eq!(p().add(&p()).to_string(), "2·p");
        assert_eq!(Polynomial::zero().to_string(), "0");
        assert_eq!(Polynomial::one().to_string(), "1");
    }

    #[test]
    fn eval_in_nat_is_polynomial_evaluation() {
        // (p + p·p) with p=3 → 3 + 9 = 12.
        let poly = p().add(&p().mul(&p()));
        let v = poly.eval_in(&|name: &str| if name == "p" { Nat(3) } else { Nat(0) });
        assert_eq!(v, Nat(12));
    }

    #[test]
    fn eval_in_is_a_homomorphism_on_samples() {
        let a = p().add(&r());
        let b = p().mul(&r()).add(&Polynomial::constant(2));
        let val = |name: &str| Nat(if name == "p" { 2 } else { 5 });
        assert_eq!(
            a.add(&b).eval_in(&val),
            a.eval_in(&val).add(&b.eval_in(&val))
        );
        assert_eq!(
            a.mul(&b).eval_in(&val),
            a.eval_in(&val).mul(&b.eval_in(&val))
        );
    }

    #[test]
    fn vars_and_degree() {
        let poly = p().mul(&p()).mul(&r());
        let vars = poly.vars();
        assert!(vars.contains("p") && vars.contains("r"));
        let (m, c) = poly.terms().next().unwrap();
        assert_eq!(c, 1);
        assert_eq!(m.degree(), 3);
        assert_eq!(m.exponent("p"), 2);
    }
}
