//! Minimal why-provenance: the semiring `Irr(P(P(X)))`.
//!
//! §4.1: "minimal why-provenance can be modeled using the semiring of
//! irreducible elements of P(P(X)) … that consists of those elements S
//! such that for every s, s′ ∈ S, if s ⊆ s′ then s = s′. This again
//! forms a semiring since it is the homomorphic image of the minimization
//! operation min(S). Specifically, in Irr(P(P(X))) we define S + T as
//! min(S ∪ T) and S · T as min{s ∪ t | s ∈ S, t ∈ T}."
//!
//! Elements are *antichains* of witnesses. The structure is isomorphic to
//! positive Boolean expressions in minimal DNF, which is why this type
//! doubles as the `PosBool(X)` semiring used for conditional tables
//! ([`crate::ctable`]): [`MinWhy::eval_assignment`] evaluates the
//! corresponding monotone formula.

use std::collections::BTreeSet;
use std::fmt;

use crate::instances::why::{Why, Witness};
use crate::semiring::Semiring;

/// Minimal why-provenance: an antichain of witnesses. Also serves as the
/// positive-Boolean-expression semiring `PosBool(X)` in minimal DNF.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MinWhy(BTreeSet<Witness>);

/// The antichain of ⊆-minimal elements of a witness set — the paper's
/// `min(S)`.
pub fn minimize(s: &BTreeSet<Witness>) -> BTreeSet<Witness> {
    s.iter()
        .filter(|w| !s.iter().any(|o| *o != **w && o.is_subset(w)))
        .cloned()
        .collect()
}

impl MinWhy {
    /// The provenance of a base tuple: one singleton witness.
    pub fn var(name: impl Into<String>) -> Self {
        MinWhy([[name.into()].into_iter().collect()].into_iter().collect())
    }

    /// Builds from witnesses, minimizing.
    pub fn from_witnesses(ws: impl IntoIterator<Item = Witness>) -> Self {
        MinWhy(minimize(&ws.into_iter().collect()))
    }

    /// The minimal witnesses (always an antichain).
    pub fn witnesses(&self) -> &BTreeSet<Witness> {
        &self.0
    }

    /// Evaluates the corresponding positive Boolean formula (DNF over the
    /// witness variables) under a truth assignment: true iff some witness
    /// has all its variables true. This is the C-table/possible-worlds
    /// reading.
    pub fn eval_assignment(&self, truth: &impl Fn(&str) -> bool) -> bool {
        self.0.iter().any(|w| w.iter().all(|v| truth(v)))
    }
}

impl From<&Why> for MinWhy {
    /// The homomorphism `min : P(P(X)) → Irr(P(P(X)))`.
    fn from(w: &Why) -> Self {
        MinWhy(minimize(w.witnesses()))
    }
}

impl Semiring for MinWhy {
    fn zero() -> Self {
        MinWhy(BTreeSet::new())
    }
    fn one() -> Self {
        MinWhy([Witness::new()].into_iter().collect())
    }
    fn add(&self, other: &Self) -> Self {
        MinWhy(minimize(&self.0.union(&other.0).cloned().collect()))
    }
    fn mul(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        MinWhy(minimize(&out))
    }
}

impl fmt::Display for MinWhy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "false");
        }
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if w.is_empty() {
                write!(f, "true")?;
            } else {
                for (j, x) in w.iter().enumerate() {
                    if j > 0 {
                        write!(f, "∧")?;
                    }
                    write!(f, "{x}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_laws;

    fn p() -> MinWhy {
        MinWhy::var("p")
    }
    fn r() -> MinWhy {
        MinWhy::var("r")
    }

    #[test]
    fn minwhy_is_a_semiring() {
        check_laws(&[
            MinWhy::zero(),
            MinWhy::one(),
            p(),
            r(),
            p().add(&r()),
            p().mul(&r()),
        ]);
    }

    #[test]
    fn absorption_p_plus_p_times_r_is_p() {
        // The law Why lacks and MinWhy has: a + a·b = a.
        assert_eq!(p().add(&p().mul(&r())), p());
    }

    #[test]
    fn one_absorbs_everything_additively() {
        assert_eq!(MinWhy::one().add(&p()), MinWhy::one());
    }

    #[test]
    fn minimization_is_a_homomorphism_from_why() {
        let a = Why::var("p").add(&Why::var("p").mul(&Why::var("r")));
        let b = Why::var("r").add(&Why::var("s"));
        // min(a + b) = min(a) + min(b), min(a·b) = min(a)·min(b).
        assert_eq!(
            MinWhy::from(&a.add(&b)),
            MinWhy::from(&a).add(&MinWhy::from(&b))
        );
        assert_eq!(
            MinWhy::from(&a.mul(&b)),
            MinWhy::from(&a).mul(&MinWhy::from(&b))
        );
    }

    #[test]
    fn eval_assignment_reads_it_as_posbool() {
        let e = p().mul(&r()).add(&MinWhy::var("s")); // p∧r ∨ s
        assert!(e.eval_assignment(&|v| v == "s"));
        assert!(e.eval_assignment(&|v| v == "p" || v == "r"));
        assert!(!e.eval_assignment(&|v| v == "p"));
        assert!(!MinWhy::zero().eval_assignment(&|_| true));
        assert!(MinWhy::one().eval_assignment(&|_| false));
    }

    #[test]
    fn display_is_dnf() {
        assert_eq!(p().mul(&r()).add(&MinWhy::var("s")).to_string(), "p∧r ∨ s");
        assert_eq!(MinWhy::zero().to_string(), "false");
        assert_eq!(MinWhy::one().to_string(), "true");
    }
}
