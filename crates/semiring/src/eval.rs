//! Positive relational algebra over K-relations.
//!
//! The Green–Karvounarakis–Tannen semantics: selection multiplies by 0/1,
//! projection and union *sum* the annotations of merged tuples, join and
//! product *multiply* the annotations of combined tuples. Difference is
//! rejected — the provenance semantics of §4.1 is for the positive
//! algebra (the paper notes that update/difference provenance "would need
//! some weaker structure than a semiring").

use cdb_relalg::exec::{extract_keys, join_matches, recognize_equi_join, ExecConfig};
use cdb_relalg::expr::{ProjSource, RaExpr};
use cdb_relalg::{RelalgError, Schema, Tuple};

use crate::krel::{KDatabase, KRelation};
use crate::semiring::Semiring;

/// Evaluates a positive RA expression over a K-database with the naive
/// nested-loop interpreter (the reference semantics).
pub fn eval_k<K: Semiring>(db: &KDatabase<K>, expr: &RaExpr) -> Result<KRelation<K>, RelalgError> {
    check_positive(expr)?;
    eval_inner(db, expr, None)
}

/// Evaluates a positive RA expression over a K-database with the
/// physical engine of [`cdb_relalg::exec`]: natural joins and
/// recognized equi-joins run as (optionally parallel) hash joins.
///
/// The kernel's probe partitions concatenate in probe order and the
/// matched rows are inserted into the output K-relation, where
/// duplicate tuples merge by the semiring's `+` — so partition results
/// combine exactly as [`KRelation::insert`] defines, and the result is
/// identical to [`eval_k`] for any partition count.
pub fn eval_k_with<K: Semiring>(
    db: &KDatabase<K>,
    expr: &RaExpr,
    cfg: &ExecConfig,
) -> Result<KRelation<K>, RelalgError> {
    check_positive(expr)?;
    eval_inner(db, expr, Some(cfg))
}

fn check_positive(expr: &RaExpr) -> Result<(), RelalgError> {
    if expr.is_positive() {
        Ok(())
    } else {
        Err(positivity_error())
    }
}

/// The error every K-evaluator raises on difference (shared with
/// [`crate::planned`] so planned and naive engines fail identically).
pub(crate) fn positivity_error() -> RelalgError {
    RelalgError::UpdateError(
        "K-relation semantics is defined for positive relational algebra only \
         (difference has no semiring interpretation)"
            .to_owned(),
    )
}

fn eval_inner<K: Semiring>(
    db: &KDatabase<K>,
    expr: &RaExpr,
    cfg: Option<&ExecConfig>,
) -> Result<KRelation<K>, RelalgError> {
    let hash = cfg.filter(|c| c.hash_join);
    match expr {
        RaExpr::Scan(name) => Ok(db.get(name)?.clone()),
        RaExpr::ScanAs(name, alias) => {
            let base = db.get(name)?;
            let schema = base.schema().qualified(alias);
            Ok(base.clone().with_schema(schema))
        }
        RaExpr::Select(e, pred) => {
            // Physical path: recognize σ[a.x = b.y ∧ …](A × B) and run
            // it as a hash join, multiplying matched annotations.
            if let (Some(cfg), RaExpr::Product(a, b)) = (hash, e.as_ref()) {
                let left = eval_inner(db, a, Some(cfg))?;
                let right = eval_inner(db, b, Some(cfg))?;
                let schema = Schema::new(
                    left.schema()
                        .attrs()
                        .iter()
                        .chain(right.schema().attrs())
                        .cloned(),
                )?;
                if let Some(ej) = recognize_equi_join(&schema, left.schema().arity(), pred) {
                    let lrows: Vec<(&Tuple, &K)> = left.iter().collect();
                    let rrows: Vec<(&Tuple, &K)> = right.iter().collect();
                    let rcols: Vec<usize> = ej.keys.iter().map(|&(_, r)| r).collect();
                    let lcols: Vec<usize> = ej.keys.iter().map(|&(l, _)| l).collect();
                    let build = extract_keys(rrows.iter().map(|&(t, _)| t), &rcols);
                    let probe = extract_keys(lrows.iter().map(|&(t, _)| t), &lcols);
                    let m = join_matches(&build, &probe, cfg);
                    let mut out = KRelation::empty(schema);
                    for &(li, ri) in &m.pairs {
                        let (lt, lk) = lrows[li];
                        let (rt, rk) = rrows[ri];
                        let mut row = lt.clone();
                        row.extend(rt.iter().cloned());
                        if pred.eval(out.schema(), &row)? {
                            out.insert(row, lk.mul(rk))?;
                        }
                    }
                    return Ok(out);
                }
                // Not an equi-join: product the already-evaluated sides,
                // then filter.
                let mut prod = KRelation::empty(schema);
                for (lt, lk) in left.iter() {
                    for (rt, rk) in right.iter() {
                        let mut row = lt.clone();
                        row.extend(rt.iter().cloned());
                        prod.insert(row, lk.mul(rk))?;
                    }
                }
                let mut out = KRelation::empty(prod.schema().clone());
                for (t, k) in prod.iter() {
                    if pred.eval(prod.schema(), t)? {
                        out.insert(t.clone(), k.clone())?;
                    }
                }
                return Ok(out);
            }
            let input = eval_inner(db, e, cfg)?;
            let mut out = KRelation::empty(input.schema().clone());
            for (t, k) in input.iter() {
                if pred.eval(input.schema(), t)? {
                    out.insert(t.clone(), k.clone())?;
                }
            }
            Ok(out)
        }
        RaExpr::Project(e, items) => {
            let input = eval_inner(db, e, cfg)?;
            let schema = Schema::new(items.iter().map(|i| i.name.clone()))?;
            let mut out = KRelation::empty(schema);
            for (t, k) in input.iter() {
                let mut row: Tuple = Vec::with_capacity(items.len());
                for item in items {
                    match &item.source {
                        ProjSource::Col(c) => row.push(t[input.schema().resolve(c)?].clone()),
                        ProjSource::Const(a) => row.push(a.clone()),
                    }
                }
                out.insert(row, k.clone())?; // merged tuples sum
            }
            Ok(out)
        }
        RaExpr::Product(a, b) => {
            let left = eval_inner(db, a, cfg)?;
            let right = eval_inner(db, b, cfg)?;
            let schema = Schema::new(
                left.schema()
                    .attrs()
                    .iter()
                    .chain(right.schema().attrs())
                    .cloned(),
            )?;
            let mut out = KRelation::empty(schema);
            for (lt, lk) in left.iter() {
                for (rt, rk) in right.iter() {
                    let mut row = lt.clone();
                    row.extend(rt.iter().cloned());
                    out.insert(row, lk.mul(rk))?;
                }
            }
            Ok(out)
        }
        RaExpr::NaturalJoin(a, b) => {
            let left = eval_inner(db, a, cfg)?;
            let right = eval_inner(db, b, cfg)?;
            let shared = cdb_relalg::eval::shared_attrs(left.schema(), right.schema());
            let right_kept: Vec<usize> = (0..right.schema().arity())
                .filter(|j| !shared.iter().any(|(_, sj)| sj == j))
                .collect();
            let attrs: Vec<String> = left
                .schema()
                .attrs()
                .iter()
                .cloned()
                .chain(
                    right_kept
                        .iter()
                        .map(|&j| right.schema().attrs()[j].clone()),
                )
                .collect();
            let mut out = KRelation::empty(Schema::new(attrs)?);
            if let (Some(cfg), false) = (hash, shared.is_empty()) {
                let lrows: Vec<(&Tuple, &K)> = left.iter().collect();
                let rrows: Vec<(&Tuple, &K)> = right.iter().collect();
                let lcols: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
                let rcols: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
                let build = extract_keys(rrows.iter().map(|&(t, _)| t), &rcols);
                let probe = extract_keys(lrows.iter().map(|&(t, _)| t), &lcols);
                let m = join_matches(&build, &probe, cfg);
                for &(li, ri) in &m.pairs {
                    let (lt, lk) = lrows[li];
                    let (rt, rk) = rrows[ri];
                    let mut row = lt.clone();
                    row.extend(right_kept.iter().map(|&j| rt[j].clone()));
                    out.insert(row, lk.mul(rk))?;
                }
                return Ok(out);
            }
            for (lt, lk) in left.iter() {
                for (rt, rk) in right.iter() {
                    if shared.iter().all(|&(i, j)| lt[i] == rt[j]) {
                        let mut row = lt.clone();
                        row.extend(right_kept.iter().map(|&j| rt[j].clone()));
                        out.insert(row, lk.mul(rk))?;
                    }
                }
            }
            Ok(out)
        }
        RaExpr::Union(a, b) => {
            let left = eval_inner(db, a, cfg)?;
            let right = eval_inner(db, b, cfg)?;
            if !left.schema().union_compatible(right.schema()) {
                return Err(RelalgError::SchemaMismatch {
                    left: left.schema().attrs().to_vec(),
                    right: right.schema().attrs().to_vec(),
                });
            }
            let mut out = left;
            for (t, k) in right.iter() {
                out.insert(t.clone(), k.clone())?;
            }
            Ok(out)
        }
        RaExpr::Rename(e, pairs) => {
            let input = eval_inner(db, e, cfg)?;
            let mut attrs: Vec<String> = input.schema().attrs().to_vec();
            for (old, new) in pairs {
                let i = input.schema().resolve(old)?;
                attrs[i] = new.clone();
            }
            Ok(input.with_schema(Schema::new(attrs)?))
        }
        RaExpr::Diff(_, _) => unreachable!("rejected by positivity check"),
    }
}

/// Builds the Figure 4 query of the paper as a positive RA expression:
///
/// ```text
/// V = π_{X,Z}(R)  ∪  π_{r1.X, r2.Z}( σ_{r1.Y = r2.Y OR r1.Z = r2.Z}( R × R ) )
/// ```
///
/// (the copy rule plus the disjunctive self-join of Green et al.'s
/// running example, which the paper's figure abbreviates to Datalog).
pub fn figure4_query() -> RaExpr {
    use cdb_relalg::{CmpOp, Operand, Pred, ProjItem};
    let copy = RaExpr::scan("R").project(vec![ProjItem::col("X", "X"), ProjItem::col("Z", "Z")]);
    let self_join = RaExpr::ScanAs("R".into(), "r1".into())
        .product(RaExpr::ScanAs("R".into(), "r2".into()))
        .select(Pred::Or(
            Box::new(Pred::cmp(
                Operand::col("r1.Y"),
                CmpOp::Eq,
                Operand::col("r2.Y"),
            )),
            Box::new(Pred::cmp(
                Operand::col("r1.Z"),
                CmpOp::Eq,
                Operand::col("r2.Z"),
            )),
        ))
        .project(vec![ProjItem::col("r1.X", "X"), ProjItem::col("r2.Z", "Z")]);
    copy.union(self_join)
}

/// The Figure 4 source instance with its `p, r, s` tuple identifiers,
/// annotated in semiring `K` via `var`.
pub fn figure4_database<K: Semiring>(var: impl Fn(&str) -> K) -> KDatabase<K> {
    use cdb_model::Atom;
    let s = |x: &str| Atom::Str(x.into());
    let schema = Schema::new(["X", "Y", "Z"]).unwrap();
    let rel = KRelation::from_pairs(
        schema,
        [
            (vec![s("a"), s("b"), s("c")], var("p")),
            (vec![s("d"), s("b"), s("e")], var("r")),
            (vec![s("f"), s("g"), s("e")], var("s")),
        ],
    )
    .unwrap();
    KDatabase::new().with("R", rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::nat::Nat;
    use crate::instances::polynomial::Polynomial;
    use crate::instances::why::Why;
    use crate::instances::Bool;
    use cdb_model::Atom;
    use cdb_relalg::{Pred, ProjItem};

    fn s(x: &str) -> Atom {
        Atom::Str(x.into())
    }

    #[test]
    fn figure4_polynomials_match_the_paper() {
        let db = figure4_database(|v| Polynomial::var(v));
        let v = eval_k(&db, &figure4_query()).unwrap();
        let poly = |x: &str, z: &str| v.annotation(&vec![s(x), s(z)]).to_string();
        // The five output tuples and their printed polynomials, exactly
        // as in Figure 4.
        assert_eq!(poly("a", "c"), "p + p·p");
        assert_eq!(poly("a", "e"), "p·r");
        assert_eq!(poly("d", "c"), "p·r"); // the paper writes r·p; · commutes
        assert_eq!(poly("d", "e"), "r + r·r + r·s");
        assert_eq!(poly("f", "e"), "s + r·s + s·s"); // paper: s + s·s + s·r
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn figure4_under_bag_semantics() {
        // ℕ-instantiation with p = r = s = 1 gives derivation counts.
        let db = figure4_database(|_| Nat(1));
        let v = eval_k(&db, &figure4_query()).unwrap();
        assert_eq!(v.annotation(&vec![s("a"), s("c")]), Nat(2));
        assert_eq!(v.annotation(&vec![s("d"), s("e")]), Nat(3));
        assert_eq!(v.annotation(&vec![s("f"), s("e")]), Nat(3));
        assert_eq!(v.annotation(&vec![s("a"), s("e")]), Nat(1));
    }

    #[test]
    fn figure4_under_why_provenance() {
        let db = figure4_database(|v| Why::var(v));
        let v = eval_k(&db, &figure4_query()).unwrap();
        // (d,e): witnesses {r} (copy), {r} (self-join collapses), {r,s}.
        let de = v.annotation(&vec![s("d"), s("e")]);
        assert_eq!(de.witnesses().len(), 2);
        assert_eq!(de.to_string(), "{{r}, {r,s}}");
        // Minimal witnesses drop {r,s}.
        assert_eq!(de.minimal_witnesses().len(), 1);
    }

    #[test]
    fn boolean_instantiation_is_set_semantics() {
        let db = figure4_database(|_| Bool(true));
        let v = eval_k(&db, &figure4_query()).unwrap();
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|(_, k)| *k == Bool(true)));
    }

    #[test]
    fn difference_is_rejected() {
        let db = figure4_database(|_| Bool(true));
        let q = RaExpr::scan("R").diff(RaExpr::scan("R"));
        assert!(eval_k(&db, &q).is_err());
    }

    #[test]
    fn projection_sums_annotations() {
        // π_B over two tuples sharing B merges with +: Figure 2's
        // observation that the output "contains two tuples that differ
        // only on their annotation … equivalent to one tuple annotated
        // with a set of colors".
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = KRelation::from_pairs(
            schema,
            [
                (vec![Atom::Int(10), Atom::Int(50)], Polynomial::var("b2")),
                (vec![Atom::Int(12), Atom::Int(50)], Polynomial::var("b4")),
            ],
        )
        .unwrap();
        let db = KDatabase::new().with("R", r);
        let q = RaExpr::scan("R").project(vec![ProjItem::col("B", "B")]);
        let v = eval_k(&db, &q).unwrap();
        assert_eq!(v.annotation(&vec![Atom::Int(50)]).to_string(), "b2 + b4");
    }

    #[test]
    fn selection_keeps_annotations() {
        let db = figure4_database(|v| Polynomial::var(v));
        let q = RaExpr::scan("R").select(Pred::col_eq_const("X", s("a")));
        let v = eval_k(&db, &q).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v.annotation(&vec![s("a"), s("b"), s("c")]).to_string(), "p");
    }

    #[test]
    fn hash_engine_matches_naive_on_figure4() {
        // The Figure 4 query contains a disjunctive self-join (falls
        // back to product) — add an equi-join on top so both physical
        // paths run.
        let db = figure4_database(|v| Polynomial::var(v));
        let q = figure4_query().natural_join(RaExpr::ScanAs("R".into(), "R".into()));
        let naive = eval_k(&db, &q).unwrap();
        for cfg in [ExecConfig::default(), ExecConfig::sequential(), {
            let mut c = ExecConfig::with_partitions(8);
            c.parallel_threshold = 1;
            c
        }] {
            assert_eq!(eval_k_with(&db, &q, &cfg).unwrap(), naive);
        }
    }

    #[test]
    fn hash_engine_recognizes_select_product() {
        let db = figure4_database(|v| Polynomial::var(v));
        let q = RaExpr::ScanAs("R".into(), "r1".into())
            .product(RaExpr::ScanAs("R".into(), "r2".into()))
            .select(Pred::col_eq_col("r1.Y", "r2.Y"));
        let naive = eval_k(&db, &q).unwrap();
        let hashed = eval_k_with(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(naive, hashed);
        assert_eq!(
            hashed
                .annotation(&vec![s("a"), s("b"), s("c"), s("a"), s("b"), s("c")])
                .to_string(),
            "p·p"
        );
    }

    #[test]
    fn natural_join_multiplies() {
        let ab = Schema::new(["A", "B"]).unwrap();
        let bc = Schema::new(["B", "C"]).unwrap();
        let r = KRelation::from_pairs(
            ab,
            [(vec![Atom::Int(1), Atom::Int(2)], Polynomial::var("x"))],
        )
        .unwrap();
        let t = KRelation::from_pairs(
            bc,
            [(vec![Atom::Int(2), Atom::Int(3)], Polynomial::var("y"))],
        )
        .unwrap();
        let db = KDatabase::new().with("R", r).with("T", t);
        let q = RaExpr::scan("R").natural_join(RaExpr::scan("T"));
        let v = eval_k(&db, &q).unwrap();
        assert_eq!(
            v.annotation(&vec![Atom::Int(1), Atom::Int(2), Atom::Int(3)])
                .to_string(),
            "x·y"
        );
    }
}
