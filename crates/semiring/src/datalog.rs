//! Semiring-annotated Datalog evaluation.
//!
//! Interprets the derivations computed by `cdb-relalg::conjunctive`
//! in a semiring: each derivation contributes the *product* of the
//! annotations of the base tuples it uses, and alternative derivations
//! are *summed*.
//!
//! For recursive programs the least fixpoint is computed by iteration,
//! which converges for ω-continuous semirings with ascending-chain
//! stabilization (all the idempotent instances here: Bool, Lineage, Why,
//! MinWhy, Tropical over a finite cost set). For non-idempotent semirings
//! (ℕ, ℕ\[X\]) a recursive program may not stabilize — iteration is
//! capped and an error returned, which is faithful: the paper's framework
//! treats recursion via formal power series, out of scope here.

use std::collections::BTreeMap;

use cdb_relalg::conjunctive::{body_matches, Rule, Term};
use cdb_relalg::{Database, RelalgError, Relation, Schema, Tuple};

use crate::krel::{KDatabase, KRelation};
use crate::semiring::Semiring;

/// Maximum fixpoint iterations before concluding divergence. Idempotent
/// semirings stabilize within |derived tuples| rounds; non-idempotent
/// ones on cyclic data never do (and their annotations grow each round),
/// so the cap is kept small.
const MAX_ROUNDS: usize = 256;

/// Evaluates a Datalog program over a K-database, returning the annotated
/// head relations.
pub fn eval_datalog<K: Semiring>(
    db: &KDatabase<K>,
    rules: &[Rule],
) -> Result<KDatabase<K>, RelalgError> {
    // Current annotation map for every tuple (base ∪ derived).
    let mut ann: BTreeMap<(String, Tuple), K> = BTreeMap::new();
    let mut plain = Database::new();
    for (name, krel) in db.iter() {
        let mut rel = Relation::empty(krel.schema().clone());
        for (t, k) in krel.iter() {
            ann.insert((name.to_owned(), t.clone()), k.clone());
            rel.insert(t.clone())?;
        }
        plain.insert(name.to_owned(), rel);
    }
    let mut head_schemas: BTreeMap<String, Schema> = BTreeMap::new();
    for rule in rules {
        head_schemas.entry(rule.head.clone()).or_insert(Schema::new(
            (0..rule.head_terms.len()).map(|i| format!("c{i}")),
        )?);
        if plain.get(&rule.head).is_err() {
            plain.insert(
                rule.head.clone(),
                Relation::empty(head_schemas[&rule.head].clone()),
            );
        }
    }

    for round in 0.. {
        if round >= MAX_ROUNDS {
            return Err(RelalgError::UpdateError(
                "semiring Datalog fixpoint did not stabilize (non-idempotent \
                 semiring with recursion?)"
                    .to_owned(),
            ));
        }
        // Recompute every head tuple's annotation from the current state.
        let mut next: BTreeMap<(String, Tuple), K> = BTreeMap::new();
        for rule in rules {
            for (subst, uses) in body_matches(&plain, &rule.body)? {
                let head_tuple: Tuple = rule
                    .head_terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => subst[v].clone(),
                        Term::Const(a) => a.clone(),
                        Term::Wildcard => unreachable!(),
                    })
                    .collect();
                let contribution = K::product(uses.iter().map(|(rel, t)| {
                    ann.get(&(rel.clone(), t.clone()))
                        .cloned()
                        .unwrap_or_else(K::zero)
                }));
                let key = (rule.head.clone(), head_tuple);
                let merged = match next.get(&key) {
                    Some(old) => old.add(&contribution),
                    None => contribution,
                };
                next.insert(key, merged);
            }
        }
        // Merge derived annotations into the state; detect stabilization.
        let mut changed = false;
        for ((rel, tuple), k) in next {
            if k.is_zero() {
                continue;
            }
            let key = (rel.clone(), tuple.clone());
            let is_new = match ann.get(&key) {
                Some(old) => *old != k,
                None => true,
            };
            if is_new {
                ann.insert(key, k);
                changed = true;
                let r = plain.get_mut(&rel)?;
                if !r.contains(&tuple) {
                    r.insert(tuple)?;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = KDatabase::new();
    for (head, schema) in head_schemas {
        let mut krel = KRelation::empty(schema);
        for ((rel, tuple), k) in &ann {
            if *rel == head && !k.is_zero() {
                krel.insert(tuple.clone(), k.clone())?;
            }
        }
        out.insert(head, krel);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::lineage::Lineage;
    use crate::instances::polynomial::Polynomial;
    use crate::instances::tropical::Tropical;
    use crate::instances::why::Why;
    use cdb_model::Atom;
    use cdb_relalg::conjunctive::AtomPattern;

    fn s(x: &str) -> Atom {
        Atom::Str(x.into())
    }

    fn edge_db<K: Semiring>(var: impl Fn(&str) -> K) -> KDatabase<K> {
        let schema = Schema::new(["F", "T"]).unwrap();
        let rel = KRelation::from_pairs(
            schema,
            [
                (vec![s("a"), s("b")], var("e1")),
                (vec![s("b"), s("c")], var("e2")),
                (vec![s("a"), s("c")], var("e3")),
            ],
        )
        .unwrap();
        KDatabase::new().with("edge", rel)
    }

    fn tc_rules() -> Vec<Rule> {
        vec![
            Rule::new(
                "tc",
                vec![Term::var("X"), Term::var("Y")],
                vec![AtomPattern::new(
                    "edge",
                    vec![Term::var("X"), Term::var("Y")],
                )],
            )
            .unwrap(),
            Rule::new(
                "tc",
                vec![Term::var("X"), Term::var("Z")],
                vec![
                    AtomPattern::new("edge", vec![Term::var("X"), Term::var("Y")]),
                    AtomPattern::new("tc", vec![Term::var("Y"), Term::var("Z")]),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn nonrecursive_rule_in_polynomials() {
        let db = edge_db(|v| Polynomial::var(v));
        let rule = Rule::new(
            "two_hop",
            vec![Term::var("X"), Term::var("Z")],
            vec![
                AtomPattern::new("edge", vec![Term::var("X"), Term::var("Y")]),
                AtomPattern::new("edge", vec![Term::var("Y"), Term::var("Z")]),
            ],
        )
        .unwrap();
        let out = eval_datalog(&db, &[rule]).unwrap();
        let v = out.get("two_hop").unwrap();
        assert_eq!(v.annotation(&vec![s("a"), s("c")]).to_string(), "e1·e2");
    }

    #[test]
    fn recursive_lineage_reaches_fixpoint() {
        let db = edge_db(|v| Lineage::var(v));
        let out = eval_datalog(&db, &tc_rules()).unwrap();
        let tc = out.get("tc").unwrap();
        // a→c is derivable directly (e3) and via b (e1,e2): lineage
        // flattens everything involved.
        let ac = tc.annotation(&vec![s("a"), s("c")]);
        assert_eq!(ac.to_string(), "{e1,e2,e3}");
    }

    #[test]
    fn recursive_why_keeps_alternatives_apart() {
        let db = edge_db(|v| Why::var(v));
        let out = eval_datalog(&db, &tc_rules()).unwrap();
        let ac = out.get("tc").unwrap().annotation(&vec![s("a"), s("c")]);
        assert_eq!(ac.to_string(), "{{e1,e2}, {e3}}");
    }

    #[test]
    fn recursive_tropical_finds_cheapest_path() {
        // Costs: e1 = 1, e2 = 1, e3 = 5 — the two-hop path is cheaper.
        let db = edge_db(|v| {
            Tropical::Cost(match v {
                "e3" => 5,
                _ => 1,
            })
        });
        let out = eval_datalog(&db, &tc_rules()).unwrap();
        let ac = out.get("tc").unwrap().annotation(&vec![s("a"), s("c")]);
        assert_eq!(ac, Tropical::Cost(2));
    }

    #[test]
    fn recursion_with_nonidempotent_semiring_errors_on_cycles() {
        // A cyclic graph under ℕ[X] has no finite fixpoint.
        let schema = Schema::new(["F", "T"]).unwrap();
        let rel = KRelation::from_pairs(
            schema,
            [
                (vec![s("a"), s("b")], Polynomial::var("x")),
                (vec![s("b"), s("a")], Polynomial::var("y")),
            ],
        )
        .unwrap();
        let db = KDatabase::new().with("edge", rel);
        assert!(eval_datalog(&db, &tc_rules()).is_err());
    }

    #[test]
    fn acyclic_polynomials_terminate_even_with_recursion_rules() {
        let db = edge_db(|v| Polynomial::var(v));
        let out = eval_datalog(&db, &tc_rules()).unwrap();
        let ac = out.get("tc").unwrap().annotation(&vec![s("a"), s("c")]);
        assert_eq!(ac.to_string(), "e3 + e1·e2");
    }
}
