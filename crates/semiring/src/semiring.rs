//! The commutative-semiring trait and law-checking helpers.

use std::fmt::Debug;

/// A commutative semiring `(K, +, ·, 0, 1)`.
///
/// Laws (checked for every instance by the shared test harness
/// [`check_laws`] and by property tests):
///
/// * `(K, +, 0)` is a commutative monoid,
/// * `(K, ·, 1)` is a commutative monoid,
/// * `·` distributes over `+`,
/// * `0 · a = 0` (the multiplicative annihilator — the law the paper
///   points out is *violated* by the naive `P(X)` with `0 = 1 = ∅`,
///   which is why [`crate::Lineage`] adjoins ⊥).
pub trait Semiring: Clone + PartialEq + Debug {
    /// The additive identity. Tuples annotated `0` are absent.
    fn zero() -> Self;
    /// The multiplicative identity: the annotation of "present, with no
    /// further qualification".
    fn one() -> Self;
    /// Alternative use / merging: union and projection.
    fn add(&self, other: &Self) -> Self;
    /// Joint use: join and product.
    fn mul(&self, other: &Self) -> Self;

    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Sums an iterator of elements.
    fn sum(items: impl IntoIterator<Item = Self>) -> Self {
        items.into_iter().fold(Self::zero(), |acc, x| acc.add(&x))
    }

    /// Multiplies an iterator of elements.
    fn product(items: impl IntoIterator<Item = Self>) -> Self {
        items.into_iter().fold(Self::one(), |acc, x| acc.mul(&x))
    }
}

/// Checks all commutative-semiring laws on the given sample elements,
/// panicking with a description of the first violated law. Test-support
/// code, exposed so every instance module (and the proptest suites) can
/// reuse it.
pub fn check_laws<K: Semiring>(samples: &[K]) {
    let zero = K::zero();
    let one = K::one();
    for a in samples {
        assert_eq!(a.add(&zero), *a, "0 is not a + identity for {a:?}");
        assert_eq!(a.mul(&one), *a, "1 is not a · identity for {a:?}");
        assert_eq!(
            a.mul(&zero),
            zero,
            "annihilator law 0·a = 0 fails for {a:?}"
        );
        for b in samples {
            assert_eq!(a.add(b), b.add(a), "+ not commutative on {a:?}, {b:?}");
            assert_eq!(a.mul(b), b.mul(a), "· not commutative on {a:?}, {b:?}");
            for c in samples {
                assert_eq!(
                    a.add(&b.add(c)),
                    a.add(b).add(c),
                    "+ not associative on {a:?}, {b:?}, {c:?}"
                );
                assert_eq!(
                    a.mul(&b.mul(c)),
                    a.mul(b).mul(c),
                    "· not associative on {a:?}, {b:?}, {c:?}"
                );
                assert_eq!(
                    a.mul(&b.add(c)),
                    a.mul(b).add(&a.mul(c)),
                    "· does not distribute over + on {a:?}, {b:?}, {c:?}"
                );
            }
        }
    }
}

/// A semiring homomorphism `h : K → L`: preserves 0, 1, + and ·.
///
/// The fundamental property of the semiring framework (Green et al.) is
/// that positive relational algebra commutes with homomorphisms; the
/// property tests in `hom` exercise it for the specialization chain.
pub trait SemiringHom<K: Semiring, L: Semiring> {
    /// Applies the homomorphism.
    fn apply(&self, k: &K) -> L;
}

impl<K: Semiring, L: Semiring, F: Fn(&K) -> L> SemiringHom<K, L> for F {
    fn apply(&self, k: &K) -> L {
        self(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Bool;

    #[test]
    fn sum_and_product_fold_correctly() {
        let xs = [Bool(true), Bool(false), Bool(true)];
        assert_eq!(Bool::sum(xs), Bool(true));
        assert_eq!(Bool::product(xs), Bool(false));
        assert_eq!(Bool::sum(std::iter::empty::<Bool>()), Bool::zero());
        assert_eq!(Bool::product(std::iter::empty::<Bool>()), Bool::one());
    }

    /// The paper's §4.1 counterexample: `(P(X), ∪, ∪, ∅, ∅)` violates the
    /// annihilator law. We reproduce it with a deliberately-broken type
    /// to show `check_laws` catches it.
    #[test]
    #[should_panic(expected = "annihilator")]
    fn naive_powerset_is_not_a_semiring() {
        #[derive(Debug, Clone, PartialEq)]
        struct NaivePowerset(std::collections::BTreeSet<&'static str>);
        impl Semiring for NaivePowerset {
            fn zero() -> Self {
                NaivePowerset(Default::default())
            }
            fn one() -> Self {
                NaivePowerset(Default::default())
            }
            fn add(&self, o: &Self) -> Self {
                NaivePowerset(self.0.union(&o.0).cloned().collect())
            }
            fn mul(&self, o: &Self) -> Self {
                NaivePowerset(self.0.union(&o.0).cloned().collect())
            }
        }
        check_laws(&[
            NaivePowerset(Default::default()),
            NaivePowerset(["x"].into_iter().collect()),
        ]);
    }
}
