//! # cdb-semiring
//!
//! The provenance-semiring framework of §4.1 of *Curated Databases*
//! (after Green, Karvounarakis and Tannen, "Provenance semirings",
//! PODS 2007 — reference \[44\] of the paper):
//!
//! > "in the process of evaluation of a relational algebra expression,
//! > two things can happen to tuples: they can be joined together (in a
//! > join) or they can be merged together (in a union or projection). …
//! > we conclude that these are polynomials in a (commutative) semiring."
//!
//! This crate provides:
//!
//! * the [`Semiring`] trait and the instances the paper discusses:
//!   [`Bool`] (set semantics), [`Nat`] (bag semantics), [`Polynomial`]
//!   (the most general provenance, ℕ\[X\]), [`Lineage`] (Cui–Widom
//!   lineage, *including the paper's correction*: `P(X)` with `0 = 1 = ∅`
//!   is **not** a semiring, so ⊥ is adjoined), [`Why`] (proof
//!   why-provenance, `P(P(X))`), [`MinWhy`] (minimal why-provenance,
//!   `Irr(P(P(X)))`, isomorphic to positive Boolean expressions),
//!   [`Tropical`] (min-plus cost) and [`Prob`] (event probability),
//! * [`KRelation`]s and positive relational algebra evaluation over any
//!   semiring ([`eval`]),
//! * semiring-annotated Datalog evaluation ([`datalog`]),
//! * semiring [`hom`]omorphisms and the specialization chain
//!   ℕ\[X\] → Why → MinWhy → Lineage → Bool, with the fundamental
//!   commutation property (evaluate-then-map = map-then-evaluate),
//! * conditional tables ([`ctable`]) — the C-tables of Imieliński and
//!   Lipski, recovered as the PosBool instantiation,
//! * probabilistic event tables ([`instances::prob`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ctable;
pub mod datalog;
pub mod eval;
pub mod hom;
pub mod instances;
pub mod krel;
pub mod planned;
pub mod semiring;

pub use instances::lineage::Lineage;
pub use instances::minwhy::MinWhy;
pub use instances::nat::Nat;
pub use instances::polynomial::{Monomial, Polynomial};
pub use instances::prob::Prob;
pub use instances::tropical::Tropical;
pub use instances::why::Why;
pub use instances::Bool;
pub use krel::{KDatabase, KRelation};
pub use semiring::Semiring;
