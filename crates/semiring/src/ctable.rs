//! Conditional tables (C-tables) as a semiring instantiation.
//!
//! §4.1 lists "C-tables \[47\]" (Imieliński–Lipski incomplete databases)
//! among the well-known extensions recovered by instantiating the
//! provenance semiring. A (Boolean-condition) C-table is a K-relation
//! over the positive-Boolean semiring: each tuple carries a condition,
//! and each assignment of the condition variables — a *possible world* —
//! selects the tuples whose condition holds.
//!
//! The framework's payoff, demonstrated in the tests: evaluating a
//! positive query directly on the C-table and then instantiating a world
//! gives the same relation as instantiating first and evaluating the
//! plain query in that world.

use std::collections::BTreeSet;

use cdb_relalg::{RelalgError, Relation};

use crate::instances::minwhy::MinWhy;
use crate::krel::{KDatabase, KRelation};

/// A conditional table: tuples annotated with positive Boolean
/// conditions over named variables.
pub type CTable = KRelation<MinWhy>;

/// A database of conditional tables.
pub type CDatabase = KDatabase<MinWhy>;

/// The condition variables appearing anywhere in a C-table.
pub fn condition_vars(t: &CTable) -> BTreeSet<String> {
    t.iter()
        .flat_map(|(_, c)| {
            c.witnesses()
                .iter()
                .flat_map(|w| w.iter().cloned())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Instantiates a C-table in the possible world described by `truth`:
/// keeps exactly the tuples whose condition evaluates true.
pub fn instantiate(t: &CTable, truth: &impl Fn(&str) -> bool) -> Relation {
    let mut out = Relation::empty(t.schema().clone());
    for (tuple, cond) in t.iter() {
        if cond.eval_assignment(truth) {
            out.insert(tuple.clone()).expect("schema arity fixed");
        }
    }
    out
}

/// Instantiates every table of a conditional database.
pub fn instantiate_db(db: &CDatabase, truth: &impl Fn(&str) -> bool) -> cdb_relalg::Database {
    let mut out = cdb_relalg::Database::new();
    for (name, t) in db.iter() {
        out.insert(name.to_owned(), instantiate(t, truth));
    }
    out
}

/// Enumerates all possible worlds of a C-table (all assignments of its
/// condition variables), returning each distinct instantiated relation
/// once. Exponential in the variable count; capped at 20 variables.
pub fn possible_worlds(t: &CTable) -> Result<Vec<Relation>, RelalgError> {
    let vars: Vec<String> = condition_vars(t).into_iter().collect();
    if vars.len() > 20 {
        return Err(RelalgError::UpdateError(format!(
            "too many condition variables ({}) to enumerate worlds",
            vars.len()
        )));
    }
    let mut seen: Vec<Relation> = Vec::new();
    for mask in 0u32..(1u32 << vars.len()) {
        let truth = |v: &str| {
            vars.iter()
                .position(|x| x == v)
                .map(|i| mask & (1 << i) != 0)
                .unwrap_or(false)
        };
        let world = instantiate(t, &truth);
        if !seen.iter().any(|w| w.set_eq(&world)) {
            seen.push(world);
        }
    }
    Ok(seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_k;
    use crate::semiring::Semiring;
    use cdb_model::Atom;
    use cdb_relalg::{Pred, RaExpr, Schema};

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    /// A C-table with one certain tuple and two conditional ones.
    fn sample() -> CTable {
        let schema = Schema::new(["A", "B"]).unwrap();
        KRelation::from_pairs(
            schema,
            [
                (vec![int(1), int(10)], MinWhy::one()), // certain
                (vec![int(2), int(20)], MinWhy::var("x")),
                (
                    vec![int(3), int(20)],
                    MinWhy::var("x").mul(&MinWhy::var("y")),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn instantiation_selects_by_condition() {
        let t = sample();
        let none = instantiate(&t, &|_| false);
        assert_eq!(none.len(), 1, "only the certain tuple");
        let x_only = instantiate(&t, &|v| v == "x");
        assert_eq!(x_only.len(), 2);
        let all = instantiate(&t, &|_| true);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn possible_worlds_are_distinct_instantiations() {
        let worlds = possible_worlds(&sample()).unwrap();
        // x=0 → {t1}; x=1,y=0 → {t1,t2}; x=1,y=1 → all. (x=0,y=1 dups.)
        assert_eq!(worlds.len(), 3);
    }

    #[test]
    fn query_commutes_with_instantiation() {
        // The semiring framework's guarantee, for a selection+projection.
        let t = sample();
        let db = CDatabase::new().with("T", t.clone());
        let q = RaExpr::scan("T")
            .select(Pred::col_eq_const("B", 20))
            .project_cols(["B"]);
        let annotated = eval_k(&db, &q).unwrap();
        for truth in [
            (|_v: &str| false) as fn(&str) -> bool,
            |v| v == "x",
            |_| true,
        ] {
            let direct = instantiate(&annotated, &truth);
            let via_world = cdb_relalg::eval::eval(&instantiate_db(&db, &truth), &q).unwrap();
            assert!(direct.set_eq(&via_world));
        }
    }

    #[test]
    fn condition_vars_collects_support() {
        let vars = condition_vars(&sample());
        assert_eq!(vars.len(), 2);
        assert!(vars.contains("x") && vars.contains("y"));
    }

    #[test]
    fn projection_merges_conditions_disjunctively() {
        let db = CDatabase::new().with("T", sample());
        let q = RaExpr::scan("T").project_cols(["B"]);
        let v = eval_k(&db, &q).unwrap();
        // B=20 present iff x ∨ x∧y ≡ x.
        assert_eq!(v.annotation(&vec![int(20)]).to_string(), "x");
        assert_eq!(v.annotation(&vec![int(10)]), MinWhy::one());
    }
}
