//! K-relations: relations whose tuples are annotated with elements of a
//! commutative semiring K (Green–Karvounarakis–Tannen).

use std::collections::BTreeMap;
use std::fmt;

use cdb_relalg::{RelalgError, Relation, Schema, Tuple};

use crate::semiring::Semiring;

/// A K-relation: a schema plus a finitely-supported map from tuples to
/// semiring elements. Tuples mapped to `0` are absent and are pruned.
#[derive(Debug, Clone, PartialEq)]
pub struct KRelation<K: Semiring> {
    schema: Schema,
    support: BTreeMap<Tuple, K>,
}

impl<K: Semiring> KRelation<K> {
    /// An empty K-relation.
    pub fn empty(schema: Schema) -> Self {
        KRelation {
            schema,
            support: BTreeMap::new(),
        }
    }

    /// Builds from `(tuple, annotation)` pairs; repeated tuples have
    /// their annotations summed.
    pub fn from_pairs(
        schema: Schema,
        pairs: impl IntoIterator<Item = (Tuple, K)>,
    ) -> Result<Self, RelalgError> {
        let mut rel = KRelation::empty(schema);
        for (t, k) in pairs {
            rel.insert(t, k)?;
        }
        Ok(rel)
    }

    /// Tags every tuple of an ordinary relation with an annotation
    /// produced from its index and value — typically
    /// `|i, _t| K::var(format!("t{i}"))` to assign the paper's abstract
    /// identifiers `p, r, s, …`.
    pub fn tagged(
        rel: &Relation,
        mut tag: impl FnMut(usize, &Tuple) -> K,
    ) -> Result<Self, RelalgError> {
        let mut out = KRelation::empty(rel.schema().clone());
        for (i, t) in rel.tuples().iter().enumerate() {
            let k = tag(i, t);
            out.insert(t.clone(), k)?;
        }
        Ok(out)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds `k` to the annotation of `tuple`.
    pub fn insert(&mut self, tuple: Tuple, k: K) -> Result<(), RelalgError> {
        if tuple.len() != self.schema.arity() {
            return Err(RelalgError::UpdateError(format!(
                "arity mismatch inserting into K-relation {}",
                self.schema
            )));
        }
        let merged = match self.support.get(&tuple) {
            Some(old) => old.add(&k),
            None => k,
        };
        if merged.is_zero() {
            self.support.remove(&tuple);
        } else {
            self.support.insert(tuple, merged);
        }
        Ok(())
    }

    /// The annotation of a tuple (`0` if absent).
    pub fn annotation(&self, tuple: &Tuple) -> K {
        self.support.get(tuple).cloned().unwrap_or_else(K::zero)
    }

    /// Iterates over `(tuple, annotation)` pairs in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &K)> {
        self.support.iter()
    }

    /// The number of tuples with non-zero annotation.
    pub fn len(&self) -> usize {
        self.support.len()
    }

    /// Whether the support is empty.
    pub fn is_empty(&self) -> bool {
        self.support.is_empty()
    }

    /// Replaces the schema (used by rename/alias ops). The arity must
    /// match.
    pub(crate) fn with_schema(self, schema: Schema) -> Self {
        debug_assert_eq!(schema.arity(), self.schema.arity());
        KRelation {
            schema,
            support: self.support,
        }
    }

    /// Maps annotations through a semiring homomorphism, preserving the
    /// tuple structure. (If `h` is not actually a homomorphism the result
    /// is still a well-formed K-relation, but the commutation property
    /// with query evaluation is forfeit.)
    pub fn map_annotations<L: Semiring>(&self, h: &impl Fn(&K) -> L) -> KRelation<L> {
        let mut out = KRelation::empty(self.schema.clone());
        for (t, k) in &self.support {
            let l = h(k);
            if !l.is_zero() {
                out.support.insert(t.clone(), l);
            }
        }
        out
    }

    /// Drops annotations, producing the ordinary relation of the support.
    pub fn to_relation(&self) -> Relation {
        let mut rel = Relation::empty(self.schema.clone());
        for t in self.support.keys() {
            rel.insert(t.clone()).expect("arity checked at insert");
        }
        rel
    }
}

impl<K: Semiring + fmt::Display> fmt::Display for KRelation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (t, k) in &self.support {
            let cells: Vec<String> = t.iter().map(|a| a.to_string()).collect();
            writeln!(f, "  {}  ↦  {k}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// A database of K-relations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KDatabase<K: Semiring> {
    relations: BTreeMap<String, KRelation<K>>,
}

impl<K: Semiring> KDatabase<K> {
    /// An empty K-database.
    pub fn new() -> Self {
        KDatabase {
            relations: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a relation, builder-style.
    pub fn with(mut self, name: impl Into<String>, rel: KRelation<K>) -> Self {
        self.relations.insert(name.into(), rel);
        self
    }

    /// Adds (or replaces) a relation.
    pub fn insert(&mut self, name: impl Into<String>, rel: KRelation<K>) {
        self.relations.insert(name.into(), rel);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Result<&KRelation<K>, RelalgError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelalgError::NoSuchRelation(name.to_owned()))
    }

    /// Iterates over `(name, relation)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &KRelation<K>)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Maps every relation's annotations through a homomorphism.
    pub fn map_annotations<L: Semiring>(&self, h: &impl Fn(&K) -> L) -> KDatabase<L> {
        let mut out = KDatabase::new();
        for (n, r) in &self.relations {
            out.insert(n.clone(), r.map_annotations(h));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::nat::Nat;
    use crate::instances::Bool;
    use cdb_model::Atom;

    fn schema() -> Schema {
        Schema::new(["A"]).unwrap()
    }

    #[test]
    fn zero_annotations_are_pruned() {
        let mut r = KRelation::<Nat>::empty(schema());
        r.insert(vec![Atom::Int(1)], Nat(0)).unwrap();
        assert!(r.is_empty());
        r.insert(vec![Atom::Int(1)], Nat(2)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.annotation(&vec![Atom::Int(1)]), Nat(2));
    }

    #[test]
    fn repeated_insert_sums() {
        let mut r = KRelation::<Nat>::empty(schema());
        r.insert(vec![Atom::Int(1)], Nat(2)).unwrap();
        r.insert(vec![Atom::Int(1)], Nat(3)).unwrap();
        assert_eq!(r.annotation(&vec![Atom::Int(1)]), Nat(5));
    }

    #[test]
    fn tagged_assigns_identifiers() {
        let rel = Relation::table(["A"], [vec![Atom::Int(1)], vec![Atom::Int(2)]]).unwrap();
        let kr = KRelation::tagged(&rel, |i, _| Nat(i as u64 + 1)).unwrap();
        assert_eq!(kr.annotation(&vec![Atom::Int(2)]), Nat(2));
    }

    #[test]
    fn map_annotations_drops_zeros() {
        let mut r = KRelation::<Nat>::empty(schema());
        r.insert(vec![Atom::Int(1)], Nat(2)).unwrap();
        r.insert(vec![Atom::Int(2)], Nat(1)).unwrap();
        // Map n ↦ (n ≥ 2): tuple 2 drops out.
        let b = r.map_annotations(&|n: &Nat| Bool(n.0 >= 2));
        assert_eq!(b.len(), 1);
        assert_eq!(b.annotation(&vec![Atom::Int(1)]), Bool(true));
    }

    #[test]
    fn arity_is_checked() {
        let mut r = KRelation::<Nat>::empty(schema());
        assert!(r.insert(vec![Atom::Int(1), Atom::Int(2)], Nat(1)).is_err());
    }
}
