//! Executing cost-based physical plans over K-relations.
//!
//! [`eval_k_planned`] runs a [`PhysPlan`] from `cdb_relalg::plan` against
//! a [`KDatabase`], propagating annotations exactly as the naive
//! evaluator of [`crate::eval`] does. This is what makes the planner
//! *provenance-preserving* rather than merely set-preserving: the
//! differential suites check byte-identical results — tuples **and**
//! annotations — against [`crate::eval::eval_k`] for ℕ, 𝔹 and the
//! provenance polynomials.
//!
//! Why the same plan is valid for every semiring:
//!
//! * Join reordering re-associates and commutes the `·` products that
//!   annotate joined tuples — both laws hold in every semiring, and the
//!   [`KRelation`] `BTreeMap` makes tuple order canonical, so even the
//!   iteration-order change that reordering causes is invisible.
//! * Pushed filters multiply annotations by 0/1 before instead of after
//!   a join; since dropped tuples would only have contributed `0 · k`
//!   terms, the annotation sums are unchanged (σ commutes with ⋈ over
//!   any semiring — Green et al., Lemma 3.4's spirit).
//! * An index lookup here degrades to a support filter: K-relations have
//!   no stable row offsets, and the lookup's semantics is exactly
//!   `σ[col = key]`.
//!
//! Difference stays rejected with the same error as the naive engine;
//! [`PlanOp::Naive`] fallback nodes run through [`eval_k_with`], so
//! planned evaluation fails exactly when and how naive evaluation fails.

use cdb_relalg::exec::{extract_keys, join_matches, ExecConfig};
use cdb_relalg::expr::ProjSource;
use cdb_relalg::plan::{PhysPlan, PlanOp};
use cdb_relalg::{Database, RelalgError, Relation, Tuple};

use crate::eval::{eval_k_with, positivity_error};
use crate::krel::{KDatabase, KRelation};
use crate::semiring::Semiring;

/// The set-semantics shadow of a K-database: every relation's support,
/// in canonical order. Plan against this (it carries the schemas and
/// row counts the planner needs), execute with [`eval_k_planned`].
pub fn shadow_database<K: Semiring>(db: &KDatabase<K>) -> Database {
    let mut out = Database::new();
    for (name, rel) in db.iter() {
        out.insert(name, rel.to_relation());
    }
    out
}

/// Executes a physical plan over a K-database, returning the annotated
/// result. Annotation-identical to [`crate::eval::eval_k`] on the
/// expression the plan was built from; plans containing difference are
/// rejected with the naive engine's positivity error.
pub fn eval_k_planned<K: Semiring>(
    db: &KDatabase<K>,
    plan: &PhysPlan,
    cfg: &ExecConfig,
) -> Result<KRelation<K>, RelalgError> {
    match &plan.op {
        PlanOp::Scan { rel } => Ok(db.get(rel)?.clone()),
        PlanOp::ScanAs { rel, .. } => Ok(db.get(rel)?.clone().with_schema(plan.schema.clone())),
        PlanOp::IndexLookup {
            rel, col_idx, key, ..
        } => {
            // K-relations have no row offsets; the lookup is exactly
            // σ[col = key] over the support.
            let base = db.get(rel)?.clone().with_schema(plan.schema.clone());
            let mut out = KRelation::empty(plan.schema.clone());
            for (t, k) in base.iter() {
                if t[*col_idx] == *key {
                    out.insert(t.clone(), k.clone())?;
                }
            }
            Ok(out)
        }
        PlanOp::Filter { pred } => {
            let input = eval_k_planned(db, &plan.children[0], cfg)?;
            let mut out = KRelation::empty(input.schema().clone());
            for (t, k) in input.iter() {
                if pred.eval(input.schema(), t)? {
                    out.insert(t.clone(), k.clone())?;
                }
            }
            Ok(out)
        }
        PlanOp::HashJoin { keys } => {
            let left = eval_k_planned(db, &plan.children[0], cfg)?;
            let right = eval_k_planned(db, &plan.children[1], cfg)?;
            let lrows: Vec<(&Tuple, &K)> = left.iter().collect();
            let rrows: Vec<(&Tuple, &K)> = right.iter().collect();
            let lcols: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
            let rcols: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
            let build = extract_keys(rrows.iter().map(|&(t, _)| t), &rcols);
            let probe = extract_keys(lrows.iter().map(|&(t, _)| t), &lcols);
            let m = join_matches(&build, &probe, cfg);
            let mut out = KRelation::empty(plan.schema.clone());
            for &(li, ri) in &m.pairs {
                let (lt, lk) = lrows[li];
                let (rt, rk) = rrows[ri];
                let mut row = lt.clone();
                row.extend(rt.iter().cloned());
                out.insert(row, lk.mul(rk))?;
            }
            Ok(out)
        }
        PlanOp::HashNaturalJoin { shared, right_kept } => {
            let left = eval_k_planned(db, &plan.children[0], cfg)?;
            let right = eval_k_planned(db, &plan.children[1], cfg)?;
            let lrows: Vec<(&Tuple, &K)> = left.iter().collect();
            let rrows: Vec<(&Tuple, &K)> = right.iter().collect();
            let lcols: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
            let rcols: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
            let build = extract_keys(rrows.iter().map(|&(t, _)| t), &rcols);
            let probe = extract_keys(lrows.iter().map(|&(t, _)| t), &lcols);
            let m = join_matches(&build, &probe, cfg);
            let mut out = KRelation::empty(plan.schema.clone());
            for &(li, ri) in &m.pairs {
                let (lt, lk) = lrows[li];
                let (rt, rk) = rrows[ri];
                let mut row = lt.clone();
                row.extend(right_kept.iter().map(|&j| rt[j].clone()));
                out.insert(row, lk.mul(rk))?;
            }
            Ok(out)
        }
        PlanOp::Product => {
            let left = eval_k_planned(db, &plan.children[0], cfg)?;
            let right = eval_k_planned(db, &plan.children[1], cfg)?;
            let mut out = KRelation::empty(plan.schema.clone());
            for (lt, lk) in left.iter() {
                for (rt, rk) in right.iter() {
                    let mut row = lt.clone();
                    row.extend(rt.iter().cloned());
                    out.insert(row, lk.mul(rk))?;
                }
            }
            Ok(out)
        }
        PlanOp::Arrange { perm } => {
            // A bijective column permutation: annotations ride along
            // unchanged (no two tuples can merge).
            let input = eval_k_planned(db, &plan.children[0], cfg)?;
            let mut out = KRelation::empty(plan.schema.clone());
            for (t, k) in input.iter() {
                let row: Tuple = perm.iter().map(|&p| t[p].clone()).collect();
                out.insert(row, k.clone())?;
            }
            Ok(out)
        }
        PlanOp::Project { items } => {
            let input = eval_k_planned(db, &plan.children[0], cfg)?;
            let mut out = KRelation::empty(plan.schema.clone());
            for (t, k) in input.iter() {
                let mut row: Tuple = Vec::with_capacity(items.len());
                for item in items {
                    match &item.source {
                        ProjSource::Col(c) => row.push(t[input.schema().resolve(c)?].clone()),
                        ProjSource::Const(a) => row.push(a.clone()),
                    }
                }
                out.insert(row, k.clone())?; // merged tuples sum
            }
            Ok(out)
        }
        PlanOp::Union => {
            let mut out = eval_k_planned(db, &plan.children[0], cfg)?;
            let right = eval_k_planned(db, &plan.children[1], cfg)?;
            for (t, k) in right.iter() {
                out.insert(t.clone(), k.clone())?;
            }
            Ok(out)
        }
        PlanOp::Diff => Err(positivity_error()),
        PlanOp::Rename => {
            let input = eval_k_planned(db, &plan.children[0], cfg)?;
            Ok(input.with_schema(plan.schema.clone()))
        }
        PlanOp::Naive { expr } => eval_k_with(db, expr, cfg),
    }
}

/// Plans `expr` against the database's set-semantics shadow and executes
/// the plan with annotations — the one-call version of
/// `plan` + [`eval_k_planned`].
pub fn eval_k_via_planner<K: Semiring>(
    db: &KDatabase<K>,
    expr: &cdb_relalg::RaExpr,
    indexes: &cdb_relalg::IndexSet,
    cfg: &ExecConfig,
) -> Result<KRelation<K>, RelalgError> {
    let shadow = shadow_database(db);
    let stats = cdb_relalg::DbStats::analyze(&shadow);
    let plan = cdb_relalg::plan::plan(&shadow, &stats, indexes, expr);
    eval_k_planned(db, &plan, cfg)
}

/// The support of a K-relation as a canonical set-semantics relation —
/// convenience for comparing planned K-results to set-engine results.
pub fn support<K: Semiring>(rel: &KRelation<K>) -> Relation {
    rel.to_relation()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_k, figure4_database, figure4_query};
    use crate::instances::nat::Nat;
    use crate::instances::polynomial::Polynomial;
    use crate::instances::Bool;
    use cdb_model::Atom;
    use cdb_relalg::{IndexSet, Pred, RaExpr};

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    fn chain_db<K: Semiring>(var: impl Fn(&str) -> K) -> KDatabase<K> {
        let mk = |name: &str, n: i64, m: i64| {
            KRelation::from_pairs(
                cdb_relalg::Schema::new(["K", name]).unwrap(),
                (0..n).map(|i| (vec![int(i % m), int(i)], var(&format!("{name}{i}")))),
            )
            .unwrap()
        };
        KDatabase::new()
            .with("R", mk("A", 20, 7))
            .with("S", mk("B", 12, 7))
            .with("T", mk("C", 5, 7))
    }

    fn chain_query() -> RaExpr {
        RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .product(RaExpr::ScanAs("T".into(), "t".into()))
            .select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_col("s.K", "t.K")))
    }

    #[test]
    fn reordered_chain_is_annotation_identical() {
        let db = chain_db(|v: &str| Polynomial::var(v));
        let q = chain_query();
        let naive = eval_k(&db, &q).unwrap();
        let planned =
            eval_k_via_planner(&db, &q, &IndexSet::new(), &ExecConfig::default()).unwrap();
        assert_eq!(planned, naive, "polynomials survive join reordering");
        // And under bag/set instantiations.
        let dbn = chain_db(|_| Nat(2));
        assert_eq!(
            eval_k_via_planner(&dbn, &q, &IndexSet::new(), &ExecConfig::default()).unwrap(),
            eval_k(&dbn, &q).unwrap()
        );
        let dbb = chain_db(|_| Bool(true));
        assert_eq!(
            eval_k_via_planner(&dbb, &q, &IndexSet::new(), &ExecConfig::default()).unwrap(),
            eval_k(&dbb, &q).unwrap()
        );
    }

    #[test]
    fn figure4_through_the_planner() {
        let db = figure4_database(|v| Polynomial::var(v));
        let q = figure4_query();
        let naive = eval_k(&db, &q).unwrap();
        let planned =
            eval_k_via_planner(&db, &q, &IndexSet::new(), &ExecConfig::default()).unwrap();
        assert_eq!(planned, naive, "Figure 4 polynomials are preserved");
    }

    #[test]
    fn index_plans_degrade_to_support_filters() {
        let db = chain_db(|v: &str| Polynomial::var(v));
        let shadow = shadow_database(&db);
        let idx = IndexSet::build(&shadow, [("R", "A")]).unwrap();
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .select(Pred::col_eq_col("r.K", "s.K").and(Pred::col_eq_const("r.A", 7)));
        let stats = cdb_relalg::DbStats::analyze(&shadow);
        let plan = cdb_relalg::plan::plan(&shadow, &stats, &idx, &q);
        assert!(
            plan.ops()
                .iter()
                .any(|o| matches!(o, cdb_relalg::PlanOp::IndexLookup { .. })),
            "plan actually exercises the index path:\n{plan}"
        );
        let planned = eval_k_planned(&db, &plan, &ExecConfig::default()).unwrap();
        assert_eq!(planned, eval_k(&db, &q).unwrap());
    }

    #[test]
    fn difference_plans_are_rejected_like_naive() {
        let db = chain_db(|_| Bool(true));
        let q = RaExpr::scan("R").diff(RaExpr::scan("R"));
        let shadow = shadow_database(&db);
        let stats = cdb_relalg::DbStats::analyze(&shadow);
        let plan = cdb_relalg::plan::plan(&shadow, &stats, &IndexSet::new(), &q);
        let planned = eval_k_planned(&db, &plan, &ExecConfig::default());
        let naive = eval_k(&db, &q);
        assert_eq!(planned.unwrap_err(), naive.unwrap_err());
    }

    #[test]
    fn fallback_plans_run_the_naive_k_engine() {
        let db = chain_db(|v: &str| Polynomial::var(v));
        // Unresolvable predicate: the planner wraps the whole query.
        let q = RaExpr::scan("R").select(Pred::col_eq_const("nope", 0));
        let shadow = shadow_database(&db);
        let stats = cdb_relalg::DbStats::analyze(&shadow);
        let plan = cdb_relalg::plan::plan(&shadow, &stats, &IndexSet::new(), &q);
        assert!(matches!(plan.op, cdb_relalg::PlanOp::Naive { .. }));
        assert_eq!(
            eval_k_planned(&db, &plan, &ExecConfig::default()).unwrap_err(),
            eval_k(&db, &q).unwrap_err()
        );
    }
}
