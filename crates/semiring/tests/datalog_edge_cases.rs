//! Datalog-with-provenance edge cases: constants in heads and bodies,
//! multiple heads, self-joins, and semiring agreement between the
//! Datalog evaluator and the RA evaluator on equivalent queries.

use cdb_model::Atom;
use cdb_relalg::conjunctive::{AtomPattern, Rule, Term};
use cdb_relalg::{RaExpr, Schema};
use cdb_semiring::datalog::eval_datalog;
use cdb_semiring::eval::eval_k;
use cdb_semiring::{KDatabase, KRelation, Polynomial, Semiring, Why};

fn s(x: &str) -> Atom {
    Atom::Str(x.into())
}

fn db<K: Semiring>(var: impl Fn(&str) -> K) -> KDatabase<K> {
    let schema = Schema::new(["X", "Y"]).unwrap();
    let rel = KRelation::from_pairs(
        schema,
        [
            (vec![s("a"), s("b")], var("p")),
            (vec![s("b"), s("b")], var("r")),
            (vec![s("c"), s("a")], var("q")),
        ],
    )
    .unwrap();
    KDatabase::new().with("E", rel)
}

#[test]
fn constants_in_heads_are_emitted() {
    let rule = Rule::new(
        "H",
        vec![Term::Const(s("tag")), Term::var("X")],
        vec![AtomPattern::new(
            "E",
            vec![Term::var("X"), Term::Const(s("b"))],
        )],
    )
    .unwrap();
    let out = eval_datalog(&db(|v| Polynomial::var(v)), &[rule]).unwrap();
    let h = out.get("H").unwrap();
    assert_eq!(h.annotation(&vec![s("tag"), s("a")]).to_string(), "p");
    assert_eq!(h.annotation(&vec![s("tag"), s("b")]).to_string(), "r");
    assert!(h.annotation(&vec![s("tag"), s("c")]).is_zero());
}

#[test]
fn self_join_squares_annotations() {
    // H(X) :- E(X,Y), E(Y,Y): (a) uses p then r; (b) uses r twice.
    let rule = Rule::new(
        "H",
        vec![Term::var("X")],
        vec![
            AtomPattern::new("E", vec![Term::var("X"), Term::var("Y")]),
            AtomPattern::new("E", vec![Term::var("Y"), Term::var("Y")]),
        ],
    )
    .unwrap();
    let out = eval_datalog(&db(|v| Polynomial::var(v)), &[rule]).unwrap();
    let h = out.get("H").unwrap();
    assert_eq!(h.annotation(&vec![s("a")]).to_string(), "p·r");
    assert_eq!(h.annotation(&vec![s("b")]).to_string(), "r·r");
}

#[test]
fn multiple_head_relations_coexist() {
    let rules = vec![
        Rule::new(
            "Src",
            vec![Term::var("X")],
            vec![AtomPattern::new("E", vec![Term::var("X"), Term::Wildcard])],
        )
        .unwrap(),
        Rule::new(
            "Dst",
            vec![Term::var("Y")],
            vec![AtomPattern::new("E", vec![Term::Wildcard, Term::var("Y")])],
        )
        .unwrap(),
    ];
    let out = eval_datalog(&db(|v| Why::var(v)), &rules).unwrap();
    assert_eq!(out.get("Src").unwrap().len(), 3);
    assert_eq!(out.get("Dst").unwrap().len(), 2);
    // b is a destination of both p and r: two witnesses.
    let b = out.get("Dst").unwrap().annotation(&vec![s("b")]);
    assert_eq!(b.witnesses().len(), 2);
}

#[test]
fn datalog_agrees_with_ra_on_equivalent_query() {
    // H(X,Y) :- E(X,Y)  ≡  scan.
    let rule = Rule::new(
        "H",
        vec![Term::var("X"), Term::var("Y")],
        vec![AtomPattern::new("E", vec![Term::var("X"), Term::var("Y")])],
    )
    .unwrap();
    let d = db(|v| Polynomial::var(v));
    let via_datalog = eval_datalog(&d, &[rule]).unwrap();
    let via_ra = eval_k(&d, &RaExpr::scan("E")).unwrap();
    for (t, k) in via_ra.iter() {
        assert_eq!(&via_datalog.get("H").unwrap().annotation(t), k);
    }
}

#[test]
fn empty_body_match_yields_empty_head() {
    let rule = Rule::new(
        "H",
        vec![Term::var("X")],
        vec![AtomPattern::new(
            "E",
            vec![Term::var("X"), Term::Const(s("zzz"))],
        )],
    )
    .unwrap();
    let out = eval_datalog(&db(|v| Polynomial::var(v)), &[rule]).unwrap();
    assert!(out.get("H").unwrap().is_empty());
}
