//! Property-based tests: semiring laws on generated elements, the
//! homomorphism chain, and the fundamental commutation of evaluation
//! with specialization on generated K-databases.

use cdb_model::Atom;
use cdb_relalg::{Pred, RaExpr, Schema};
use cdb_semiring::eval::eval_k;
use cdb_semiring::hom::{poly_to_nat, poly_to_why, why_to_lineage, why_to_minwhy};
use cdb_semiring::semiring::check_laws;
use cdb_semiring::{KDatabase, KRelation, Lineage, MinWhy, Nat, Polynomial, Semiring, Why};
use proptest::prelude::*;

/// Random polynomials over a tiny variable set.
fn poly() -> impl Strategy<Value = Polynomial> {
    let var = prop_oneof![Just("p"), Just("r"), Just("s")];
    let leaf = prop_oneof![
        Just(Polynomial::zero()),
        Just(Polynomial::one()),
        (0u64..3).prop_map(Polynomial::constant),
        var.prop_map(Polynomial::var),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner)
            .prop_flat_map(|(a, b)| prop_oneof![Just(a.add(&b)), Just(a.mul(&b)),])
    })
}

proptest! {
    /// Laws hold on arbitrary triples of polynomials (associativity,
    /// commutativity, distributivity, identities, annihilator).
    #[test]
    fn polynomial_laws(a in poly(), b in poly(), c in poly()) {
        check_laws(&[a, b, c]);
    }

    /// The chain maps are homomorphisms on arbitrary pairs.
    #[test]
    fn chain_maps_are_homomorphisms(a in poly(), b in poly()) {
        // ℕ[X] → Why.
        prop_assert_eq!(poly_to_why(&a.add(&b)), poly_to_why(&a).add(&poly_to_why(&b)));
        prop_assert_eq!(poly_to_why(&a.mul(&b)), poly_to_why(&a).mul(&poly_to_why(&b)));
        // ℕ[X] → ℕ.
        prop_assert_eq!(poly_to_nat(&a.add(&b)), poly_to_nat(&a).add(&poly_to_nat(&b)));
        prop_assert_eq!(poly_to_nat(&a.mul(&b)), poly_to_nat(&a).mul(&poly_to_nat(&b)));
        // Why → MinWhy and Why → Lineage.
        let (wa, wb) = (poly_to_why(&a), poly_to_why(&b));
        prop_assert_eq!(
            why_to_minwhy(&wa.add(&wb)),
            why_to_minwhy(&wa).add(&why_to_minwhy(&wb))
        );
        prop_assert_eq!(
            why_to_minwhy(&wa.mul(&wb)),
            why_to_minwhy(&wa).mul(&why_to_minwhy(&wb))
        );
        prop_assert_eq!(
            why_to_lineage(&wa.add(&wb)),
            why_to_lineage(&wa).add(&why_to_lineage(&wb))
        );
        prop_assert_eq!(
            why_to_lineage(&wa.mul(&wb)),
            why_to_lineage(&wa).mul(&why_to_lineage(&wb))
        );
    }

    /// Why / MinWhy / Lineage laws on images of random polynomials.
    #[test]
    fn derived_semiring_laws(a in poly(), b in poly(), c in poly()) {
        let ws: Vec<Why> = [&a, &b, &c].iter().map(|p| poly_to_why(p)).collect();
        check_laws(&ws);
        let ms: Vec<MinWhy> = ws.iter().map(why_to_minwhy).collect();
        check_laws(&ms);
        let ls: Vec<Lineage> = ws.iter().map(why_to_lineage).collect();
        check_laws(&ls);
    }

    /// `eval_in` is the universal-property homomorphism: evaluating the
    /// polynomial in ℕ with every variable ↦ its assigned count equals
    /// structural evaluation.
    #[test]
    fn eval_in_respects_operations(a in poly(), b in poly(), p in 0u64..4, r in 0u64..4) {
        let val = move |name: &str| Nat(match name { "p" => p, "r" => r, _ => 2 });
        prop_assert_eq!(
            a.add(&b).eval_in(&val),
            a.eval_in(&val).add(&b.eval_in(&val))
        );
        prop_assert_eq!(
            a.mul(&b).eval_in(&val),
            a.eval_in(&val).mul(&b.eval_in(&val))
        );
    }
}

/// Rows for two binary relations.
type TwoRelations = (Vec<(i64, i64)>, Vec<(i64, i64)>);

/// A random small K-database over ℕ[X] (each tuple its own variable),
/// as (rows of R(X,Y), rows of S(Y,Z)).
fn k_rows() -> impl Strategy<Value = TwoRelations> {
    (
        proptest::collection::vec((0i64..5, 0i64..5), 1..6),
        proptest::collection::vec((0i64..5, 0i64..5), 1..6),
    )
}

fn build_poly_db(r: &[(i64, i64)], s: &[(i64, i64)]) -> KDatabase<Polynomial> {
    let mut n = 0;
    let mut mk = |rows: &[(i64, i64)], attrs: [&str; 2]| {
        let schema = Schema::new(attrs).unwrap();
        KRelation::from_pairs(
            schema,
            rows.iter().map(|(a, b)| {
                n += 1;
                (
                    vec![Atom::Int(*a), Atom::Int(*b)],
                    Polynomial::var(format!("t{n}")),
                )
            }),
        )
        .unwrap()
    };
    let r_rel = mk(r, ["X", "Y"]);
    let s_rel = mk(s, ["Y", "Z"]);
    KDatabase::new().with("R", r_rel).with("S", s_rel)
}

fn test_query() -> RaExpr {
    RaExpr::scan("R")
        .natural_join(RaExpr::scan("S"))
        .select(Pred::cmp(
            cdb_relalg::Operand::col("X"),
            cdb_relalg::CmpOp::Le,
            cdb_relalg::Operand::col("Z"),
        ))
        .project_cols(["X", "Z"])
        .union(RaExpr::scan("R").project_cols(["X", "Y"]).project(vec![
            cdb_relalg::ProjItem::col("X", "X"),
            cdb_relalg::ProjItem::col("Y", "Z"),
        ]))
}

proptest! {
    /// The fundamental theorem on random instances: evaluate in ℕ[X],
    /// then specialize — identical to evaluating in the specialized
    /// semiring directly. (Checked for Why, ℕ and Lineage.)
    #[test]
    fn evaluation_commutes_with_specialization((r, s) in k_rows()) {
        let q = test_query();
        let poly_db = build_poly_db(&r, &s);
        let poly_out = eval_k(&poly_db, &q).unwrap();

        let why_db = poly_db.map_annotations(&poly_to_why);
        prop_assert_eq!(
            poly_out.map_annotations(&poly_to_why),
            eval_k(&why_db, &q).unwrap()
        );

        let nat_db = poly_db.map_annotations(&poly_to_nat);
        prop_assert_eq!(
            poly_out.map_annotations(&poly_to_nat),
            eval_k(&nat_db, &q).unwrap()
        );

        let lin_db = poly_db.map_annotations(&|p: &Polynomial| why_to_lineage(&poly_to_why(p)));
        prop_assert_eq!(
            poly_out.map_annotations(&|p: &Polynomial| why_to_lineage(&poly_to_why(p))),
            eval_k(&lin_db, &q).unwrap()
        );
    }

    /// Why-provenance witnesses are sound: the output tuple is derivable
    /// from exactly the tuples of any single witness.
    #[test]
    fn witnesses_are_sufficient((r, s) in k_rows()) {
        let q = test_query();
        let poly_db = build_poly_db(&r, &s);
        let why_db = poly_db.map_annotations(&poly_to_why);
        let out = eval_k(&why_db, &q).unwrap();
        // For each output tuple and each witness, re-evaluate on the
        // sub-database containing only witness tuples: the tuple must
        // still be derivable (monotone query).
        for (tuple, why) in out.iter() {
            for witness in why.witnesses().iter().take(3) {
                let mut sub: KDatabase<Why> = KDatabase::new();
                for (name, rel) in why_db.iter() {
                    let filtered = KRelation::from_pairs(
                        rel.schema().clone(),
                        rel.iter().filter_map(|(t, k)| {
                            let keep = k
                                .witnesses()
                                .iter()
                                .any(|w| w.iter().all(|x| witness.contains(x)) && w.len() == 1);
                            if keep { Some((t.clone(), k.clone())) } else { None }
                        }),
                    ).unwrap();
                    sub.insert(name.to_owned(), filtered);
                }
                let sub_out = eval_k(&sub, &q).unwrap();
                prop_assert!(
                    !sub_out.annotation(tuple).is_zero(),
                    "witness {witness:?} fails to derive {tuple:?}"
                );
            }
        }
    }
}
