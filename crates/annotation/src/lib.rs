//! # cdb-annotation
//!
//! Annotation propagation and where-provenance (§2 of *Curated
//! Databases*):
//!
//! * [`colored`] — flat relations whose *cells* carry sets of colors,
//!   with the three propagation schemes of the DBNotes line of work
//!   \[8, 26\]: the **default** scheme (annotations follow where values
//!   are copied from — under which the classically-equivalent queries Q1
//!   and Q2 of §2.1 behave differently), the **DEFAULT-ALL** scheme
//!   (annotations of values explicitly equated by the query are merged —
//!   restoring agreement between equivalent queries), and **custom**
//!   propagation (annotations steered explicitly).
//! * [`nested`] — colored complex objects and the implicit
//!   where-provenance of §2.3 \[14\]: every part of a value (base values,
//!   tuples, tables) carries a color; queries propagate colors, construct
//!   ⊥-colored values, and are characterized by the *copying*, *bounded
//!   inventing* and *color propagating* conditions, all of which are
//!   checkable here. Includes the explicit `(V:…, C:…)` representation
//!   and the worked Figure 2 examples.
//! * [`reverse`] — reverse propagation of annotations (§2.2 \[17, 27\]):
//!   side-effect-free annotation placements, the key-preserving fast
//!   path, and the related view-deletion problem solved through
//!   why-provenance witnesses.
//! * [`blocks`] — block annotations and the color algebra of MONDRIAN
//!   \[40, 41\]: annotations on *sets* of cells within a tuple (modeling
//!   "the curator's opinion of the relationship between the value and
//!   the key"), with the explicit relational representation the
//!   completeness results are stated against.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod blocks;
pub mod colored;
pub mod dependency;
pub mod nested;
pub mod reverse;

pub use colored::{
    eval_colored, eval_colored_with, ColoredDatabase, ColoredRelation, ColoredTuple, Scheme,
};
pub use nested::{CNode, Colored};
pub use reverse::{find_placements, view_deletions, Placement};
