//! Colored complex objects and implicit where-provenance (§2.3, \[14\]).
//!
//! Every part of a value — base values, tuples (records), tables (sets)
//! — carries a color or ⊥ ("constructed by the query"). This module
//! provides:
//!
//! * the colored value type [`Colored`],
//! * the query operations of Figure 2 (selection preserving whole tuples
//!   and their colors, projection constructing fresh ⊥ tuples around
//!   copied cells),
//! * the explicit `(V: value, C: color)` representation and its
//!   round-trip,
//! * checkers for the three semantic conditions of \[14\]: **copying**,
//!   **bounded inventing**, and **color propagation**, plus the weaker
//!   **kind preservation** used for update languages in §3.1.

use std::collections::BTreeMap;
use std::fmt;

use cdb_model::{Atom, Value};
use cdb_relalg::{Pred, RelalgError, Schema, Tuple};

/// A color, or ⊥ when `None`.
pub type ColorTag = Option<String>;

/// A complex object in which *every* part carries a [`ColorTag`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Colored {
    /// This part's color (`None` = ⊥, constructed by the query).
    pub color: ColorTag,
    /// The part's structure.
    pub node: CNode,
}

/// The structure of a colored value. Sets are represented as sequences
/// because two elements may differ only in color (Figure 2's π_B output);
/// the paper notes this "is equivalent to one tuple annotated with a set
/// of colors".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CNode {
    /// An atomic value.
    Atom(Atom),
    /// A record of colored fields.
    Record(BTreeMap<String, Colored>),
    /// An (annotated) set of colored values.
    Set(Vec<Colored>),
}

impl Colored {
    /// A colored atom.
    pub fn atom(a: impl Into<Atom>, color: impl Into<String>) -> Self {
        Colored {
            color: Some(color.into()),
            node: CNode::Atom(a.into()),
        }
    }

    /// An invented (⊥) atom.
    pub fn invented_atom(a: impl Into<Atom>) -> Self {
        Colored {
            color: None,
            node: CNode::Atom(a.into()),
        }
    }

    /// A colored record.
    pub fn record<L: Into<String>>(
        fields: impl IntoIterator<Item = (L, Colored)>,
        color: ColorTag,
    ) -> Self {
        Colored {
            color,
            node: CNode::Record(fields.into_iter().map(|(l, v)| (l.into(), v)).collect()),
        }
    }

    /// A colored set.
    pub fn set(items: impl IntoIterator<Item = Colored>, color: ColorTag) -> Self {
        Colored {
            color,
            node: CNode::Set(items.into_iter().collect()),
        }
    }

    /// Strips colors, recovering the plain value. Set elements that
    /// collapse to equal plain values are merged (set semantics).
    pub fn strip(&self) -> Value {
        match &self.node {
            CNode::Atom(a) => Value::Atom(a.clone()),
            CNode::Record(m) => {
                Value::Record(m.iter().map(|(l, v)| (l.clone(), v.strip())).collect())
            }
            CNode::Set(xs) => Value::Set(xs.iter().map(Colored::strip).collect()),
        }
    }

    /// Colors every part of a plain value with distinct colors
    /// `prefix1, prefix2, …` in depth-first order.
    pub fn distinct(value: &Value, prefix: &str) -> Colored {
        let mut n = 0;
        Self::distinct_inner(value, prefix, &mut n)
    }

    fn distinct_inner(value: &Value, prefix: &str, n: &mut usize) -> Colored {
        *n += 1;
        let color = Some(format!("{prefix}{n}"));
        let node = match value {
            Value::Atom(a) => CNode::Atom(a.clone()),
            Value::Record(m) => CNode::Record(
                m.iter()
                    .map(|(l, v)| (l.clone(), Self::distinct_inner(v, prefix, n)))
                    .collect(),
            ),
            Value::Set(s) => CNode::Set(
                s.iter()
                    .map(|v| Self::distinct_inner(v, prefix, n))
                    .collect(),
            ),
            Value::List(xs) => CNode::Set(
                xs.iter()
                    .map(|v| Self::distinct_inner(v, prefix, n))
                    .collect(),
            ),
        };
        Colored { color, node }
    }

    /// All `(color, plain value)` pairs of colored (non-⊥) parts.
    pub fn colored_parts(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        self.collect_colored(&mut out);
        out
    }

    fn collect_colored(&self, out: &mut Vec<(String, Value)>) {
        if let Some(c) = &self.color {
            out.push((c.clone(), self.strip()));
        }
        match &self.node {
            CNode::Atom(_) => {}
            CNode::Record(m) => {
                for v in m.values() {
                    v.collect_colored(out);
                }
            }
            CNode::Set(xs) => {
                for v in xs {
                    v.collect_colored(out);
                }
            }
        }
    }

    /// The number of ⊥-colored parts (used by the bounded-inventing
    /// check).
    pub fn invented_count(&self) -> usize {
        let here = usize::from(self.color.is_none());
        here + match &self.node {
            CNode::Atom(_) => 0,
            CNode::Record(m) => m.values().map(Colored::invented_count).sum(),
            CNode::Set(xs) => xs.iter().map(Colored::invented_count).sum(),
        }
    }

    /// Renames every color through `f` (⊥ stays ⊥). Queries must commute
    /// with this for any `f` — the *color propagation* condition.
    pub fn recolor(&self, f: &impl Fn(&str) -> String) -> Colored {
        Colored {
            color: self.color.as_deref().map(f),
            node: match &self.node {
                CNode::Atom(a) => CNode::Atom(a.clone()),
                CNode::Record(m) => {
                    CNode::Record(m.iter().map(|(l, v)| (l.clone(), v.recolor(f))).collect())
                }
                CNode::Set(xs) => CNode::Set(xs.iter().map(|v| v.recolor(f)).collect()),
            },
        }
    }

    /// The explicit representation of §2.3: each part becomes a record
    /// `(V: structure, C: color)`, with ⊥ encoded as the unit atom. E.g.
    /// `50♭2` becomes `(V: 50, C: "♭2")`.
    pub fn to_explicit(&self) -> Value {
        let c = match &self.color {
            Some(c) => Value::str(c.clone()),
            None => Value::unit(),
        };
        let v = match &self.node {
            CNode::Atom(a) => Value::Atom(a.clone()),
            CNode::Record(m) => Value::Record(
                m.iter()
                    .map(|(l, x)| (l.clone(), x.to_explicit()))
                    .collect(),
            ),
            CNode::Set(xs) => Value::list(xs.iter().map(Colored::to_explicit)),
        };
        Value::record([("V", v), ("C", c)])
    }

    /// Parses the explicit representation back. Fails on malformed
    /// encodings.
    pub fn from_explicit(value: &Value) -> Result<Colored, RelalgError> {
        let rec = value
            .as_record()
            .ok_or_else(|| malformed("not a (V,C) record"))?;
        let c = rec.get("C").ok_or_else(|| malformed("missing C"))?;
        let v = rec.get("V").ok_or_else(|| malformed("missing V"))?;
        let color = match c {
            Value::Atom(Atom::Unit) => None,
            Value::Atom(Atom::Str(s)) => Some(s.clone()),
            _ => return Err(malformed("C must be a string or unit")),
        };
        let node = match v {
            Value::Atom(a) => CNode::Atom(a.clone()),
            Value::Record(m) => CNode::Record(
                m.iter()
                    .map(|(l, x)| Ok((l.clone(), Colored::from_explicit(x)?)))
                    .collect::<Result<_, RelalgError>>()?,
            ),
            Value::List(xs) => CNode::Set(
                xs.iter()
                    .map(Colored::from_explicit)
                    .collect::<Result<_, _>>()?,
            ),
            Value::Set(_) => return Err(malformed("explicit sets are encoded as lists")),
        };
        Ok(Colored { color, node })
    }
}

fn malformed(msg: &str) -> RelalgError {
    RelalgError::UpdateError(format!("malformed explicit colored value: {msg}"))
}

impl fmt::Display for Colored {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node {
            CNode::Atom(a) => write!(f, "{a}")?,
            CNode::Record(m) => {
                write!(f, "(")?;
                for (i, (l, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}: {v}")?;
                }
                write!(f, ")")?;
            }
            CNode::Set(xs) => {
                write!(f, "{{")?;
                for (i, v) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")?;
            }
        }
        match &self.color {
            Some(c) => write!(f, "^{c}"),
            None => write!(f, "^⊥"),
        }
    }
}

// ------------------------------------------------------- table queries

/// A colored *table*: a colored set of colored records of colored atoms,
/// with a relational schema for predicate evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoredTable {
    /// The relational schema of the records.
    pub schema: Schema,
    /// The table value (must be a `CNode::Set` of records).
    pub table: Colored,
}

impl ColoredTable {
    /// Builds a fully-distinctly-colored table from rows: cells get
    /// colors `b1, b2, …` row-major, tuples get `t1, t2, …`, the table
    /// gets `tab` — the annotation convention of Figure 2.
    pub fn figure2_style(schema: Schema, rows: &[Tuple]) -> Self {
        let mut cell = 0;
        let elems: Vec<Colored> = rows
            .iter()
            .enumerate()
            .map(|(ti, row)| {
                let fields: Vec<(String, Colored)> = schema
                    .attrs()
                    .iter()
                    .zip(row)
                    .map(|(a, v)| {
                        cell += 1;
                        (a.clone(), Colored::atom(v.clone(), format!("b{cell}")))
                    })
                    .collect();
                Colored::record(fields, Some(format!("t{}", ti + 1)))
            })
            .collect();
        ColoredTable {
            schema,
            table: Colored::set(elems, Some("tab".to_owned())),
        }
    }

    fn rows(&self) -> &[Colored] {
        match &self.table.node {
            CNode::Set(xs) => xs,
            _ => &[],
        }
    }

    fn row_tuple(&self, row: &Colored) -> Result<Tuple, RelalgError> {
        let CNode::Record(m) = &row.node else {
            return Err(malformed("table rows must be records"));
        };
        self.schema
            .attrs()
            .iter()
            .map(|a| {
                let cell = m.get(a).ok_or_else(|| malformed("missing attribute"))?;
                match &cell.node {
                    CNode::Atom(atom) => Ok(atom.clone()),
                    _ => Err(malformed("cells must be atomic")),
                }
            })
            .collect()
    }

    /// Selection σ_pred: keeps satisfying rows *in their entirety* —
    /// "a tuple that is preserved in its entirety (e.g. SQL's SELECT *)
    /// retains its provenance" — while the output table itself is newly
    /// constructed (⊥).
    pub fn select(&self, pred: &Pred) -> Result<ColoredTable, RelalgError> {
        let mut kept = Vec::new();
        for row in self.rows() {
            if pred.eval(&self.schema, &self.row_tuple(row)?)? {
                kept.push(row.clone());
            }
        }
        Ok(ColoredTable {
            schema: self.schema.clone(),
            table: Colored::set(kept, None),
        })
    }

    /// Projection π_cols: copies the selected cells (keeping their
    /// colors) into *newly constructed* (⊥) records inside a newly
    /// constructed (⊥) table — Figure 2's right-hand example.
    pub fn project(&self, cols: &[&str]) -> Result<ColoredTable, RelalgError> {
        let schema = Schema::new(cols.iter().map(|c| (*c).to_owned()))?;
        let mut out = Vec::new();
        for row in self.rows() {
            let CNode::Record(m) = &row.node else {
                return Err(malformed("table rows must be records"));
            };
            let fields: Vec<(String, Colored)> = cols
                .iter()
                .map(|c| {
                    let cell = m
                        .get(*c)
                        .cloned()
                        .ok_or_else(|| malformed("missing attribute"))?;
                    Ok(((*c).to_owned(), cell))
                })
                .collect::<Result<_, RelalgError>>()?;
            out.push(Colored::record(fields, None));
        }
        Ok(ColoredTable {
            schema,
            table: Colored::set(out, None),
        })
    }
}

// --------------------------------------------------- semantic conditions

/// A violation of one of the provenance conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConditionViolation {
    /// A color appears in the output on a different value than in the
    /// input (or does not appear in the input at all).
    Copying {
        /// The offending color.
        color: String,
        /// What the color is attached to in the output.
        output_value: Value,
        /// What it was attached to in the input (`None` = nowhere).
        input_value: Option<Value>,
    },
    /// Output and input parts share a color but differ in kind, or the
    /// atoms differ (kind preservation, the update-language condition).
    Kind {
        /// The offending color.
        color: String,
        /// Description of the mismatch.
        detail: String,
    },
}

/// Checks the **copying** condition: every color in the output appears in
/// the input *on the same value*. (Assumes input colors are distinct,
/// which [`Colored::distinct`] and [`ColoredTable::figure2_style`]
/// guarantee.)
pub fn check_copying(input: &Colored, output: &Colored) -> Result<(), ConditionViolation> {
    let input_map: BTreeMap<String, Value> = input.colored_parts().into_iter().collect();
    for (color, value) in output.colored_parts() {
        match input_map.get(&color) {
            Some(v) if *v == value => {}
            other => {
                return Err(ConditionViolation::Copying {
                    color,
                    output_value: value,
                    input_value: other.cloned(),
                })
            }
        }
    }
    Ok(())
}

/// Checks **kind preservation** (§3.1): parts sharing a color must have
/// the same kind, and equal atoms if atomic — but records may gain/lose
/// fields and sets may gain/lose elements.
pub fn check_kind_preservation(
    input: &Colored,
    output: &Colored,
) -> Result<(), ConditionViolation> {
    let mut input_map: BTreeMap<String, (&CNode, Value)> = BTreeMap::new();
    collect_nodes(input, &mut input_map);
    let mut output_map: BTreeMap<String, (&CNode, Value)> = BTreeMap::new();
    collect_nodes(output, &mut output_map);
    for (color, (onode, _)) in &output_map {
        if let Some((inode, _)) = input_map.get(color) {
            let ok = match (inode, onode) {
                (CNode::Atom(a), CNode::Atom(b)) => a == b,
                (CNode::Record(_), CNode::Record(_)) => true,
                (CNode::Set(_), CNode::Set(_)) => true,
                _ => false,
            };
            if !ok {
                return Err(ConditionViolation::Kind {
                    color: color.clone(),
                    detail: "kind or atom mismatch between input and output".to_owned(),
                });
            }
        } else {
            return Err(ConditionViolation::Kind {
                color: color.clone(),
                detail: "output color does not occur in input".to_owned(),
            });
        }
    }
    Ok(())
}

fn collect_nodes<'a>(c: &'a Colored, out: &mut BTreeMap<String, (&'a CNode, Value)>) {
    if let Some(col) = &c.color {
        out.insert(col.clone(), (&c.node, c.strip()));
    }
    match &c.node {
        CNode::Atom(_) => {}
        CNode::Record(m) => {
            for v in m.values() {
                collect_nodes(v, out);
            }
        }
        CNode::Set(xs) => {
            for v in xs {
                collect_nodes(v, out);
            }
        }
    }
}

/// Checks **color propagation** on a sample: the query commutes with the
/// (not necessarily injective) recoloring `f`.
pub fn check_color_propagation(
    query: impl Fn(&Colored) -> Colored,
    input: &Colored,
    f: &impl Fn(&str) -> String,
) -> bool {
    query(&input.recolor(f)) == query(input).recolor(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    /// Figure 2's R: {(A:10^b1, B:50^b2)^t1, (A:12^b3, B:50^b4)^t2}^tab.
    /// (The paper's ♭5, ♭6, ♭7 are our t1, t2, tab.)
    fn figure2_r() -> ColoredTable {
        ColoredTable::figure2_style(
            Schema::new(["A", "B"]).unwrap(),
            &[vec![int(10), int(50)], vec![int(12), int(50)]],
        )
    }

    #[test]
    fn figure2_selection_preserves_tuple_colors() {
        let r = figure2_r();
        let out = r.select(&Pred::col_eq_const("A", 10)).unwrap();
        // Output table is freshly constructed: ⊥.
        assert_eq!(out.table.color, None);
        let CNode::Set(rows) = &out.table.node else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        // The kept tuple retains its color t1, and its cells b1, b2.
        assert_eq!(rows[0].color.as_deref(), Some("t1"));
        assert_eq!(rows[0].to_string(), "(A: 10^b1, B: 50^b2)^t1");
    }

    #[test]
    fn figure2_projection_invents_tuples_but_copies_cells() {
        let r = figure2_r();
        let out = r.project(&["B"]).unwrap();
        assert_eq!(out.table.color, None);
        let CNode::Set(rows) = &out.table.node else {
            panic!()
        };
        // Two tuples that differ only in their cell colors: 50^b2 and
        // 50^b4, each inside a ⊥ record.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].to_string(), "(B: 50^b2)^⊥");
        assert_eq!(rows[1].to_string(), "(B: 50^b4)^⊥");
    }

    #[test]
    fn figure2_queries_satisfy_copying() {
        let r = figure2_r();
        let sel = r.select(&Pred::col_eq_const("A", 10)).unwrap();
        check_copying(&r.table, &sel.table).unwrap();
        let proj = r.project(&["B"]).unwrap();
        check_copying(&r.table, &proj.table).unwrap();
    }

    #[test]
    fn copying_rejects_color_swaps() {
        // An explicit query could attach b1 to a different value — e.g.
        // "we cannot have 7^bi in the output and 6^bi in the input."
        let input = Colored::set([Colored::atom(6, "bi")], Some("t".into()));
        let output = Colored::set([Colored::atom(7, "bi")], None);
        let err = check_copying(&input, &output).unwrap_err();
        assert!(matches!(err, ConditionViolation::Copying { .. }));
    }

    #[test]
    fn copying_rejects_preserved_tuple_with_changed_component() {
        // The paper's (A: 7^⊥, B: 8^bi)^bj example: the tuple keeps its
        // color bj but its A component changed — not a copy.
        let input = Colored::record(
            [("A", Colored::atom(6, "ba")), ("B", Colored::atom(8, "bi"))],
            Some("bj".into()),
        );
        let output = Colored::record(
            [
                ("A", Colored::invented_atom(7)),
                ("B", Colored::atom(8, "bi")),
            ],
            Some("bj".into()),
        );
        assert!(check_copying(&input, &output).is_err());
        // …but it IS kind-preserving: same record kind under bj.
        check_kind_preservation(&input, &output).unwrap();
    }

    #[test]
    fn bounded_inventing_counts() {
        let r = figure2_r();
        let proj = r.project(&["B"]).unwrap();
        // 1 table + 2 records invented; cell copies keep colors.
        assert_eq!(proj.table.invented_count(), 3);
    }

    #[test]
    fn selection_commutes_with_recoloring() {
        let r = figure2_r();
        let f = |c: &str| format!("{c}{c}"); // non-injective-ish rename
        let query = |t: &Colored| {
            ColoredTable {
                schema: r.schema.clone(),
                table: t.clone(),
            }
            .select(&Pred::col_eq_const("A", 10))
            .unwrap()
            .table
        };
        assert!(check_color_propagation(query, &r.table, &f));
    }

    #[test]
    fn color_comparing_query_violates_propagation() {
        // A query that branches on the color value is not
        // color-propagating.
        let input = Colored::set([Colored::atom(1, "x")], Some("t".into()));
        let query = |c: &Colored| {
            let CNode::Set(xs) = &c.node else { panic!() };
            let keep: Vec<Colored> = xs
                .iter()
                .filter(|e| e.color.as_deref() == Some("x")) // compares colors!
                .cloned()
                .collect();
            Colored::set(keep, None)
        };
        let f = |_: &str| "y".to_owned();
        assert!(!check_color_propagation(query, &input, &f));
    }

    #[test]
    fn explicit_representation_round_trips() {
        let r = figure2_r();
        let explicit = r.table.to_explicit();
        // Spot-check the encoding of 50^b2 as (V:50, C:"b2").
        let s = explicit.to_string();
        assert!(s.contains("(C: \"b2\", V: 50)"), "got {s}");
        let back = Colored::from_explicit(&explicit).unwrap();
        assert_eq!(back, r.table);
    }

    #[test]
    fn from_explicit_rejects_malformed() {
        assert!(Colored::from_explicit(&Value::int(3)).is_err());
        assert!(Colored::from_explicit(&Value::record([("V", Value::int(3))])).is_err());
        let bad_c = Value::record([("V", Value::int(3)), ("C", Value::int(9))]);
        assert!(Colored::from_explicit(&bad_c).is_err());
    }

    #[test]
    fn distinct_coloring_and_strip_round_trip() {
        let v = Value::set([
            Value::record([("A", Value::int(1))]),
            Value::record([("A", Value::int(2))]),
        ]);
        let c = Colored::distinct(&v, "c");
        assert_eq!(c.strip(), v);
        assert_eq!(c.invented_count(), 0);
        // Every part got a unique color: 1 set + 2 records + 2 atoms.
        assert_eq!(c.colored_parts().len(), 5);
    }
}
