//! Dependency provenance (§4.2, after Cheney–Ahmed–Acar \[22, 24\]).
//!
//! Program-slicing-style provenance: annotate each part of the output
//! with (a superset of) the input parts **on which it depends** — if an
//! input part is not in the annotation, changing it cannot change the
//! output part. This is *dependency-correctness*. It differs from
//! where-provenance: a selected tuple's cells depend on the cells the
//! selection predicate read, even though no value was copied from them —
//! the contrast the tests below make concrete (the default
//! where-provenance scheme is **not** dependency-correct).
//!
//! Minimal dependency annotations are uncomputable (\[24\]); this module
//! computes the standard sound over-approximation: per-cell dependency
//! sets, where tuple-existence dependencies (predicate and join-key
//! cells) are distributed over the tuple's cells.

use cdb_relalg::expr::{ProjSource, RaExpr};
use cdb_relalg::{Operand, RelalgError, Schema, Tuple};

use crate::colored::{ColoredDatabase, ColoredRelation, ColoredTuple, Colors};

/// Evaluates a positive RA expression with dependency-provenance
/// semantics: output cells carry the colors of every input cell they
/// depend on (value sources, selection-predicate cells, join cells).
pub fn eval_dependency(
    db: &ColoredDatabase,
    expr: &RaExpr,
) -> Result<ColoredRelation, RelalgError> {
    if !expr.is_positive() {
        return Err(RelalgError::UpdateError(
            "dependency provenance is defined for positive queries".to_owned(),
        ));
    }
    eval_inner(db, expr)
}

fn eval_inner(db: &ColoredDatabase, expr: &RaExpr) -> Result<ColoredRelation, RelalgError> {
    match expr {
        RaExpr::Scan(name) => Ok(db.get(name)?.clone()),
        RaExpr::ScanAs(name, alias) => {
            let base = db.get(name)?;
            let qualified = base.schema().qualified(alias);
            let mut out = ColoredRelation::empty(qualified);
            for t in base.tuples() {
                out.insert(t.clone())?;
            }
            Ok(out)
        }
        RaExpr::Select(e, pred) => {
            let input = eval_inner(db, e)?;
            let pred_cols = predicate_columns(input.schema(), pred)?;
            let mut out = ColoredRelation::empty(input.schema().clone());
            for t in input.tuples() {
                if pred.eval(input.schema(), &t.values)? {
                    let mut t = t.clone();
                    // The tuple's survival depends on the predicate
                    // cells: distribute those deps over every cell.
                    let mut pred_deps = Colors::new();
                    for &i in &pred_cols {
                        pred_deps.extend(t.colors[i].iter().cloned());
                    }
                    for cs in &mut t.colors {
                        cs.extend(pred_deps.iter().cloned());
                    }
                    out.insert(t)?;
                }
            }
            Ok(out)
        }
        RaExpr::Project(e, items) => {
            let input = eval_inner(db, e)?;
            let schema = Schema::new(items.iter().map(|i| i.name.clone()))?;
            let mut out = ColoredRelation::empty(schema);
            for t in input.tuples() {
                let mut values: Tuple = Vec::with_capacity(items.len());
                let mut colors: Vec<Colors> = Vec::with_capacity(items.len());
                for item in items {
                    match &item.source {
                        ProjSource::Col(c) => {
                            let i = input.schema().resolve(c)?;
                            values.push(t.values[i].clone());
                            colors.push(t.colors[i].clone());
                        }
                        ProjSource::Const(a) => {
                            values.push(a.clone());
                            colors.push(Colors::new());
                        }
                    }
                }
                out.insert(ColoredTuple { values, colors })?;
            }
            Ok(out)
        }
        RaExpr::Product(a, b) => {
            let left = eval_inner(db, a)?;
            let right = eval_inner(db, b)?;
            let schema = Schema::new(
                left.schema()
                    .attrs()
                    .iter()
                    .chain(right.schema().attrs())
                    .cloned(),
            )?;
            let mut out = ColoredRelation::empty(schema);
            for lt in left.tuples() {
                for rt in right.tuples() {
                    let mut values = lt.values.clone();
                    values.extend(rt.values.iter().cloned());
                    let mut colors = lt.colors.clone();
                    colors.extend(rt.colors.iter().cloned());
                    out.insert(ColoredTuple { values, colors })?;
                }
            }
            Ok(out)
        }
        RaExpr::NaturalJoin(a, b) => {
            let left = eval_inner(db, a)?;
            let right = eval_inner(db, b)?;
            let shared = cdb_relalg::eval::shared_attrs(left.schema(), right.schema());
            let right_kept: Vec<usize> = (0..right.schema().arity())
                .filter(|j| !shared.iter().any(|(_, sj)| sj == j))
                .collect();
            let attrs: Vec<String> = left
                .schema()
                .attrs()
                .iter()
                .cloned()
                .chain(
                    right_kept
                        .iter()
                        .map(|&j| right.schema().attrs()[j].clone()),
                )
                .collect();
            let mut out = ColoredRelation::empty(Schema::new(attrs)?);
            for lt in left.tuples() {
                for rt in right.tuples() {
                    if shared.iter().all(|&(i, j)| lt.values[i] == rt.values[j]) {
                        // The joined tuple's existence depends on both
                        // sides' join cells.
                        let mut join_deps = Colors::new();
                        for &(i, j) in &shared {
                            join_deps.extend(lt.colors[i].iter().cloned());
                            join_deps.extend(rt.colors[j].iter().cloned());
                        }
                        let mut values = lt.values.clone();
                        values.extend(right_kept.iter().map(|&j| rt.values[j].clone()));
                        let mut colors = lt.colors.clone();
                        colors.extend(right_kept.iter().map(|&j| rt.colors[j].clone()));
                        for cs in &mut colors {
                            cs.extend(join_deps.iter().cloned());
                        }
                        out.insert(ColoredTuple { values, colors })?;
                    }
                }
            }
            Ok(out)
        }
        RaExpr::Union(a, b) => {
            let left = eval_inner(db, a)?;
            let right = eval_inner(db, b)?;
            if !left.schema().union_compatible(right.schema()) {
                return Err(RelalgError::SchemaMismatch {
                    left: left.schema().attrs().to_vec(),
                    right: right.schema().attrs().to_vec(),
                });
            }
            let mut out = left;
            for t in right.tuples() {
                out.insert(t.clone())?;
            }
            Ok(out)
        }
        RaExpr::Rename(e, pairs) => {
            let input = eval_inner(db, e)?;
            let mut attrs: Vec<String> = input.schema().attrs().to_vec();
            for (old, new) in pairs {
                let i = input.schema().resolve(old)?;
                attrs[i] = new.clone();
            }
            let mut out = ColoredRelation::empty(Schema::new(attrs)?);
            for t in input.tuples() {
                out.insert(t.clone())?;
            }
            Ok(out)
        }
        RaExpr::Diff(_, _) => unreachable!("rejected by positivity check"),
    }
}

/// The column indices a predicate reads.
fn predicate_columns(schema: &Schema, pred: &cdb_relalg::Pred) -> Result<Vec<usize>, RelalgError> {
    fn walk(
        schema: &Schema,
        pred: &cdb_relalg::Pred,
        out: &mut Vec<usize>,
    ) -> Result<(), RelalgError> {
        match pred {
            cdb_relalg::Pred::True => Ok(()),
            cdb_relalg::Pred::Cmp { left, right, .. } => {
                for op in [left, right] {
                    if let Operand::Col(c) = op {
                        out.push(schema.resolve(c)?);
                    }
                }
                Ok(())
            }
            cdb_relalg::Pred::And(a, b) | cdb_relalg::Pred::Or(a, b) => {
                walk(schema, a, out)?;
                walk(schema, b, out)
            }
            cdb_relalg::Pred::Not(p) => walk(schema, p, out),
        }
    }
    let mut out = Vec::new();
    walk(schema, pred, &mut out)?;
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colored::{eval_colored, Scheme};
    use cdb_model::Atom;
    use cdb_relalg::eval::eval as plain_eval;
    use cdb_relalg::{Database, Pred, RaExpr, Relation};

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    fn db() -> Database {
        Database::new()
            .with(
                "R",
                Relation::table(
                    ["A", "B"],
                    [
                        vec![int(1), int(10)],
                        vec![int(2), int(20)],
                        vec![int(3), int(10)],
                    ],
                )
                .unwrap(),
            )
            .with(
                "S",
                Relation::table(["B", "C"], [vec![int(10), int(7)], vec![int(20), int(8)]])
                    .unwrap(),
            )
    }

    /// Dependency-correctness, checked dynamically: perturb each input
    /// cell in turn; every output cell that changes (or whose tuple
    /// appears/disappears) must carry the perturbed cell's color.
    fn check_dependency_correct(base: &Database, q: &RaExpr) {
        let cdb = ColoredDatabase::distinctly_colored(base);
        let annotated = eval_dependency(&cdb, q).unwrap();
        let base_out = plain_eval(base, q).unwrap();
        // Enumerate input cells with their colors.
        for (rel_name, rel) in base.iter() {
            let colored_rel = cdb.get(rel_name).unwrap();
            for (ti, t) in rel.tuples().iter().enumerate() {
                for ai in 0..rel.schema().arity() {
                    let color = colored_rel.tuples()[ti].colors[ai]
                        .iter()
                        .next()
                        .unwrap()
                        .clone();
                    // Perturb this one cell to a fresh value.
                    let mut db2 = base.clone();
                    {
                        let r = db2.get_mut(rel_name).unwrap();
                        let schema = r.schema().clone();
                        let mut rows: Vec<Tuple> = r.tuples().to_vec();
                        rows[ti][ai] = int(999);
                        *r = Relation::from_rows(schema, rows).unwrap();
                    }
                    let new_out = plain_eval(&db2, q).unwrap();
                    // Output tuples that vanished or changed: each of
                    // their cells' annotations must mention `color`.
                    for t_out in base_out.tuples() {
                        if new_out.contains(t_out) {
                            continue; // unchanged tuple: no constraint
                        }
                        let ct = annotated
                            .tuples()
                            .iter()
                            .find(|c| &c.values == t_out)
                            .expect("annotated output covers base output");
                        let mentioned = ct.colors.iter().any(|cs| cs.contains(&color));
                        assert!(
                            mentioned,
                            "output tuple {t_out:?} changed when perturbing \
                             {rel_name}[{ti}].{ai} ({color}), but no cell \
                             depends on it"
                        );
                    }
                    let _ = t;
                }
            }
        }
    }

    #[test]
    fn selection_dependencies_include_predicate_cells() {
        let base = db();
        let q = RaExpr::scan("R")
            .select(Pred::col_eq_const("B", 10))
            .project_cols(["A"]);
        let cdb = ColoredDatabase::distinctly_colored(&base);
        let dep = eval_dependency(&cdb, &q).unwrap();
        // Output (A=1) depends on R[0].A AND R[0].B (the predicate cell).
        let cs = dep.cell_colors(&vec![int(1)], "A").unwrap();
        assert!(cs.contains("R.b1"), "value source");
        assert!(cs.contains("R.b2"), "predicate cell");
        // Where-provenance (default scheme) carries only the copy.
        let wp = eval_colored(&cdb, &q, &Scheme::Default).unwrap();
        let wcs = wp.cell_colors(&vec![int(1)], "A").unwrap();
        assert!(wcs.contains("R.b1"));
        assert!(!wcs.contains("R.b2"), "where-provenance ≠ dependency");
    }

    #[test]
    fn join_dependencies_include_both_join_cells() {
        let base = db();
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .project_cols(["C"]);
        let cdb = ColoredDatabase::distinctly_colored(&base);
        let dep = eval_dependency(&cdb, &q).unwrap();
        // C=7 joins via B=10 (R rows 1 and 3, S row 1): its deps include
        // the B cells of both sides.
        let cs = dep.cell_colors(&vec![int(7)], "C").unwrap();
        assert!(cs.contains("S.b2"), "C's own source");
        assert!(cs.contains("S.b1"), "S join cell");
        assert!(cs.contains("R.b2"), "R join cell (row 1)");
    }

    #[test]
    fn dependency_annotations_are_dependency_correct() {
        let base = db();
        for q in [
            RaExpr::scan("R").select(Pred::col_eq_const("B", 10)),
            RaExpr::scan("R")
                .select(Pred::col_eq_const("B", 10))
                .project_cols(["A"]),
            RaExpr::scan("R").natural_join(RaExpr::scan("S")),
            RaExpr::scan("R")
                .natural_join(RaExpr::scan("S"))
                .project_cols(["C"]),
            RaExpr::scan("R")
                .project_cols(["B"])
                .union(RaExpr::scan("S").project_cols(["B"])),
        ] {
            check_dependency_correct(&base, &q);
        }
    }

    /// The §4.2 contrast: the *where-provenance* default scheme is NOT
    /// dependency-correct — perturbing a predicate cell changes the
    /// output, yet no output cell mentions it.
    #[test]
    fn where_provenance_is_not_dependency_correct() {
        let base = db();
        let q = RaExpr::scan("R")
            .select(Pred::col_eq_const("B", 10))
            .project_cols(["A"]);
        let cdb = ColoredDatabase::distinctly_colored(&base);
        let wp = eval_colored(&cdb, &q, &Scheme::Default).unwrap();
        // Perturb R[0].B (color R.b2): tuple (A=1) vanishes from output.
        let mut db2 = base.clone();
        {
            let r = db2.get_mut("R").unwrap();
            let schema = r.schema().clone();
            let mut rows: Vec<Tuple> = r.tuples().to_vec();
            rows[0][1] = int(999);
            *r = Relation::from_rows(schema, rows).unwrap();
        }
        let new_out = plain_eval(&db2, &q).unwrap();
        assert!(!new_out.contains(&vec![int(1)]), "output changed");
        let cs = wp.cell_colors(&vec![int(1)], "A").unwrap();
        assert!(
            !cs.contains("R.b2"),
            "…but where-provenance never mentions R.b2"
        );
    }
}
