//! Block annotations and the color algebra (MONDRIAN, \[40, 41\]).
//!
//! §2.1: "\[40\] provides a system for attaching annotations to *sets of
//! base values occurring in the same tuple*. … an annotation on a base
//! value should be regarded as a curator's opinion of the validity of the
//! value and … is better modeled as an annotation on the relationship
//! between the base value and the key for the tuple containing that
//! value."
//!
//! A [`Block`] colors a set of attribute positions within one tuple. The
//! color algebra below queries both values and colors; the *explicit
//! relational representation* (one row per tuple-block with an indicator
//! column per attribute plus a color column) is provided, together with
//! round-trips — the representation against which \[40, 41\] prove the
//! color algebra expressively complete.

use std::collections::BTreeSet;
use std::fmt;

use cdb_model::Atom;
use cdb_relalg::{Pred, RelalgError, Relation, Schema, Tuple};

/// A block: a color on a set of attributes of one tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Block {
    /// The attributes covered by this block.
    pub attrs: BTreeSet<String>,
    /// The block's color.
    pub color: String,
}

impl Block {
    /// Builds a block.
    pub fn new<S: Into<String>>(
        attrs: impl IntoIterator<Item = S>,
        color: impl Into<String>,
    ) -> Self {
        Block {
            attrs: attrs.into_iter().map(Into::into).collect(),
            color: color.into(),
        }
    }
}

/// A tuple with its blocks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockTuple {
    /// The tuple values.
    pub values: Tuple,
    /// The blocks on this tuple.
    pub blocks: Vec<Block>,
}

/// A block-annotated relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRelation {
    schema: Schema,
    tuples: Vec<BlockTuple>,
}

impl BlockRelation {
    /// An empty block relation.
    pub fn empty(schema: Schema) -> Self {
        BlockRelation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Builds from tuples, merging blocks of equal-valued tuples.
    pub fn from_tuples(
        schema: Schema,
        tuples: impl IntoIterator<Item = BlockTuple>,
    ) -> Result<Self, RelalgError> {
        let mut rel = BlockRelation::empty(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[BlockTuple] {
        &self.tuples
    }

    /// Inserts a tuple, validating block attributes and merging into an
    /// existing equal-valued tuple.
    pub fn insert(&mut self, t: BlockTuple) -> Result<(), RelalgError> {
        if t.values.len() != self.schema.arity() {
            return Err(RelalgError::UpdateError(
                "arity mismatch inserting block tuple".to_owned(),
            ));
        }
        for b in &t.blocks {
            for a in &b.attrs {
                self.schema.resolve(a)?;
            }
        }
        if let Some(existing) = self.tuples.iter_mut().find(|e| e.values == t.values) {
            for b in t.blocks {
                if !existing.blocks.contains(&b) {
                    existing.blocks.push(b);
                }
            }
            existing.blocks.sort();
        } else {
            let mut t = t;
            t.blocks.sort();
            self.tuples.push(t);
        }
        Ok(())
    }

    // ------------------------------------------------- color algebra

    /// σ on values: keeps tuples satisfying `pred`, with their blocks.
    pub fn select_values(&self, pred: &Pred) -> Result<BlockRelation, RelalgError> {
        let mut out = BlockRelation::empty(self.schema.clone());
        for t in &self.tuples {
            if pred.eval(&self.schema, &t.values)? {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// σ on colors: keeps tuples having at least one block that matches
    /// `color` (if given) and covers `attr` (if given).
    pub fn select_color(
        &self,
        color: Option<&str>,
        attr: Option<&str>,
    ) -> Result<BlockRelation, RelalgError> {
        if let Some(a) = attr {
            self.schema.resolve(a)?;
        }
        let mut out = BlockRelation::empty(self.schema.clone());
        for t in &self.tuples {
            let hit = t.blocks.iter().any(|b| {
                color.is_none_or(|c| b.color == c) && attr.is_none_or(|a| b.attrs.contains(a))
            });
            if hit {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// π: projects onto `cols`; blocks are *clipped* to the surviving
    /// attributes and dropped when nothing survives.
    pub fn project(&self, cols: &[&str]) -> Result<BlockRelation, RelalgError> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|c| self.schema.resolve(c))
            .collect::<Result<_, _>>()?;
        let schema = Schema::new(cols.iter().map(|c| (*c).to_owned()))?;
        let keep: BTreeSet<String> = cols.iter().map(|c| (*c).to_owned()).collect();
        let mut out = BlockRelation::empty(schema);
        for t in &self.tuples {
            let values: Tuple = idx.iter().map(|&i| t.values[i].clone()).collect();
            let blocks: Vec<Block> = t
                .blocks
                .iter()
                .filter_map(|b| {
                    let attrs: BTreeSet<String> = b.attrs.intersection(&keep).cloned().collect();
                    if attrs.is_empty() {
                        None
                    } else {
                        Some(Block {
                            attrs,
                            color: b.color.clone(),
                        })
                    }
                })
                .collect();
            out.insert(BlockTuple { values, blocks })?;
        }
        Ok(out)
    }

    /// ⋈: natural join; each joined tuple carries both sides' blocks
    /// (shared attributes keep the left position's name; right blocks on
    /// shared attributes are re-pointed at it, merging the curators'
    /// opinions of the identified cells).
    pub fn natural_join(&self, other: &BlockRelation) -> Result<BlockRelation, RelalgError> {
        let shared = cdb_relalg::eval::shared_attrs(&self.schema, &other.schema);
        let right_kept: Vec<usize> = (0..other.schema.arity())
            .filter(|j| !shared.iter().any(|(_, sj)| sj == j))
            .collect();
        let attrs: Vec<String> = self
            .schema
            .attrs()
            .iter()
            .cloned()
            .chain(right_kept.iter().map(|&j| other.schema.attrs()[j].clone()))
            .collect();
        let mut out = BlockRelation::empty(Schema::new(attrs)?);
        for lt in &self.tuples {
            for rt in &other.tuples {
                if shared.iter().all(|&(i, j)| lt.values[i] == rt.values[j]) {
                    let mut values = lt.values.clone();
                    values.extend(right_kept.iter().map(|&j| rt.values[j].clone()));
                    let mut blocks = lt.blocks.clone();
                    for b in &rt.blocks {
                        // Re-point shared attributes at the left name.
                        let attrs: BTreeSet<String> = b
                            .attrs
                            .iter()
                            .map(|a| {
                                let j = other.schema.resolve(a).expect("validated");
                                match shared.iter().find(|&&(_, sj)| sj == j) {
                                    Some(&(i, _)) => self.schema.attrs()[i].clone(),
                                    None => a.clone(),
                                }
                            })
                            .collect();
                        blocks.push(Block {
                            attrs,
                            color: b.color.clone(),
                        });
                    }
                    out.insert(BlockTuple { values, blocks })?;
                }
            }
        }
        Ok(out)
    }

    /// ∪: union, merging blocks of equal tuples.
    pub fn union(&self, other: &BlockRelation) -> Result<BlockRelation, RelalgError> {
        if !self.schema.union_compatible(&other.schema) {
            return Err(RelalgError::SchemaMismatch {
                left: self.schema.attrs().to_vec(),
                right: other.schema.attrs().to_vec(),
            });
        }
        let mut out = self.clone();
        for t in &other.tuples {
            out.insert(t.clone())?;
        }
        Ok(out)
    }

    // -------------------------------------- explicit representation

    /// The explicit relational representation: one row per
    /// `(tuple, block)` pair — the original attributes, then one Boolean
    /// indicator per attribute (`in_A`, …) saying whether the block
    /// covers it, then the block color. Tuples with no blocks produce one
    /// row with all indicators false and a unit color.
    pub fn to_explicit(&self) -> Result<Relation, RelalgError> {
        let mut attrs: Vec<String> = self.schema.attrs().to_vec();
        for a in self.schema.attrs() {
            attrs.push(format!("in_{a}"));
        }
        attrs.push("color".to_owned());
        let mut out = Relation::empty(Schema::new(attrs)?);
        for t in &self.tuples {
            if t.blocks.is_empty() {
                let mut row = t.values.clone();
                row.extend(self.schema.attrs().iter().map(|_| Atom::Bool(false)));
                row.push(Atom::Unit);
                out.insert(row)?;
            }
            for b in &t.blocks {
                let mut row = t.values.clone();
                row.extend(
                    self.schema
                        .attrs()
                        .iter()
                        .map(|a| Atom::Bool(b.attrs.contains(a))),
                );
                row.push(Atom::Str(b.color.clone()));
                out.insert(row)?;
            }
        }
        Ok(out)
    }

    /// Rebuilds a block relation from its explicit representation.
    pub fn from_explicit(explicit: &Relation, arity: usize) -> Result<Self, RelalgError> {
        let schema = Schema::new(explicit.schema().attrs()[..arity].to_vec())?;
        let mut out = BlockRelation::empty(schema.clone());
        for row in explicit.tuples() {
            let values = row[..arity].to_vec();
            let color = &row[row.len() - 1];
            let blocks = match color {
                Atom::Unit => Vec::new(),
                Atom::Str(c) => {
                    let attrs: BTreeSet<String> = schema
                        .attrs()
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| row[arity + i] == Atom::Bool(true))
                        .map(|(_, a)| a.clone())
                        .collect();
                    vec![Block {
                        attrs,
                        color: c.clone(),
                    }]
                }
                other => {
                    return Err(RelalgError::TypeError(format!(
                        "color column must be string or unit, got {other}"
                    )))
                }
            };
            out.insert(BlockTuple { values, blocks })?;
        }
        Ok(out)
    }
}

impl fmt::Display for BlockRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            let cells: Vec<String> = t.values.iter().map(|v| v.to_string()).collect();
            write!(f, "  {}", cells.join(" | "))?;
            for b in &t.blocks {
                let attrs: Vec<&str> = b.attrs.iter().map(String::as_str).collect();
                write!(f, "  [{} on {}]", b.color, attrs.join(","))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    /// A gene table where a curator has annotated the relationship
    /// between the key (gene) and the function column.
    fn genes() -> BlockRelation {
        BlockRelation::from_tuples(
            Schema::new(["gene", "organism", "function"]).unwrap(),
            [
                BlockTuple {
                    values: vec![
                        Atom::Str("ywhah".into()),
                        Atom::Str("human".into()),
                        Atom::Str("activator".into()),
                    ],
                    blocks: vec![
                        Block::new(["gene", "function"], "dubious"),
                        Block::new(["organism"], "verified"),
                    ],
                },
                BlockTuple {
                    values: vec![
                        Atom::Str("ywha1".into()),
                        Atom::Str("human".into()),
                        Atom::Str("unknown".into()),
                    ],
                    blocks: vec![Block::new(["gene"], "verified")],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_color_filters_by_block() {
        let g = genes();
        let dubious = g.select_color(Some("dubious"), None).unwrap();
        assert_eq!(dubious.tuples().len(), 1);
        let verified_gene = g.select_color(Some("verified"), Some("gene")).unwrap();
        assert_eq!(verified_gene.tuples().len(), 1);
        assert_eq!(
            verified_gene.tuples()[0].values[0],
            Atom::Str("ywha1".into())
        );
        let any_on_function = g.select_color(None, Some("function")).unwrap();
        assert_eq!(any_on_function.tuples().len(), 1);
    }

    #[test]
    fn projection_clips_blocks() {
        let g = genes();
        let p = g.project(&["gene", "organism"]).unwrap();
        // The dubious block on {gene, function} clips to {gene}.
        let t0 = &p.tuples()[0];
        assert!(t0
            .blocks
            .iter()
            .any(|b| b.color == "dubious" && b.attrs.len() == 1 && b.attrs.contains("gene")));
        // Projecting away everything a block covers drops it.
        let q = g.project(&["organism"]).unwrap();
        // Equal-valued tuples merged; the only blocks left mention organism.
        assert!(q
            .tuples()
            .iter()
            .flat_map(|t| &t.blocks)
            .all(|b| b.attrs.contains("organism")));
    }

    #[test]
    fn join_carries_blocks_from_both_sides() {
        let g = genes();
        let ref_rel = BlockRelation::from_tuples(
            Schema::new(["organism", "taxon"]).unwrap(),
            [BlockTuple {
                values: vec![Atom::Str("human".into()), int(9606)],
                blocks: vec![Block::new(["organism", "taxon"], "ncbi")],
            }],
        )
        .unwrap();
        let j = g.natural_join(&ref_rel).unwrap();
        assert_eq!(j.tuples().len(), 2);
        for t in j.tuples() {
            assert!(t.blocks.iter().any(|b| b.color == "ncbi"));
        }
    }

    #[test]
    fn union_merges_blocks_of_equal_tuples() {
        let a = BlockRelation::from_tuples(
            Schema::new(["x"]).unwrap(),
            [BlockTuple {
                values: vec![int(1)],
                blocks: vec![Block::new(["x"], "c1")],
            }],
        )
        .unwrap();
        let b = BlockRelation::from_tuples(
            Schema::new(["x"]).unwrap(),
            [BlockTuple {
                values: vec![int(1)],
                blocks: vec![Block::new(["x"], "c2")],
            }],
        )
        .unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.tuples().len(), 1);
        assert_eq!(u.tuples()[0].blocks.len(), 2);
    }

    #[test]
    fn explicit_representation_round_trips() {
        let g = genes();
        let e = g.to_explicit().unwrap();
        assert_eq!(
            e.schema().attrs(),
            [
                "gene",
                "organism",
                "function",
                "in_gene",
                "in_organism",
                "in_function",
                "color"
            ]
        );
        assert_eq!(e.len(), 3, "one row per (tuple, block)");
        let back = BlockRelation::from_explicit(&e, 3).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn explicit_representation_supports_ra_queries() {
        // The completeness result of [40, 41]: color-algebra queries can
        // be answered as RA over the explicit representation. Check one:
        // select_color("verified", Some("gene")) ≡
        //   π_values(σ_{color='verified' ∧ in_gene}(explicit)).
        use cdb_relalg::{Database, RaExpr};
        let g = genes();
        let e = g.to_explicit().unwrap();
        let db = Database::new().with("E", e);
        let q = RaExpr::scan("E")
            .select(
                Pred::col_eq_const("color", "verified").and(Pred::col_eq_const("in_gene", true)),
            )
            .project_cols(["gene", "organism", "function"]);
        let via_explicit = cdb_relalg::eval::eval(&db, &q).unwrap();
        let direct = g.select_color(Some("verified"), Some("gene")).unwrap();
        let direct_values: std::collections::BTreeSet<Tuple> =
            direct.tuples().iter().map(|t| t.values.clone()).collect();
        assert_eq!(via_explicit.tuple_set(), direct_values);
    }

    #[test]
    fn tuples_without_blocks_survive_the_round_trip() {
        let r = BlockRelation::from_tuples(
            Schema::new(["x"]).unwrap(),
            [BlockTuple {
                values: vec![int(1)],
                blocks: vec![],
            }],
        )
        .unwrap();
        let e = r.to_explicit().unwrap();
        assert_eq!(e.len(), 1);
        let back = BlockRelation::from_explicit(&e, 1).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn invalid_block_attrs_rejected() {
        let mut r = BlockRelation::empty(Schema::new(["x"]).unwrap());
        let t = BlockTuple {
            values: vec![int(1)],
            blocks: vec![Block::new(["nope"], "c")],
        };
        assert!(r.insert(t).is_err());
    }
}
