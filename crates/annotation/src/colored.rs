//! Flat colored relations and the three annotation-propagation schemes.
//!
//! Each *cell* of a tuple carries a (possibly empty) set of colors; the
//! empty set is the paper's ⊥ — "the value does not originate from the
//! input, but was constructed by the query itself". Evaluation follows
//! §2.1:
//!
//! * **Default**: an output cell gets exactly the colors of the input
//!   cell it was copied from. This breaks the principle of substitution
//!   of equals for equals: the paper's Q1 and Q2 return the same ordinary
//!   relation but different colored relations.
//! * **DefaultAll**: "any two base values that are explicitly found to be
//!   equal in a selection or that are implicitly identified in a union or
//!   natural join have their annotations merged" — restoring invariance
//!   under the Q1/Q2 rewrite.
//! * **Custom**: propagation is steered explicitly, per output attribute,
//!   from a chosen list of source columns (the `PROPAGATE` clauses of
//!   pSQL/DBNotes).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cdb_model::Atom;
use cdb_relalg::exec::{extract_keys, join_matches, recognize_equi_join, ExecConfig};
use cdb_relalg::expr::{ProjSource, RaExpr};
use cdb_relalg::{Operand, RelalgError, Relation, Schema, Tuple};

/// An annotation color (the paper's ♭1, ♭2, …).
pub type Color = String;

/// A set of colors. Empty = ⊥ (constructed by the query).
pub type Colors = BTreeSet<Color>;

/// The propagation scheme to evaluate under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scheme {
    /// Propagate along copies only.
    Default,
    /// Additionally merge colors across explicitly-equated cells.
    DefaultAll,
    /// Steer propagation explicitly: for each output attribute of the
    /// *outermost projection*, take colors from these source columns
    /// (resolved against the projection's input). Attributes not listed
    /// fall back to the default scheme.
    Custom(BTreeMap<String, Vec<String>>),
}

/// A tuple whose cells carry color sets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColoredTuple {
    /// The cell values.
    pub values: Tuple,
    /// The per-cell color sets (same arity as `values`).
    pub colors: Vec<Colors>,
}

impl ColoredTuple {
    /// A tuple with all cells uncolored.
    pub fn plain(values: Tuple) -> Self {
        let n = values.len();
        ColoredTuple {
            values,
            colors: vec![Colors::new(); n],
        }
    }

    /// A tuple with one color per cell.
    pub fn with_colors<C: Into<Color>>(values: Tuple, colors: Vec<C>) -> Self {
        assert_eq!(values.len(), colors.len());
        ColoredTuple {
            values,
            colors: colors
                .into_iter()
                .map(|c| [c.into()].into_iter().collect())
                .collect(),
        }
    }
}

/// A relation whose cells carry color sets. Set semantics: tuples with
/// equal values are merged cell-wise (their color sets union), matching
/// the paper's observation that duplicate tuples differing only in
/// annotation are "equivalent to one tuple annotated with a set of
/// colors".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoredRelation {
    schema: Schema,
    tuples: Vec<ColoredTuple>,
    /// Value-to-position index for O(log n) duplicate merging.
    index: BTreeMap<Tuple, usize>,
}

impl ColoredRelation {
    /// An empty colored relation.
    pub fn empty(schema: Schema) -> Self {
        ColoredRelation {
            schema,
            tuples: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Builds from colored tuples, merging duplicates.
    pub fn from_tuples(
        schema: Schema,
        tuples: impl IntoIterator<Item = ColoredTuple>,
    ) -> Result<Self, RelalgError> {
        let mut rel = ColoredRelation::empty(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Colors every cell of an ordinary relation with a distinct color
    /// `♭1, ♭2, …` (row-major), as in the paper's examples. Duplicate
    /// rows merge (set semantics), their colors uniting cell-wise.
    pub fn distinctly_colored(rel: &Relation) -> Self {
        let mut n = 0;
        let mut out = ColoredRelation::empty(rel.schema().clone());
        for t in rel.tuples() {
            let colors = t
                .iter()
                .map(|_| {
                    n += 1;
                    format!("b{n}")
                })
                .collect::<Vec<_>>();
            out.insert(ColoredTuple::with_colors(t.clone(), colors))
                .expect("schema matches");
        }
        out
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[ColoredTuple] {
        &self.tuples
    }

    /// Inserts, merging color sets into an existing equal-valued tuple.
    pub fn insert(&mut self, t: ColoredTuple) -> Result<(), RelalgError> {
        if t.values.len() != self.schema.arity() {
            return Err(RelalgError::UpdateError(format!(
                "arity mismatch inserting into colored relation {}",
                self.schema
            )));
        }
        match self.index.get(&t.values) {
            Some(&pos) => {
                let existing = &mut self.tuples[pos];
                for (ec, tc) in existing.colors.iter_mut().zip(t.colors) {
                    ec.extend(tc);
                }
            }
            None => {
                self.index.insert(t.values.clone(), self.tuples.len());
                self.tuples.push(t);
            }
        }
        Ok(())
    }

    /// The colors on the cell `(tuple, attr)`, if the tuple is present.
    pub fn cell_colors(&self, values: &Tuple, attr: &str) -> Option<&Colors> {
        let i = self.schema.resolve(attr).ok()?;
        self.index
            .get(values)
            .map(|&pos| &self.tuples[pos].colors[i])
    }

    /// Every cell on which a given color appears: `(tuple values, attr)`.
    pub fn occurrences(&self, color: &str) -> Vec<(Tuple, String)> {
        let mut out = Vec::new();
        for t in &self.tuples {
            for (i, cs) in t.colors.iter().enumerate() {
                if cs.contains(color) {
                    out.push((t.values.clone(), self.schema.attrs()[i].clone()));
                }
            }
        }
        out
    }

    /// Drops colors, yielding the ordinary relation.
    pub fn to_relation(&self) -> Relation {
        let mut rel = Relation::empty(self.schema.clone());
        for t in &self.tuples {
            rel.insert(t.values.clone()).expect("arity invariant");
        }
        rel
    }

    fn with_schema(mut self, schema: Schema) -> Self {
        debug_assert_eq!(schema.arity(), self.schema.arity());
        self.schema = schema;
        self
    }
}

impl fmt::Display for ColoredRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            let cells: Vec<String> = t
                .values
                .iter()
                .zip(&t.colors)
                .map(|(v, cs)| {
                    if cs.is_empty() {
                        format!("{v}⊥")
                    } else {
                        format!("{v}{}", cs.iter().cloned().collect::<Vec<_>>().join(","))
                    }
                })
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// A database of colored relations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColoredDatabase {
    relations: BTreeMap<String, ColoredRelation>,
}

impl ColoredDatabase {
    /// An empty colored database.
    pub fn new() -> Self {
        ColoredDatabase::default()
    }

    /// Adds (or replaces) a relation, builder-style.
    pub fn with(mut self, name: impl Into<String>, rel: ColoredRelation) -> Self {
        self.relations.insert(name.into(), rel);
        self
    }

    /// Adds (or replaces) a relation.
    pub fn insert(&mut self, name: impl Into<String>, rel: ColoredRelation) {
        self.relations.insert(name.into(), rel);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Result<&ColoredRelation, RelalgError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelalgError::NoSuchRelation(name.to_owned()))
    }

    /// Colors every cell of every relation distinctly (prefixing colors
    /// with the relation name to keep them globally unique). Duplicate
    /// rows merge (set semantics).
    pub fn distinctly_colored(db: &cdb_relalg::Database) -> Self {
        let mut out = ColoredDatabase::new();
        for (name, rel) in db.iter() {
            let mut n = 0;
            let mut crel = ColoredRelation::empty(rel.schema().clone());
            for t in rel.tuples() {
                let colors = t
                    .iter()
                    .map(|_| {
                        n += 1;
                        format!("{name}.b{n}")
                    })
                    .collect::<Vec<_>>();
                crel.insert(ColoredTuple::with_colors(t.clone(), colors))
                    .expect("schema matches");
            }
            out.insert(name.to_owned(), crel);
        }
        out
    }
}

/// Evaluates a positive RA expression over a colored database under the
/// given propagation scheme, with the naive nested-loop interpreter.
pub fn eval_colored(
    db: &ColoredDatabase,
    expr: &RaExpr,
    scheme: &Scheme,
) -> Result<ColoredRelation, RelalgError> {
    eval_colored_cfg(db, expr, scheme, None)
}

/// Evaluates under the given propagation scheme with the physical
/// engine of [`cdb_relalg::exec`]: natural joins and recognized
/// equi-joins run as (optionally parallel) hash joins. Color
/// propagation — including the DEFAULT-ALL merging across join columns
/// and equated cells — is applied per matched pair exactly as in the
/// naive interpreter, so the two produce identical colored relations.
pub fn eval_colored_with(
    db: &ColoredDatabase,
    expr: &RaExpr,
    scheme: &Scheme,
    cfg: &ExecConfig,
) -> Result<ColoredRelation, RelalgError> {
    eval_colored_cfg(db, expr, scheme, Some(cfg))
}

fn eval_colored_cfg(
    db: &ColoredDatabase,
    expr: &RaExpr,
    scheme: &Scheme,
    cfg: Option<&ExecConfig>,
) -> Result<ColoredRelation, RelalgError> {
    if !expr.is_positive() {
        return Err(RelalgError::UpdateError(
            "annotation propagation is defined for positive queries".to_owned(),
        ));
    }
    Ok(eval_inner(db, expr, scheme, true, cfg)?.0)
}

/// Per-column *guaranteed constants*: column index → the constant the
/// subquery's predicates force that column to equal on every result
/// tuple. This is how DEFAULT-ALL knows that Q2's emitted `50 AS B` is
/// "explicitly found to be equal" to `R.B` and must inherit its colors —
/// the merging is syntactic (driven by the query's equalities), not
/// value-based, so queries that merely *happen* to produce equal values
/// do not leak annotations.
type GuaranteedConsts = BTreeMap<usize, Atom>;

fn eval_inner(
    db: &ColoredDatabase,
    expr: &RaExpr,
    scheme: &Scheme,
    outermost: bool,
    cfg: Option<&ExecConfig>,
) -> Result<(ColoredRelation, GuaranteedConsts), RelalgError> {
    let hash = cfg.filter(|c| c.hash_join);
    match expr {
        RaExpr::Scan(name) => Ok((db.get(name)?.clone(), GuaranteedConsts::new())),
        RaExpr::ScanAs(name, alias) => {
            let base = db.get(name)?;
            let schema = base.schema().qualified(alias);
            Ok((base.clone().with_schema(schema), GuaranteedConsts::new()))
        }
        RaExpr::Select(e, pred) => {
            // Physical path: σ[a.x = b.y ∧ …](A × B) as a hash join.
            // The guaranteed-constant and equality-class bookkeeping is
            // identical to the product-then-select path; only the pair
            // enumeration changes.
            if let (Some(cfg), RaExpr::Product(a, b)) = (hash, e.as_ref()) {
                let (left, gcl) = eval_inner(db, a, scheme, false, Some(cfg))?;
                let (right, gcr) = eval_inner(db, b, scheme, false, Some(cfg))?;
                let offset = left.schema.arity();
                let schema = Schema::new(
                    left.schema
                        .attrs()
                        .iter()
                        .chain(right.schema.attrs())
                        .cloned(),
                )?;
                let mut gc = gcl;
                for (i, a) in gcr {
                    gc.insert(i + offset, a);
                }
                let classes = equality_classes(&schema, pred, &mut gc)?;
                if let Some(ej) = recognize_equi_join(&schema, offset, pred) {
                    let lcols: Vec<usize> = ej.keys.iter().map(|&(l, _)| l).collect();
                    let rcols: Vec<usize> = ej.keys.iter().map(|&(_, r)| r).collect();
                    let build = extract_keys(right.tuples.iter().map(|t| &t.values), &rcols);
                    let probe = extract_keys(left.tuples.iter().map(|t| &t.values), &lcols);
                    let m = join_matches(&build, &probe, cfg);
                    let mut out = ColoredRelation::empty(schema);
                    for &(li, ri) in &m.pairs {
                        let (lt, rt) = (&left.tuples[li], &right.tuples[ri]);
                        let mut values = lt.values.clone();
                        values.extend(rt.values.iter().cloned());
                        if !pred.eval(&out.schema, &values)? {
                            continue;
                        }
                        let mut colors = lt.colors.clone();
                        colors.extend(rt.colors.iter().cloned());
                        let mut t = ColoredTuple { values, colors };
                        if matches!(scheme, Scheme::DefaultAll) {
                            merge_classes(&classes, &mut t);
                        }
                        out.insert(t)?;
                    }
                    return Ok((out, gc));
                }
                // Not an equi-join: nested-loop over the evaluated
                // sides, then filter.
                let mut out = ColoredRelation::empty(schema);
                for lt in &left.tuples {
                    for rt in &right.tuples {
                        let mut values = lt.values.clone();
                        values.extend(rt.values.iter().cloned());
                        if !pred.eval(&out.schema, &values)? {
                            continue;
                        }
                        let mut colors = lt.colors.clone();
                        colors.extend(rt.colors.iter().cloned());
                        let mut t = ColoredTuple { values, colors };
                        if matches!(scheme, Scheme::DefaultAll) {
                            merge_classes(&classes, &mut t);
                        }
                        out.insert(t)?;
                    }
                }
                return Ok((out, gc));
            }
            let (input, mut gc) = eval_inner(db, e, scheme, false, cfg)?;
            let classes = equality_classes(&input.schema, pred, &mut gc)?;
            let mut out = ColoredRelation::empty(input.schema.clone());
            for t in &input.tuples {
                if pred.eval(&input.schema, &t.values)? {
                    let mut t = t.clone();
                    if matches!(scheme, Scheme::DefaultAll) {
                        merge_classes(&classes, &mut t);
                    }
                    out.insert(t)?;
                }
            }
            Ok((out, gc))
        }
        RaExpr::Project(e, items) => {
            let (input, gc_in) = eval_inner(db, e, scheme, false, cfg)?;
            let schema = Schema::new(items.iter().map(|i| i.name.clone()))?;
            let mut gc_out = GuaranteedConsts::new();
            for (o, item) in items.iter().enumerate() {
                match &item.source {
                    ProjSource::Col(c) => {
                        let i = input.schema.resolve(c)?;
                        if let Some(a) = gc_in.get(&i) {
                            gc_out.insert(o, a.clone());
                        }
                    }
                    ProjSource::Const(a) => {
                        gc_out.insert(o, a.clone());
                    }
                }
            }
            let mut out = ColoredRelation::empty(schema);
            for t in &input.tuples {
                let mut values: Tuple = Vec::with_capacity(items.len());
                let mut colors: Vec<Colors> = Vec::with_capacity(items.len());
                for item in items {
                    let steered = match scheme {
                        Scheme::Custom(steer) if outermost => steer.get(&item.name).map(|srcs| {
                            let mut cs = Colors::new();
                            for s in srcs {
                                if let Ok(j) = input.schema.resolve(s) {
                                    cs.extend(t.colors[j].iter().cloned());
                                }
                            }
                            cs
                        }),
                        _ => None,
                    };
                    match &item.source {
                        ProjSource::Col(c) => {
                            let i = input.schema.resolve(c)?;
                            values.push(t.values[i].clone());
                            colors.push(steered.unwrap_or_else(|| t.colors[i].clone()));
                        }
                        ProjSource::Const(a) => {
                            values.push(a.clone());
                            let cs = steered.unwrap_or_else(|| {
                                if matches!(scheme, Scheme::DefaultAll) {
                                    // The constant inherits colors from
                                    // every column the query guarantees
                                    // equal to it.
                                    let mut cs = Colors::new();
                                    for (i, ga) in &gc_in {
                                        if ga == a {
                                            cs.extend(t.colors[*i].iter().cloned());
                                        }
                                    }
                                    cs
                                } else {
                                    Colors::new() // ⊥: invented
                                }
                            });
                            colors.push(cs);
                        }
                    }
                }
                out.insert(ColoredTuple { values, colors })?;
            }
            Ok((out, gc_out))
        }
        RaExpr::Product(a, b) => {
            let (left, gcl) = eval_inner(db, a, scheme, false, cfg)?;
            let (right, gcr) = eval_inner(db, b, scheme, false, cfg)?;
            let offset = left.schema.arity();
            let schema = Schema::new(
                left.schema
                    .attrs()
                    .iter()
                    .chain(right.schema.attrs())
                    .cloned(),
            )?;
            let mut gc = gcl;
            for (i, a) in gcr {
                gc.insert(i + offset, a);
            }
            let mut out = ColoredRelation::empty(schema);
            for lt in &left.tuples {
                for rt in &right.tuples {
                    let mut values = lt.values.clone();
                    values.extend(rt.values.iter().cloned());
                    let mut colors = lt.colors.clone();
                    colors.extend(rt.colors.iter().cloned());
                    out.insert(ColoredTuple { values, colors })?;
                }
            }
            Ok((out, gc))
        }
        RaExpr::NaturalJoin(a, b) => {
            let (left, gcl) = eval_inner(db, a, scheme, false, cfg)?;
            let (right, gcr) = eval_inner(db, b, scheme, false, cfg)?;
            let shared = cdb_relalg::eval::shared_attrs(&left.schema, &right.schema);
            let right_kept: Vec<usize> = (0..right.schema.arity())
                .filter(|j| !shared.iter().any(|(_, sj)| sj == j))
                .collect();
            let attrs: Vec<String> = left
                .schema
                .attrs()
                .iter()
                .cloned()
                .chain(right_kept.iter().map(|&j| right.schema.attrs()[j].clone()))
                .collect();
            let mut gc = gcl;
            // A shared column guaranteed constant on the right is
            // guaranteed on the (kept) left column too.
            for &(i, j) in &shared {
                if let Some(a) = gcr.get(&j) {
                    gc.insert(i, a.clone());
                }
            }
            for (o, &j) in right_kept.iter().enumerate() {
                if let Some(a) = gcr.get(&j) {
                    gc.insert(left.schema.arity() + o, a.clone());
                }
            }
            let mut out = ColoredRelation::empty(Schema::new(attrs)?);
            let emit = |lt: &ColoredTuple, rt: &ColoredTuple| {
                let mut values = lt.values.clone();
                values.extend(right_kept.iter().map(|&j| rt.values[j].clone()));
                let mut colors = lt.colors.clone();
                // Join cells are implicitly identified: their
                // colors merge under DEFAULT-ALL.
                if matches!(scheme, Scheme::DefaultAll) {
                    for &(i, j) in &shared {
                        colors[i].extend(rt.colors[j].iter().cloned());
                    }
                }
                colors.extend(right_kept.iter().map(|&j| rt.colors[j].clone()));
                ColoredTuple { values, colors }
            };
            if let (Some(cfg), false) = (hash, shared.is_empty()) {
                let lcols: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
                let rcols: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
                let build = extract_keys(right.tuples.iter().map(|t| &t.values), &rcols);
                let probe = extract_keys(left.tuples.iter().map(|t| &t.values), &lcols);
                let m = join_matches(&build, &probe, cfg);
                for &(li, ri) in &m.pairs {
                    out.insert(emit(&left.tuples[li], &right.tuples[ri]))?;
                }
                return Ok((out, gc));
            }
            for lt in &left.tuples {
                for rt in &right.tuples {
                    if shared.iter().all(|&(i, j)| lt.values[i] == rt.values[j]) {
                        out.insert(emit(lt, rt))?;
                    }
                }
            }
            Ok((out, gc))
        }
        RaExpr::Union(a, b) => {
            let (left, gcl) = eval_inner(db, a, scheme, outermost, cfg)?;
            let (right, gcr) = eval_inner(db, b, scheme, outermost, cfg)?;
            if !left.schema.union_compatible(&right.schema) {
                return Err(RelalgError::SchemaMismatch {
                    left: left.schema.attrs().to_vec(),
                    right: right.schema.attrs().to_vec(),
                });
            }
            // Only constants guaranteed on both branches survive a union.
            let gc = gcl
                .into_iter()
                .filter(|(i, a)| gcr.get(i) == Some(a))
                .collect();
            let mut out = left;
            for t in right.tuples {
                out.insert(t)?; // merging = implicit identification
            }
            Ok((out, gc))
        }
        RaExpr::Rename(e, pairs) => {
            let (input, gc) = eval_inner(db, e, scheme, false, cfg)?;
            let mut attrs: Vec<String> = input.schema.attrs().to_vec();
            for (old, new) in pairs {
                let i = input.schema.resolve(old)?;
                attrs[i] = new.clone();
            }
            let schema = Schema::new(attrs)?;
            Ok((input.with_schema(schema), gc))
        }
        RaExpr::Diff(_, _) => unreachable!("rejected by positivity check"),
    }
}

/// The equivalence classes of column indices induced by a predicate's
/// top-level equalities (columns equated directly or through a shared
/// constant). Also records newly-guaranteed constants into `gc`.
fn equality_classes(
    schema: &Schema,
    pred: &cdb_relalg::Pred,
    gc: &mut GuaranteedConsts,
) -> Result<Vec<Vec<usize>>, RelalgError> {
    let n = schema.arity();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
            r
        } else {
            i
        }
    }
    let mut const_rep: BTreeMap<Atom, usize> = BTreeMap::new();
    for (l, r) in pred.equated_pairs() {
        match (l, r) {
            (Operand::Col(a), Operand::Col(b)) => {
                let (i, j) = (schema.resolve(&a)?, schema.resolve(&b)?);
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri] = rj;
            }
            (Operand::Col(a), Operand::Const(c)) | (Operand::Const(c), Operand::Col(a)) => {
                let i = schema.resolve(&a)?;
                match const_rep.get(&c) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        parent[ri] = rj;
                    }
                    None => {
                        const_rep.insert(c, i);
                    }
                }
            }
            (Operand::Const(_), Operand::Const(_)) => {}
        }
    }
    // Constants spread to whole classes.
    for (c, rep) in &const_rep {
        let r = find(&mut parent, *rep);
        for i in 0..n {
            if find(&mut parent, i) == r {
                gc.insert(i, c.clone());
            }
        }
    }
    let mut classes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        classes.entry(r).or_default().push(i);
    }
    Ok(classes.into_values().collect())
}

/// Merges color sets across each equivalence class of columns.
fn merge_classes(classes: &[Vec<usize>], t: &mut ColoredTuple) {
    for class in classes {
        if class.len() < 2 {
            continue;
        }
        let mut merged = Colors::new();
        for &i in class {
            merged.extend(t.colors[i].iter().cloned());
        }
        for &i in class {
            t.colors[i] = merged.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_relalg::eval::paper_q;
    use cdb_relalg::ProjItem;

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    /// The §2.1 instances with the paper's colors ♭1..♭8 (written b1..b8):
    /// R = {(10 b1, 49 b2), (12 b3, 50 b4)},
    /// S = {(11 b5, 49 b6), (12 b7, 50 b8)}.
    fn paper_db() -> ColoredDatabase {
        let r = ColoredRelation::from_tuples(
            Schema::new(["A", "B"]).unwrap(),
            [
                ColoredTuple::with_colors(vec![int(10), int(49)], vec!["b1", "b2"]),
                ColoredTuple::with_colors(vec![int(12), int(50)], vec!["b3", "b4"]),
            ],
        )
        .unwrap();
        let s = ColoredRelation::from_tuples(
            Schema::new(["A", "B"]).unwrap(),
            [
                ColoredTuple::with_colors(vec![int(11), int(49)], vec!["b5", "b6"]),
                ColoredTuple::with_colors(vec![int(12), int(50)], vec!["b7", "b8"]),
            ],
        )
        .unwrap();
        ColoredDatabase::new().with("R", r).with("S", s)
    }

    fn q1() -> RaExpr {
        paper_q(vec![ProjItem::col("R.A", "A"), ProjItem::col("R.B", "B")])
    }

    fn q2() -> RaExpr {
        paper_q(vec![ProjItem::col("S.A", "A"), ProjItem::constant(50, "B")])
    }

    fn colors(rel: &ColoredRelation, attr: &str) -> Vec<String> {
        rel.cell_colors(&vec![int(12), int(50)], attr)
            .unwrap()
            .iter()
            .cloned()
            .collect()
    }

    #[test]
    fn q1_q2_paper_example_default_scheme_distinguishes() {
        // §2.1: "A-values in the output of Q1 are copied from R, while
        // A-values in the output of Q2 are copied from S. Moreover,
        // B-values in the output of Q2 are apparently created by Q2."
        let db = paper_db();
        let r1 = eval_colored(&db, &q1(), &Scheme::Default).unwrap();
        let r2 = eval_colored(&db, &q2(), &Scheme::Default).unwrap();
        assert_eq!(r1.to_relation().tuple_set(), r2.to_relation().tuple_set());
        assert_eq!(colors(&r1, "A"), vec!["b3"]);
        assert_eq!(colors(&r1, "B"), vec!["b4"]);
        assert_eq!(colors(&r2, "A"), vec!["b7"]);
        assert_eq!(colors(&r2, "B"), Vec::<String>::new(), "50⊥: invented");
        assert_ne!(r1, r2, "equivalent queries, different annotations");
    }

    #[test]
    fn default_all_restores_query_equivalence() {
        let db = paper_db();
        let r1 = eval_colored(&db, &q1(), &Scheme::DefaultAll).unwrap();
        let r2 = eval_colored(&db, &q2(), &Scheme::DefaultAll).unwrap();
        // R.A = S.A merges b3 with b7 on the A cell; R.B = 50 puts b4 on
        // anything equated with the constant 50 — including Q2's emitted
        // constant.
        assert_eq!(colors(&r1, "A"), vec!["b3", "b7"]);
        assert_eq!(colors(&r2, "A"), vec!["b3", "b7"]);
        assert_eq!(colors(&r1, "B"), vec!["b4"]);
        assert_eq!(r1, r2, "DEFAULT-ALL is invariant under the rewrite");
    }

    #[test]
    fn custom_scheme_steers_annotations() {
        // Steer B's annotation from S.B even though the value is the
        // constant 50 (a pSQL PROPAGATE clause).
        let db = paper_db();
        let steer: BTreeMap<String, Vec<String>> = [("B".to_string(), vec!["S.B".to_string()])]
            .into_iter()
            .collect();
        let r2 = eval_colored(&db, &q2(), &Scheme::Custom(steer)).unwrap();
        assert_eq!(colors(&r2, "B"), vec!["b8"]);
        assert_eq!(colors(&r2, "A"), vec!["b7"], "unlisted attrs default");
    }

    #[test]
    fn union_merges_annotations_of_equal_tuples() {
        let db = paper_db();
        // R ∪ S: tuple (12,50) occurs in both; its colors merge.
        let q = RaExpr::scan("R").union(RaExpr::scan("S"));
        let out = eval_colored(&db, &q, &Scheme::Default).unwrap();
        assert_eq!(out.to_relation().len(), 3);
        assert_eq!(colors(&out, "A"), vec!["b3", "b7"]);
        assert_eq!(colors(&out, "B"), vec!["b4", "b8"]);
    }

    #[test]
    fn projection_merges_annotations() {
        // π_B over R' where two tuples share B=50.
        let r = ColoredRelation::from_tuples(
            Schema::new(["A", "B"]).unwrap(),
            [
                ColoredTuple::with_colors(vec![int(1), int(50)], vec!["c1", "c2"]),
                ColoredTuple::with_colors(vec![int(2), int(50)], vec!["c3", "c4"]),
            ],
        )
        .unwrap();
        let db = ColoredDatabase::new().with("T", r);
        let q = RaExpr::scan("T").project_cols(["B"]);
        let out = eval_colored(&db, &q, &Scheme::Default).unwrap();
        assert_eq!(out.tuples().len(), 1);
        let cs = out.cell_colors(&vec![int(50)], "B").unwrap();
        assert_eq!(cs.iter().cloned().collect::<Vec<_>>(), vec!["c2", "c4"]);
    }

    #[test]
    fn natural_join_merges_colors_under_default_all_only() {
        let r = ColoredRelation::from_tuples(
            Schema::new(["A", "B"]).unwrap(),
            [ColoredTuple::with_colors(
                vec![int(1), int(2)],
                vec!["x1", "x2"],
            )],
        )
        .unwrap();
        let s = ColoredRelation::from_tuples(
            Schema::new(["B", "C"]).unwrap(),
            [ColoredTuple::with_colors(
                vec![int(2), int(3)],
                vec!["y1", "y2"],
            )],
        )
        .unwrap();
        let db = ColoredDatabase::new().with("R", r).with("S", s);
        let q = RaExpr::scan("R").natural_join(RaExpr::scan("S"));
        let def = eval_colored(&db, &q, &Scheme::Default).unwrap();
        let t = vec![int(1), int(2), int(3)];
        assert_eq!(
            def.cell_colors(&t, "B")
                .unwrap()
                .iter()
                .cloned()
                .collect::<Vec<_>>(),
            vec!["x2"]
        );
        let all = eval_colored(&db, &q, &Scheme::DefaultAll).unwrap();
        assert_eq!(
            all.cell_colors(&t, "B")
                .unwrap()
                .iter()
                .cloned()
                .collect::<Vec<_>>(),
            vec!["x2", "y1"]
        );
    }

    #[test]
    fn hash_engine_preserves_all_three_schemes() {
        // Q1/Q2 are σ[R.A = S.A ∧ R.B = 50](R × S) projections: the
        // equi-join recognizer fires, and the colored output must be
        // identical — including DEFAULT-ALL's cross-cell merging and
        // CUSTOM's steered propagation.
        let db = paper_db();
        let steer: BTreeMap<String, Vec<String>> = [("B".to_string(), vec!["S.B".to_string()])]
            .into_iter()
            .collect();
        let schemes = [Scheme::Default, Scheme::DefaultAll, Scheme::Custom(steer)];
        for scheme in &schemes {
            for q in [
                q1(),
                q2(),
                RaExpr::scan("R").natural_join(RaExpr::scan("S")),
            ] {
                let naive = eval_colored(&db, &q, scheme).unwrap();
                for cfg in [ExecConfig::default(), {
                    let mut c = ExecConfig::with_partitions(4);
                    c.parallel_threshold = 1;
                    c
                }] {
                    let hashed = eval_colored_with(&db, &q, scheme, &cfg).unwrap();
                    assert_eq!(naive, hashed, "scheme {scheme:?}, query {q}");
                }
            }
        }
    }

    #[test]
    fn occurrences_tracks_color_spread() {
        let db = paper_db();
        let q = RaExpr::ScanAs("R".into(), "r1".into())
            .product(RaExpr::ScanAs("R".into(), "r2".into()));
        let out = eval_colored(&db, &q, &Scheme::Default).unwrap();
        // b1 colors the r1.A cell of both rows built from tuple 1 on the
        // left, and the r2.A cell of both rows built from it on the
        // right: the color has spread to four cells.
        assert_eq!(out.occurrences("b1").len(), 4);
    }

    #[test]
    fn distinctly_colored_assigns_unique_colors() {
        let rel = Relation::table(["A", "B"], [vec![int(1), int(2)]]).unwrap();
        let c = ColoredRelation::distinctly_colored(&rel);
        assert_eq!(c.cell_colors(&vec![int(1), int(2)], "A").unwrap().len(), 1);
        let all: BTreeSet<&Colors> = c.tuples().iter().flat_map(|t| &t.colors).collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn negative_queries_are_rejected() {
        let db = paper_db();
        let q = RaExpr::scan("R").diff(RaExpr::scan("S"));
        assert!(eval_colored(&db, &q, &Scheme::Default).is_err());
    }
}
