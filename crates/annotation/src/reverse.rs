//! Reverse propagation of annotations (§2.2) and view deletion.
//!
//! "If an annotation is attached to some base value in the output of a
//! query, to what base value in the input should it be attached?" A
//! source placement is **side-effect free** when propagating it forward
//! produces *precisely* the view annotation — on the target cell and
//! nowhere else.
//!
//! Finding a side-effect-free placement is NP-hard (DP-hard) in the
//! query for queries combining projection and join \[17, 69\], but
//! polynomial for the other positive fragments and tractable for
//! *key-preserving* views \[27\]. This module implements:
//!
//! * [`find_placements`] — the general search: test every candidate
//!   source cell by forward propagation (sound and complete for the
//!   default scheme, exponential only through the query's evaluation
//!   cost, matching the data-complexity picture),
//! * [`find_placement_key_preserving`] — the fast path for views that
//!   retain a key of the target relation: the placement is computed
//!   directly from the key values, with a single verification pass,
//! * [`view_deletions`] — the related view-deletion problem \[1, 17,
//!   28\]: minimal sets of source tuples whose removal deletes a chosen
//!   view tuple, computed from why-provenance witnesses via minimal
//!   hitting sets.

use std::collections::BTreeSet;

use cdb_model::Atom;
use cdb_relalg::{Database, RaExpr, RelalgError, Tuple};
use cdb_semiring::hom::why_to_minwhy;
use cdb_semiring::{KDatabase, KRelation, Semiring, Why};

use crate::colored::{eval_colored, ColoredDatabase, ColoredRelation, ColoredTuple, Scheme};

/// A placement of an annotation on a source cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Placement {
    /// The source relation.
    pub relation: String,
    /// The source tuple.
    pub tuple: Tuple,
    /// The source attribute.
    pub attr: String,
}

/// The target of a reverse propagation: one output cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// The output tuple.
    pub tuple: Tuple,
    /// The output attribute.
    pub attr: String,
}

/// Statistics from a placement search, for the complexity experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate cells tested by forward propagation.
    pub candidates_tested: usize,
    /// Forward query evaluations performed.
    pub evaluations: usize,
}

/// Finds **all** side-effect-free placements for annotating `target` in
/// the view `q(db)`, by testing each candidate source cell: color it
/// with a probe color, propagate forward under the default scheme, and
/// accept iff the probe lands exactly on the target cell and nowhere
/// else.
pub fn find_placements(
    db: &Database,
    q: &RaExpr,
    target: &Target,
) -> Result<(Vec<Placement>, SearchStats), RelalgError> {
    let mut stats = SearchStats::default();
    let mut found = Vec::new();
    for rel_name in dedup(q.base_relations()) {
        let rel = db.get(&rel_name)?;
        for tuple in rel.tuple_set() {
            for attr in rel.schema().attrs() {
                stats.candidates_tested += 1;
                let placement = Placement {
                    relation: rel_name.clone(),
                    tuple: tuple.clone(),
                    attr: attr.clone(),
                };
                if probe(db, q, &placement, target, &mut stats)? {
                    found.push(placement);
                }
            }
        }
    }
    Ok((found, stats))
}

fn dedup(names: Vec<String>) -> Vec<String> {
    let mut seen = BTreeSet::new();
    names
        .into_iter()
        .filter(|n| seen.insert(n.clone()))
        .collect()
}

/// Forward-propagates a probe color placed on one source cell and checks
/// side-effect freedom.
fn probe(
    db: &Database,
    q: &RaExpr,
    placement: &Placement,
    target: &Target,
    stats: &mut SearchStats,
) -> Result<bool, RelalgError> {
    const PROBE: &str = "\u{2605}probe"; // cannot collide with user colors
    let mut cdb = ColoredDatabase::new();
    for (name, rel) in db.iter() {
        let mut crel = ColoredRelation::empty(rel.schema().clone());
        for t in rel.tuples() {
            let mut ct = ColoredTuple::plain(t.clone());
            if name == placement.relation && *t == placement.tuple {
                let i = rel.schema().resolve(&placement.attr)?;
                ct.colors[i].insert(PROBE.to_owned());
            }
            crel.insert(ct)?;
        }
        cdb.insert(name.to_owned(), crel);
    }
    stats.evaluations += 1;
    let out = eval_colored(&cdb, q, &Scheme::Default)?;
    let occurrences = out.occurrences(PROBE);
    Ok(occurrences.len() == 1
        && occurrences[0].0 == target.tuple
        && occurrences[0].1 == target.attr)
}

/// The key-preserving fast path of \[27\]: if the view's projection list
/// retains attributes forming a key of the source relation `rel`, the
/// source tuple is identified directly from the target's key values and
/// only a single verification probe is needed.
///
/// `key` names the key attributes as they appear in *both* the source
/// relation and the view output (key-preserving views keep the names).
pub fn find_placement_key_preserving(
    db: &Database,
    q: &RaExpr,
    rel_name: &str,
    key: &[&str],
    target: &Target,
) -> Result<(Option<Placement>, SearchStats), RelalgError> {
    let mut stats = SearchStats::default();
    let rel = db.get(rel_name)?;
    let out = cdb_relalg::eval::eval(db, q)?;
    // Read the key values off the target view tuple.
    let mut key_vals: Vec<(usize, Atom)> = Vec::new();
    for k in key {
        let oi = out.schema().resolve(k)?;
        let si = rel.schema().resolve(k)?;
        key_vals.push((si, target.tuple[oi].clone()));
    }
    // The unique source tuple with those key values.
    let candidate = rel
        .tuple_set()
        .into_iter()
        .find(|t| key_vals.iter().all(|(i, v)| &t[*i] == v));
    let Some(tuple) = candidate else {
        return Ok((None, stats));
    };
    let placement = Placement {
        relation: rel_name.to_owned(),
        tuple,
        attr: target.attr.clone(),
    };
    stats.candidates_tested = 1;
    if probe(db, q, &placement, target, &mut stats)? {
        Ok((Some(placement), stats))
    } else {
        Ok((None, stats))
    }
}

/// A minimal source-deletion set for a view tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeletionSet {
    /// The source tuples to delete, as `(relation, tuple)`.
    pub tuples: Vec<(String, Tuple)>,
    /// How many *other* view tuples this deletion also removes (0 means
    /// side-effect free on the view).
    pub side_effects: usize,
}

/// Computes the minimal deletion sets for removing `target_tuple` from
/// the view `q(db)`, via why-provenance: every witness must be hit, so
/// the minimal deletion sets are the minimal hitting sets of the minimal
/// witnesses. Side effects are counted by re-evaluating the view.
pub fn view_deletions(
    db: &Database,
    q: &RaExpr,
    target_tuple: &Tuple,
) -> Result<Vec<DeletionSet>, RelalgError> {
    // Tag every source tuple with a Why variable "rel#idx".
    let mut kdb: KDatabase<Why> = KDatabase::new();
    let mut ids: Vec<(String, Tuple)> = Vec::new();
    for (name, rel) in db.iter() {
        let kr = KRelation::tagged(rel, |_, t| {
            let id = format!("{name}#{}", ids.len());
            ids.push((name.to_owned(), t.clone()));
            Why::var(id)
        })?;
        kdb.insert(name.to_owned(), kr);
    }
    let out = cdb_semiring::eval::eval_k(&kdb, q)?;
    let why = out.annotation(target_tuple);
    if why.is_zero() {
        return Ok(Vec::new());
    }
    let witnesses: Vec<BTreeSet<String>> =
        why_to_minwhy(&why).witnesses().iter().cloned().collect();
    // Minimal hitting sets by breadth-first search over set sizes.
    let universe: BTreeSet<String> = witnesses.iter().flat_map(|w| w.iter().cloned()).collect();
    let universe: Vec<String> = universe.into_iter().collect();
    let mut minimal: Vec<BTreeSet<String>> = Vec::new();
    for size in 1..=universe.len() {
        for combo in combinations(&universe, size) {
            if minimal.iter().any(|m| m.is_subset(&combo)) {
                continue;
            }
            if witnesses
                .iter()
                .all(|w| w.iter().any(|x| combo.contains(x)))
            {
                minimal.push(combo);
            }
        }
        // Minimal hitting sets can have different sizes (e.g. witnesses
        // {a,b}, {a,c}, {d} have minimal hitting sets {a,d} and
        // {b,c,d}), so all sizes must be scanned; supersets of found
        // minima are pruned above.
    }
    // Materialize and count side effects.
    let base_out = cdb_relalg::eval::eval(db, q)?.tuple_set();
    let mut result = Vec::new();
    for m in minimal {
        let tuples: Vec<(String, Tuple)> = m
            .iter()
            .map(|id| {
                let idx: usize = id.split('#').nth(1).unwrap().parse().unwrap();
                ids[idx].clone()
            })
            .collect();
        // Apply the deletion and re-evaluate.
        let mut db2 = db.clone();
        for (rel, t) in &tuples {
            let r = db2.get_mut(rel)?;
            let schema = r.schema().clone();
            let remaining: Vec<Tuple> = r.tuples().iter().filter(|x| *x != t).cloned().collect();
            *r = cdb_relalg::Relation::from_rows(schema, remaining)?;
        }
        let new_out = cdb_relalg::eval::eval(&db2, q)?.tuple_set();
        debug_assert!(!new_out.contains(target_tuple));
        let side_effects = base_out
            .iter()
            .filter(|t| *t != target_tuple && !new_out.contains(*t))
            .count();
        result.push(DeletionSet {
            tuples,
            side_effects,
        });
    }
    result.sort();
    Ok(result)
}

fn combinations(items: &[String], size: usize) -> Vec<BTreeSet<String>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..size).collect();
    if size > items.len() {
        return out;
    }
    loop {
        out.push(idx.iter().map(|&i| items[i].clone()).collect());
        // Advance the combination.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] + (size - i) < items.len() {
                idx[i] += 1;
                for j in i + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_relalg::{Pred, ProjItem, Relation};

    fn int(i: i64) -> Atom {
        Atom::Int(i)
    }

    fn db() -> Database {
        Database::new()
            .with(
                "R",
                Relation::table(["A", "B"], [vec![int(1), int(10)], vec![int(2), int(20)]])
                    .unwrap(),
            )
            .with(
                "S",
                Relation::table(
                    ["B", "C"],
                    [vec![int(10), int(100)], vec![int(20), int(100)]],
                )
                .unwrap(),
            )
    }

    #[test]
    fn selection_views_have_unique_placements() {
        let q = RaExpr::scan("R").select(Pred::col_eq_const("A", 1));
        let target = Target {
            tuple: vec![int(1), int(10)],
            attr: "B".into(),
        };
        let (ps, stats) = find_placements(&db(), &q, &target).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].relation, "R");
        assert_eq!(ps[0].attr, "B");
        assert_eq!(ps[0].tuple, vec![int(1), int(10)]);
        assert!(stats.evaluations >= 4);
    }

    #[test]
    fn projection_can_spread_a_color_no_placement() {
        // π_C(R ⋈ S): C=100 in the output merges the two S tuples' C
        // cells; annotating either source C cell annotates the single
        // merged output cell — actually side-effect-free. But annotating
        // via a *join* column that spreads is not. Construct the spread
        // case: π over a product duplicates a source cell.
        let d = Database::new()
            .with("R", Relation::table(["A"], [vec![int(1)]]).unwrap())
            .with(
                "S",
                Relation::table(["B"], [vec![int(5)], vec![int(6)]]).unwrap(),
            );
        // Q = π_{A,B}(R × S): the single R cell copies into TWO output
        // tuples — any annotation on it has a side effect.
        let q = RaExpr::ScanAs("R".into(), "r".into())
            .product(RaExpr::ScanAs("S".into(), "s".into()))
            .project(vec![ProjItem::col("r.A", "A"), ProjItem::col("s.B", "B")]);
        let target = Target {
            tuple: vec![int(1), int(5)],
            attr: "A".into(),
        };
        let (ps, _) = find_placements(&d, &q, &target).unwrap();
        assert!(ps.is_empty(), "the R.A color spreads to both output rows");
        // The B cell, by contrast, has a clean placement.
        let target_b = Target {
            tuple: vec![int(1), int(5)],
            attr: "B".into(),
        };
        let (ps, _) = find_placements(&d, &q, &target_b).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].relation, "S");
    }

    #[test]
    fn union_views_can_have_multiple_placements() {
        let d = Database::new()
            .with("R", Relation::table(["A"], [vec![int(7)]]).unwrap())
            .with("S", Relation::table(["A"], [vec![int(7)]]).unwrap());
        let q = RaExpr::scan("R").union(RaExpr::scan("S"));
        let target = Target {
            tuple: vec![int(7)],
            attr: "A".into(),
        };
        let (ps, _) = find_placements(&d, &q, &target).unwrap();
        // Either source cell propagates exactly to the merged output cell.
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn key_preserving_fast_path_agrees_with_search() {
        // View keeps R's key A: placement is found directly.
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .project(vec![ProjItem::col("A", "A"), ProjItem::col("C", "C")]);
        let target = Target {
            tuple: vec![int(1), int(100)],
            attr: "A".into(),
        };
        let (fast, stats) = find_placement_key_preserving(&db(), &q, "R", &["A"], &target).unwrap();
        let (slow, slow_stats) = find_placements(&db(), &q, &target).unwrap();
        let fast = fast.unwrap();
        assert!(slow.contains(&fast));
        assert!(stats.evaluations < slow_stats.evaluations);
    }

    #[test]
    fn key_preserving_returns_none_when_attr_spreads() {
        // Annotating C through the view spreads to both S rows' join
        // results? C=100 appears in two output tuples (1,100), (2,100),
        // each copied from a different S tuple — each placement is clean.
        // But a *missing* key value returns None.
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .project(vec![ProjItem::col("A", "A"), ProjItem::col("C", "C")]);
        let target = Target {
            tuple: vec![int(9), int(100)],
            attr: "A".into(),
        };
        let (fast, _) = find_placement_key_preserving(&db(), &q, "R", &["A"], &target).unwrap();
        assert!(fast.is_none());
    }

    #[test]
    fn view_deletion_via_witnesses() {
        // V = π_C(R ⋈ S): tuple (100) has two witnesses — {R1,S1} and
        // {R2,S2}. Minimal hitting sets have size 2 (e.g. {S1,S2}) or
        // pairs across witnesses.
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .project(vec![ProjItem::col("C", "C")]);
        let dels = view_deletions(&db(), &q, &vec![int(100)]).unwrap();
        assert!(!dels.is_empty());
        for d in &dels {
            assert_eq!(d.tuples.len(), 2, "hit both witnesses: {d:?}");
            assert_eq!(d.side_effects, 0, "only view tuple (100) exists");
        }
        // 2 choices from witness 1 × 2 from witness 2 = 4 minimal sets.
        assert_eq!(dels.len(), 4);
    }

    #[test]
    fn view_deletion_single_witness() {
        let q = RaExpr::scan("R").select(Pred::col_eq_const("A", 1));
        let dels = view_deletions(&db(), &q, &vec![int(1), int(10)]).unwrap();
        assert_eq!(dels.len(), 1);
        assert_eq!(
            dels[0].tuples,
            vec![("R".to_string(), vec![int(1), int(10)])]
        );
        assert_eq!(dels[0].side_effects, 0);
    }

    #[test]
    fn view_deletion_of_absent_tuple_is_empty() {
        let q = RaExpr::scan("R");
        let dels = view_deletions(&db(), &q, &vec![int(9), int(9)]).unwrap();
        assert!(dels.is_empty());
    }

    #[test]
    fn deletion_side_effects_are_counted() {
        // V = π_B(R): deleting R's (1,10) removes view tuple (10) only;
        // but deleting source of a shared B would have side effects.
        let d = Database::new().with(
            "T",
            Relation::table(["A", "B"], [vec![int(1), int(5)], vec![int(2), int(5)]]).unwrap(),
        );
        let q = RaExpr::scan("T").project_cols(["A"]);
        // Deleting (1,5) removes view tuple (1) with no side effect.
        let dels = view_deletions(&d, &q, &vec![int(1)]).unwrap();
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].side_effects, 0);
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let items: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(combinations(&items, 2).len(), 3);
        assert_eq!(combinations(&items, 3).len(), 1);
        assert_eq!(combinations(&items, 4).len(), 0);
        assert_eq!(combinations(&items, 1).len(), 3);
    }
}
