//! Property-based tests for annotation propagation: color conservation
//! (colors never appear from nowhere under the default scheme), scheme
//! monotonicity (DEFAULT-ALL only adds colors), agreement of the colored
//! evaluator with the plain evaluator on values, and probe-based
//! placement soundness.

use cdb_annotation::colored::{eval_colored, ColoredDatabase, Scheme};
use cdb_annotation::reverse::{find_placements, Target};
use cdb_model::Atom;
use cdb_relalg::{Database, Pred, RaExpr, Relation};
use proptest::prelude::*;

fn rel() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..5, 0i64..5), 1..8)
}

fn build(r: &[(i64, i64)], s: &[(i64, i64)]) -> Database {
    let mk = |rows: &[(i64, i64)], attrs: [&str; 2]| {
        Relation::table(
            attrs,
            rows.iter().map(|(a, b)| vec![Atom::Int(*a), Atom::Int(*b)]),
        )
        .unwrap()
    };
    Database::new()
        .with("R", mk(r, ["A", "B"]))
        .with("S", mk(s, ["B", "C"]))
}

/// A small pool of positive queries over R(A,B), S(B,C).
fn queries() -> Vec<RaExpr> {
    vec![
        RaExpr::scan("R").select(Pred::col_eq_const("A", 2)),
        RaExpr::scan("R").project_cols(["B"]),
        RaExpr::scan("R").natural_join(RaExpr::scan("S")),
        RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .project_cols(["A", "C"]),
        RaExpr::scan("R").union(RaExpr::scan("S").project(vec![
            cdb_relalg::ProjItem::col("B", "A"),
            cdb_relalg::ProjItem::col("C", "B"),
        ])),
        RaExpr::scan("R")
            .select(Pred::col_eq_const("B", 1))
            .project(vec![
                cdb_relalg::ProjItem::col("A", "A"),
                cdb_relalg::ProjItem::constant(1, "B"),
            ]),
    ]
}

proptest! {
    /// The colored evaluator computes the same plain relation as the
    /// ordinary evaluator, under every scheme.
    #[test]
    fn colored_eval_agrees_on_values(r in rel(), s in rel(), qi in 0usize..6) {
        let db = build(&r, &s);
        let cdb = ColoredDatabase::distinctly_colored(&db);
        let q = &queries()[qi];
        let plain = cdb_relalg::eval::eval(&db, q).unwrap();
        for scheme in [Scheme::Default, Scheme::DefaultAll] {
            let colored = eval_colored(&cdb, q, &scheme).unwrap();
            prop_assert!(colored.to_relation().set_eq(&plain),
                "scheme {scheme:?} changed the ordinary result");
        }
    }

    /// Color conservation: every output color exists in the input
    /// (queries never invent non-⊥ annotations).
    #[test]
    fn colors_are_conserved(r in rel(), s in rel(), qi in 0usize..6) {
        let db = build(&r, &s);
        let cdb = ColoredDatabase::distinctly_colored(&db);
        let q = &queries()[qi];
        let out = eval_colored(&cdb, q, &Scheme::Default).unwrap();
        let input_colors: std::collections::BTreeSet<String> = ["R", "S"]
            .iter()
            .flat_map(|n| {
                cdb.get(n).unwrap().tuples().iter().flat_map(|t| {
                    t.colors.iter().flatten().cloned().collect::<Vec<_>>()
                })
            })
            .collect();
        for t in out.tuples() {
            for cs in &t.colors {
                for c in cs {
                    prop_assert!(input_colors.contains(c), "invented color {c}");
                }
            }
        }
    }

    /// DEFAULT-ALL only ever adds colors relative to the default scheme.
    #[test]
    fn default_all_is_monotone(r in rel(), s in rel(), qi in 0usize..6) {
        let db = build(&r, &s);
        let cdb = ColoredDatabase::distinctly_colored(&db);
        let q = &queries()[qi];
        let def = eval_colored(&cdb, q, &Scheme::Default).unwrap();
        let all = eval_colored(&cdb, q, &Scheme::DefaultAll).unwrap();
        for t in def.tuples() {
            for (i, cs) in t.colors.iter().enumerate() {
                let attr = &def.schema().attrs()[i];
                let all_cs = all.cell_colors(&t.values, attr).unwrap();
                prop_assert!(cs.is_subset(all_cs),
                    "DEFAULT-ALL dropped colors on {:?}.{attr}", t.values);
            }
        }
    }

    /// Placement soundness: every placement returned by the search, when
    /// propagated forward, lands exactly on the target.
    #[test]
    fn placements_are_side_effect_free(r in rel(), s in rel()) {
        let db = build(&r, &s);
        let q = RaExpr::scan("R")
            .natural_join(RaExpr::scan("S"))
            .project_cols(["A", "C"]);
        let out = cdb_relalg::eval::eval(&db, &q).unwrap();
        let Some(t0) = out.tuples().first() else { return Ok(()); };
        let target = Target { tuple: t0.clone(), attr: "A".into() };
        let (placements, _) = find_placements(&db, &q, &target).unwrap();
        // Re-verify each placement independently with a fresh probe.
        for p in placements {
            let mut cdb = ColoredDatabase::new();
            for (name, rel) in db.iter() {
                let mut crel = cdb_annotation::colored::ColoredRelation::empty(rel.schema().clone());
                for t in rel.tuples() {
                    let mut ct = cdb_annotation::colored::ColoredTuple::plain(t.clone());
                    if name == p.relation && *t == p.tuple {
                        let i = rel.schema().resolve(&p.attr).unwrap();
                        ct.colors[i].insert("probe".into());
                    }
                    crel.insert(ct).unwrap();
                }
                cdb.insert(name.to_owned(), crel);
            }
            let colored_out = eval_colored(&cdb, &q, &Scheme::Default).unwrap();
            let occ = colored_out.occurrences("probe");
            prop_assert_eq!(occ.len(), 1);
            prop_assert_eq!(&occ[0].0, &target.tuple);
            prop_assert_eq!(&occ[0].1, &target.attr);
        }
    }
}
