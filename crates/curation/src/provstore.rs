//! The provenance store, with the two §3.1 cost mitigations.
//!
//! > "The cost of storing such provenance information appears to be
//! > prohibitive if done naively because some trail of information needs
//! > to be kept of each node in the tree. However this can be mitigated
//! > by two observations: first that provenance information is
//! > *hereditary*: unless a node in the tree has been modified, its
//! > provenance is that of its parent node. Second, one can collect a
//! > sequence of basic operations into a transaction, and there is a
//! > description of the effects of the transaction that is shorter than
//! > recording the log of basic operations."
//!
//! [`StoreMode::Naive`] keeps a record for every node touched (the
//! baseline); [`StoreMode::Hereditary`] records only at the roots of
//! change, and lookups walk up the tree. [`squash`] implements the
//! transaction-level compression.

use std::collections::BTreeMap;
use std::fmt;

use crate::ops::{CurationOp, TxnId};
use crate::tree::{NodeId, TreeDb};

/// Where a piece of data came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// Authored locally (typed in by a curator).
    Local,
    /// Copied from another database.
    CopiedFrom {
        /// Source database name.
        db: String,
        /// Source path at copy time.
        path: String,
        /// The source's own provenance chain at copy time, oldest first.
        chain: Vec<Origin>,
    },
    /// An external, non-database source (a paper, a web page).
    External {
        /// A citation-ish description of the source.
        source: String,
    },
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Local => write!(f, "local"),
            Origin::CopiedFrom { db, path, .. } => write!(f, "copied from {db}:{path}"),
            Origin::External { source } => write!(f, "external: {source}"),
        }
    }
}

/// One provenance record on a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvRecord {
    /// The transaction that produced this record.
    pub txn: TxnId,
    /// What happened.
    pub event: ProvEvent,
}

/// The kind of provenance event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvEvent {
    /// Node created fresh.
    Created(Origin),
    /// Node's payload modified.
    Modified,
}

/// Which storage discipline the store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// A record on every node of every touched subtree (the baseline
    /// whose cost §3.1 calls prohibitive).
    Naive,
    /// Records only at the roots of change; descendants inherit.
    Hereditary,
}

/// The provenance store.
///
/// Equality compares mode and every stored record — the crash-recovery
/// tests assert a recovered store equals the uncrashed one exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvStore {
    mode: StoreMode,
    records: BTreeMap<NodeId, Vec<ProvRecord>>,
}

impl ProvStore {
    /// An empty store.
    pub fn new(mode: StoreMode) -> Self {
        ProvStore {
            mode,
            records: BTreeMap::new(),
        }
    }

    /// The storage mode.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    fn push(&mut self, node: NodeId, rec: ProvRecord) {
        self.records.entry(node).or_default().push(rec);
    }

    /// Records a fresh insert.
    pub fn on_insert(&mut self, node: NodeId, txn: TxnId) {
        self.push(
            node,
            ProvRecord {
                txn,
                event: ProvEvent::Created(Origin::Local),
            },
        );
    }

    /// Records a modification.
    pub fn on_modify(&mut self, node: NodeId, txn: TxnId) {
        self.push(
            node,
            ProvRecord {
                txn,
                event: ProvEvent::Modified,
            },
        );
    }

    /// Records a paste of a subtree of `size` nodes rooted at `node`.
    ///
    /// Hereditary mode records once at the pasted root; naive mode
    /// attaches a record to every pasted node. The `size` parameter is
    /// used only by the naive accounting when the tree walk is not
    /// available at call time.
    pub fn on_paste(&mut self, node: NodeId, txn: TxnId, origin: Origin, size: usize) {
        match self.mode {
            StoreMode::Hereditary => {
                self.push(
                    node,
                    ProvRecord {
                        txn,
                        event: ProvEvent::Created(origin),
                    },
                );
            }
            StoreMode::Naive => {
                // One record per pasted node. Node ids of a pasted
                // subtree are contiguous starting at `node` (arena
                // allocation order).
                for i in 0..size {
                    self.push(
                        NodeId(node_index(node) + i),
                        ProvRecord {
                            txn,
                            event: ProvEvent::Created(origin.clone()),
                        },
                    );
                }
            }
        }
    }

    /// The records stored *directly* on a node.
    pub fn direct(&self, node: NodeId) -> &[ProvRecord] {
        self.records.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The effective provenance records of a node: its own, or —
    /// hereditarily — the nearest recorded ancestor's.
    pub fn effective<'a>(&'a self, tree: &TreeDb, node: NodeId) -> &'a [ProvRecord] {
        if !self.direct(node).is_empty() {
            return self.direct(node);
        }
        if let Ok(ancestors) = tree.ancestors(node) {
            for a in ancestors {
                if !self.direct(a).is_empty() {
                    return self.direct(a);
                }
            }
        }
        &[]
    }

    /// The provenance *chain* of a node: the origins of its effective
    /// creation records, oldest first, flattening cross-database copy
    /// chains.
    pub fn chain(&self, tree: &TreeDb, node: NodeId) -> Vec<Origin> {
        let mut out = Vec::new();
        for rec in self.effective(tree, node) {
            if let ProvEvent::Created(origin) = &rec.event {
                if let Origin::CopiedFrom { chain, .. } = origin {
                    out.extend(chain.iter().cloned());
                }
                out.push(origin.clone());
            }
        }
        out
    }

    /// Raw record map access for the wire codec (`crate::wire`).
    pub(crate) fn raw_records(&self) -> &BTreeMap<NodeId, Vec<ProvRecord>> {
        &self.records
    }

    /// Rebuilds a store from decoded parts (`crate::wire`).
    pub(crate) fn from_raw(mode: StoreMode, records: BTreeMap<NodeId, Vec<ProvRecord>>) -> Self {
        ProvStore { mode, records }
    }

    /// Number of records stored (the E6 space metric).
    pub fn record_count(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Approximate encoded size in bytes: a fixed overhead per record
    /// plus the origin strings (copy chains included — they are what
    /// makes naive storage expensive).
    pub fn encoded_size(&self) -> usize {
        fn origin_size(o: &Origin) -> usize {
            match o {
                Origin::Local => 1,
                Origin::External { source } => 1 + source.len(),
                Origin::CopiedFrom { db, path, chain } => {
                    1 + db.len() + path.len() + chain.iter().map(origin_size).sum::<usize>()
                }
            }
        }
        self.records
            .values()
            .flatten()
            .map(|r| {
                16 + match &r.event {
                    ProvEvent::Created(o) => origin_size(o),
                    ProvEvent::Modified => 1,
                }
            })
            .sum()
    }
}

fn node_index(n: NodeId) -> usize {
    // NodeId is an index newtype; this is the only place outside `tree`
    // that needs the raw index, for the naive store's contiguity trick.
    n.0
}

/// Squashes a transaction's operation log into the shorter "net effect"
/// description of §3.1:
///
/// * an insert (or paste) followed by deletion of the same node within
///   the transaction cancels entirely (including intervening modifies),
/// * repeated modifications of a node collapse to the last one,
/// * a modification of a node inserted in the same transaction folds
///   into the insert.
pub fn squash(ops: &[CurationOp]) -> Vec<CurationOp> {
    // Pass 1: find nodes created and deleted within the txn.
    let mut created: BTreeMap<NodeId, ()> = BTreeMap::new();
    let mut deleted: BTreeMap<NodeId, ()> = BTreeMap::new();
    for op in ops {
        match op {
            CurationOp::Insert { node, .. } | CurationOp::Paste { node, .. } => {
                created.insert(*node, ());
            }
            CurationOp::Delete { node } => {
                if created.contains_key(node) {
                    deleted.insert(*node, ());
                }
            }
            CurationOp::Modify { .. } => {}
        }
    }
    // Pass 2: rebuild, dropping cancelled ops and folding modifies.
    let mut out: Vec<CurationOp> = Vec::new();
    for op in ops {
        match op {
            CurationOp::Insert {
                node,
                parent,
                label,
                value,
            } => {
                if !deleted.contains_key(node) {
                    out.push(CurationOp::Insert {
                        node: *node,
                        parent: *parent,
                        label: label.clone(),
                        value: value.clone(),
                    });
                }
            }
            CurationOp::Paste {
                node,
                parent,
                origin,
                snapshot,
            } => {
                if !deleted.contains_key(node) {
                    out.push(CurationOp::Paste {
                        node: *node,
                        parent: *parent,
                        origin: origin.clone(),
                        snapshot: snapshot.clone(),
                    });
                }
            }
            CurationOp::Delete { node } => {
                if !deleted.contains_key(node) {
                    out.push(CurationOp::Delete { node: *node });
                }
            }
            CurationOp::Modify { node, old, new } => {
                if deleted.contains_key(node) {
                    continue; // modified then deleted: drop
                }
                // Fold into a prior insert or a prior modify of the node.
                let mut folded = false;
                for prev in out.iter_mut().rev() {
                    match prev {
                        CurationOp::Insert { node: n, value, .. } if n == node => {
                            *value = new.clone();
                            folded = true;
                            break;
                        }
                        CurationOp::Modify {
                            node: n, new: pnew, ..
                        } if n == node => {
                            *pnew = new.clone();
                            folded = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if !folded {
                    out.push(CurationOp::Modify {
                        node: *node,
                        old: old.clone(),
                        new: new.clone(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::CuratedTree;
    use cdb_model::Atom;

    #[test]
    fn hereditary_lookup_walks_ancestors() {
        let mut db = CuratedTree::new("d", StoreMode::Hereditary);
        let root = db.tree.root();
        // Paste a three-node subtree built in another db.
        let mut src = CuratedTree::new("s", StoreMode::Hereditary);
        let sroot = src.tree.root();
        let mut t = src.begin("a", 1);
        let e = t.insert(sroot, "entry", None).unwrap();
        t.insert(e, "name", Some(Atom::Str("x".into()))).unwrap();
        t.commit();
        let clip = src.copy(e).unwrap();
        let mut t = db.begin("b", 2);
        let pasted = t.paste(root, &clip).unwrap();
        t.commit();

        let child = db.tree.resolve_path("/entry/name").unwrap();
        // Only the pasted root has a direct record…
        assert_eq!(db.prov.direct(pasted).len(), 1);
        assert!(db.prov.direct(child).is_empty());
        // …but the child's effective provenance is inherited.
        let eff = db.prov.effective(&db.tree, child);
        assert_eq!(eff.len(), 1);
        assert!(matches!(
            &eff[0].event,
            ProvEvent::Created(Origin::CopiedFrom { .. })
        ));
    }

    #[test]
    fn naive_mode_stores_one_record_per_pasted_node() {
        let mut src = CuratedTree::new("s", StoreMode::Hereditary);
        let sroot = src.tree.root();
        let mut t = src.begin("a", 1);
        let e = t.insert(sroot, "entry", None).unwrap();
        for i in 0..4 {
            t.insert(e, format!("f{i}"), Some(Atom::Int(i))).unwrap();
        }
        t.commit();
        let clip = src.copy(e).unwrap();

        let mut naive = CuratedTree::new("n", StoreMode::Naive);
        let mut hered = CuratedTree::new("h", StoreMode::Hereditary);
        let (nr, hr) = (naive.tree.root(), hered.tree.root());
        let mut t = naive.begin("b", 2);
        t.paste(nr, &clip).unwrap();
        t.commit();
        let mut t = hered.begin("b", 2);
        t.paste(hr, &clip).unwrap();
        t.commit();

        assert_eq!(naive.prov.record_count(), 5);
        assert_eq!(hered.prov.record_count(), 1);
        assert!(naive.prov.encoded_size() > hered.prov.encoded_size());
    }

    #[test]
    fn modified_descendant_overrides_inherited_provenance() {
        let mut src = CuratedTree::new("s", StoreMode::Hereditary);
        let sroot = src.tree.root();
        let mut t = src.begin("a", 1);
        let e = t.insert(sroot, "entry", None).unwrap();
        t.insert(e, "name", Some(Atom::Str("x".into()))).unwrap();
        t.commit();
        let clip = src.copy(e).unwrap();

        let mut db = CuratedTree::new("d", StoreMode::Hereditary);
        let root = db.tree.root();
        let mut t = db.begin("b", 2);
        t.paste(root, &clip).unwrap();
        t.commit();
        let name = db.tree.resolve_path("/entry/name").unwrap();
        let mut t = db.begin("c", 3);
        t.modify(name, Some(Atom::Str("y".into()))).unwrap();
        let txn = t.commit();

        let eff = db.prov.effective(&db.tree, name);
        assert_eq!(eff.len(), 1);
        assert_eq!(eff[0].txn, txn);
        assert_eq!(eff[0].event, ProvEvent::Modified);
    }

    #[test]
    fn chain_flattens_cross_database_copies() {
        // a → b → c: pasting from b into c carries a's origin.
        let mut a = CuratedTree::new("a", StoreMode::Hereditary);
        let ar = a.tree.root();
        let mut t = a.begin("u", 1);
        let e = t.insert(ar, "e", Some(Atom::Int(1))).unwrap();
        t.commit();
        let clip_ab = a.copy(e).unwrap();

        let mut b = CuratedTree::new("b", StoreMode::Hereditary);
        let br = b.tree.root();
        let mut t = b.begin("u", 2);
        let pb = t.paste(br, &clip_ab).unwrap();
        t.commit();
        let clip_bc = b.copy(pb).unwrap();

        let mut c = CuratedTree::new("c", StoreMode::Hereditary);
        let cr = c.tree.root();
        let mut t = c.begin("u", 3);
        let pc = t.paste(cr, &clip_bc).unwrap();
        t.commit();

        let chain = c.prov.chain(&c.tree, pc);
        // Oldest first: a's local creation, the copy a→b, the copy b→c.
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0], Origin::Local);
        assert!(matches!(&chain[1], Origin::CopiedFrom { db, .. } if db == "a"));
        assert!(matches!(&chain[2], Origin::CopiedFrom { db, .. } if db == "b"));
    }

    #[test]
    fn squash_cancels_insert_then_delete() {
        let n = NodeId(5);
        let ops = vec![
            CurationOp::Insert {
                node: n,
                parent: NodeId(0),
                label: "x".into(),
                value: None,
            },
            CurationOp::Modify {
                node: n,
                old: None,
                new: Some(Atom::Int(1)),
            },
            CurationOp::Delete { node: n },
        ];
        assert!(squash(&ops).is_empty());
    }

    #[test]
    fn squash_folds_modifies_into_insert() {
        let n = NodeId(5);
        let ops = vec![
            CurationOp::Insert {
                node: n,
                parent: NodeId(0),
                label: "x".into(),
                value: Some(Atom::Int(1)),
            },
            CurationOp::Modify {
                node: n,
                old: Some(Atom::Int(1)),
                new: Some(Atom::Int(2)),
            },
            CurationOp::Modify {
                node: n,
                old: Some(Atom::Int(2)),
                new: Some(Atom::Int(3)),
            },
        ];
        let s = squash(&ops);
        assert_eq!(
            s,
            vec![CurationOp::Insert {
                node: n,
                parent: NodeId(0),
                label: "x".into(),
                value: Some(Atom::Int(3))
            }]
        );
    }

    #[test]
    fn squash_collapses_repeated_modifies() {
        let n = NodeId(7);
        let ops = vec![
            CurationOp::Modify {
                node: n,
                old: Some(Atom::Int(0)),
                new: Some(Atom::Int(1)),
            },
            CurationOp::Modify {
                node: n,
                old: Some(Atom::Int(1)),
                new: Some(Atom::Int(2)),
            },
        ];
        let s = squash(&ops);
        assert_eq!(s.len(), 1);
        match &s[0] {
            CurationOp::Modify { old, new, .. } => {
                assert_eq!(old, &Some(Atom::Int(0)));
                assert_eq!(new, &Some(Atom::Int(2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn squash_keeps_deletes_of_preexisting_nodes() {
        let n = NodeId(3);
        let ops = vec![CurationOp::Delete { node: n }];
        assert_eq!(squash(&ops), ops);
    }

    #[test]
    fn squash_preserves_pastes() {
        let ops = vec![CurationOp::Paste {
            node: NodeId(9),
            parent: NodeId(0),
            origin: Origin::External {
                source: "PMID:94032477".into(),
            },
            snapshot: crate::ops::ClipNode {
                label: "entry".into(),
                value: None,
                children: vec![],
            },
        }];
        assert_eq!(squash(&ops), ops);
    }
}
